//! `redistplan` — plan a data redistribution from the command line.
//!
//! ```sh
//! redistplan --matrix traffic.csv --t1 100 --t2 100 --backbone 300 \
//!            [--beta 0.05] [--algo oggp|ggp|list|greedy|sequential] \
//!            [--gantt] [--simulate] [--compare]
//! ```
//!
//! The CSV holds one row per sender with per-receiver byte counts
//! (`k`/`M`/`G` suffixes allowed, `#` comments skipped). Without `--matrix`
//! a small demo workload is used.

use redistribute::cli::{opt_flag, opt_value, parse_matrix_csv};
use redistribute::kpbs::{Platform, TrafficMatrix};
use redistribute::{Algorithm, Planner};

fn algo_from(name: &str) -> Option<Algorithm> {
    match name {
        "ggp" => Some(Algorithm::Ggp),
        "oggp" => Some(Algorithm::Oggp),
        "sequential" => Some(Algorithm::Sequential),
        "list" => Some(Algorithm::List),
        "greedy" => Some(Algorithm::Greedy),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if opt_flag(&args, "help") {
        println!(
            "redistplan — plan a data redistribution from the command line\n\
             \n\
             usage: redistplan --matrix traffic.csv --t1 100 --t2 100 --backbone 300\n\
             \x20                [--beta 0.05] [--algo oggp|ggp|list|greedy|sequential]\n\
             \x20                [--gantt] [--simulate] [--compare]\n\
             \n\
             The CSV holds one row per sender with per-receiver byte counts\n\
             (k/M/G suffixes allowed, '#' comments skipped). Without --matrix a\n\
             small demo workload is used."
        );
        return;
    }

    let traffic: TrafficMatrix = match opt_value(&args, "matrix") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            parse_matrix_csv(&text).unwrap_or_else(|e| die(&e))
        }
        None => {
            eprintln!("(no --matrix given; using a 4x4 demo workload)");
            let mut t = TrafficMatrix::zeros(4, 4);
            for i in 0..4 {
                for j in 0..4 {
                    t.set(i, j, 5_000_000 + (i * 4 + j) as u64 * 2_000_000);
                }
            }
            t
        }
    };

    let t1: f64 =
        opt_value(&args, "t1").map_or(100.0, |v| v.parse().unwrap_or_else(|_| die("bad --t1")));
    let t2: f64 =
        opt_value(&args, "t2").map_or(100.0, |v| v.parse().unwrap_or_else(|_| die("bad --t2")));
    let backbone: f64 = opt_value(&args, "backbone").map_or(t1.max(t2), |v| {
        v.parse().unwrap_or_else(|_| die("bad --backbone"))
    });
    let beta: f64 =
        opt_value(&args, "beta").map_or(0.05, |v| v.parse().unwrap_or_else(|_| die("bad --beta")));
    let algo = opt_value(&args, "algo")
        .map(|v| algo_from(v).unwrap_or_else(|| die("unknown --algo")))
        .unwrap_or(Algorithm::Oggp);

    let platform = Platform::new(traffic.senders(), traffic.receivers(), t1, t2, backbone);
    println!(
        "platform: {}x{} nodes, t = {:.1} Mbit/s, k = {}; traffic: {} messages, {:.1} MB",
        platform.n1,
        platform.n2,
        platform.transfer_speed(),
        platform.k(),
        traffic.message_count(),
        traffic.total_bytes() as f64 / 1e6
    );

    let plan = Planner::new(algo).with_beta(beta).plan(&traffic, &platform);
    plan.schedule
        .validate(&plan.instance)
        .unwrap_or_else(|e| die(&format!("internal error: invalid schedule: {e}")));
    println!(
        "{algo:?}: {} steps, cost {:.2} s, lower bound {:.2} s, ratio {:.4}",
        plan.schedule.num_steps(),
        plan.cost_seconds(),
        plan.lower_bound_seconds(),
        plan.evaluation_ratio()
    );

    if opt_flag(&args, "gantt") {
        println!("\n{}", plan.schedule.gantt(72));
    }
    if opt_flag(&args, "simulate") {
        let r = plan.simulate_ideal();
        println!(
            "simulated on the platform network: {:.2} s over {} steps ({:.2} s barriers)",
            r.total_seconds, r.num_steps, r.barrier_seconds
        );
    }
    if opt_flag(&args, "compare") {
        println!("\nall algorithms:");
        for a in [
            Algorithm::Oggp,
            Algorithm::Ggp,
            Algorithm::List,
            Algorithm::Greedy,
            Algorithm::Sequential,
        ] {
            let p = Planner::new(a).with_beta(beta).plan(&traffic, &platform);
            println!(
                "  {:>10?}: {:>3} steps, {:>8.2} s (ratio {:.4})",
                a,
                p.schedule.num_steps(),
                p.cost_seconds(),
                p.evaluation_ratio()
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("redistplan: {msg}");
    std::process::exit(2);
}
