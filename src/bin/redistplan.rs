//! `redistplan` — plan a data redistribution from the command line.
//!
//! ```sh
//! redistplan --matrix traffic.csv --t1 100 --t2 100 --backbone 300 \
//!            [--beta 0.05] [--algo oggp|ggp|list|greedy|sequential|hier] \
//!            [--blocks B] [--jobs N] [--gantt] [--simulate] [--compare] \
//!            [--trace out.json] [--counters]
//! ```
//!
//! The CSV holds one row per sender with per-receiver byte counts
//! (`k`/`M`/`G` suffixes allowed, `#` comments skipped). `--matrix -` reads
//! the matrix from stdin instead of a file (at most once). Without `--matrix`
//! a small demo workload is used. `--matrix` may be repeated to plan a batch
//! of redistributions in one invocation; `--jobs N` schedules the batch (and
//! the `--compare` sweep) on `N` worker threads. Planning is deterministic
//! per instance and results are printed in input order, so the output is
//! identical for every `--jobs` value — only the wall time changes.
//!
//! `--trace <path>` records telemetry spans through planning and simulation
//! (it implies `--simulate`) and writes a Chrome trace-event JSON loadable
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! `--counters` prints the deterministic work-counter table after planning
//! (worker threads flush their counters when the batch joins, so the table
//! too is independent of `--jobs`).

use redistribute::cli::{opt_flag, opt_value, opt_values, parse_matrix_csv};
use redistribute::kpbs::batch::parallel_map;
use redistribute::kpbs::traffic::TickScale;
use redistribute::kpbs::{plan_topology, Platform, TopoAlgo, Topology, TrafficMatrix};
use redistribute::telemetry::{counters, export, spans};
use redistribute::{Algorithm, Plan, Planner};

fn algo_from(name: &str) -> Option<Algorithm> {
    match name {
        "ggp" => Some(Algorithm::Ggp),
        "oggp" => Some(Algorithm::Oggp),
        "sequential" => Some(Algorithm::Sequential),
        "list" => Some(Algorithm::List),
        "greedy" => Some(Algorithm::Greedy),
        "hier" => Some(Algorithm::Hier),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if opt_flag(&args, "help") {
        println!(
            "redistplan — plan a data redistribution from the command line\n\
             \n\
             usage: redistplan --matrix traffic.csv --t1 100 --t2 100 --backbone 300\n\
             \x20                [--beta 0.05] [--algo oggp|ggp|list|greedy|sequential|hier]\n\
             \x20                [--blocks B] [--jobs N] [--gantt] [--simulate] [--compare]\n\
             \x20                [--trace out.json] [--counters]\n\
             \n\
             The CSV holds one row per sender with per-receiver byte counts\n\
             (k/M/G suffixes allowed, '#' comments skipped). Without --matrix a\n\
             small demo workload is used. Repeat --matrix to plan a batch in one\n\
             invocation. Pass '-' as the path to read one matrix from stdin\n\
             (usable once per invocation, combinable with file paths).\n\
             \n\
             --topo <path>   plan over a heterogeneous topology instead of the\n\
             \x20               uniform --t1/--t2/--backbone platform. The file\n\
             \x20               holds 'node OUT IN CLUSTER [COUNT]' and\n\
             \x20               'link CAP SRC DST' lines ('#' comments allowed);\n\
             \x20               each traffic block is planned under its own\n\
             \x20               backbone's preemption bound k_b and the per-link\n\
             \x20               schedules are composed (--algo oggp|ggp|hier)\n\
             --blocks B      block count for --algo hier (default: auto, ~sqrt(n);\n\
             \x20               1 reproduces flat oggp)\n\
             --jobs N        plan batches and --compare sweeps on N threads;\n\
             \x20               output is identical to --jobs 1\n\
             --trace <path>  record spans and write Chrome trace-event JSON\n\
             \x20               (open in Perfetto or chrome://tracing; implies\n\
             \x20               --simulate)\n\
             --counters      print the deterministic work-counter table"
        );
        return;
    }

    let matrix_paths = opt_values(&args, "matrix");
    let traffics: Vec<TrafficMatrix> = if matrix_paths.is_empty() {
        eprintln!("(no --matrix given; using a 4x4 demo workload)");
        let mut t = TrafficMatrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                t.set(i, j, 5_000_000 + (i * 4 + j) as u64 * 2_000_000);
            }
        }
        vec![t]
    } else {
        if matrix_paths.iter().filter(|p| **p == "-").count() > 1 {
            die("--matrix - (stdin) can be given at most once");
        }
        matrix_paths
            .iter()
            .map(|path| {
                let text = if *path == "-" {
                    use std::io::Read;
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
                    buf
                } else {
                    std::fs::read_to_string(path)
                        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")))
                };
                parse_matrix_csv(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
            })
            .collect()
    };

    let t1: f64 =
        opt_value(&args, "t1").map_or(100.0, |v| v.parse().unwrap_or_else(|_| die("bad --t1")));
    let t2: f64 =
        opt_value(&args, "t2").map_or(100.0, |v| v.parse().unwrap_or_else(|_| die("bad --t2")));
    let backbone: f64 = opt_value(&args, "backbone").map_or(t1.max(t2), |v| {
        v.parse().unwrap_or_else(|_| die("bad --backbone"))
    });
    let beta: f64 =
        opt_value(&args, "beta").map_or(0.05, |v| v.parse().unwrap_or_else(|_| die("bad --beta")));
    let algo = opt_value(&args, "algo")
        .map(|v| algo_from(v).unwrap_or_else(|| die("unknown --algo")))
        .unwrap_or(Algorithm::Oggp);
    let jobs: usize = opt_value(&args, "jobs").map_or(1, |v| {
        let n = v.parse().unwrap_or_else(|_| die("bad --jobs"));
        if n == 0 {
            die("--jobs must be at least 1")
        }
        n
    });
    let blocks: usize = opt_value(&args, "blocks").map_or(0, |v| {
        let b = v.parse().unwrap_or_else(|_| die("bad --blocks"));
        if b == 0 {
            die("--blocks must be at least 1")
        }
        b
    });

    // Telemetry must be armed before planning so the spans and counters see
    // the scheduler's work (worker threads observe the same global switches).
    let trace_path = opt_value(&args, "trace");
    let want_counters = opt_flag(&args, "counters");
    if trace_path.is_some() {
        spans::enable();
    }
    if want_counters {
        counters::enable();
    }

    if let Some(path) = opt_value(&args, "topo") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let topo = Topology::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        let topo_algo = match algo {
            Algorithm::Oggp => TopoAlgo::Oggp,
            Algorithm::Ggp => TopoAlgo::Ggp,
            Algorithm::Hier => {
                let b = if blocks > 0 {
                    blocks
                } else {
                    redistribute::kpbs::hier::default_blocks(topo.senders().min(topo.receivers()))
                };
                TopoAlgo::Hier(redistribute::kpbs::hier::HierConfig::new(b))
            }
            other => die(&format!("--topo supports oggp|ggp|hier, not {other:?}")),
        };
        for (i, traffic) in traffics.iter().enumerate() {
            if traffics.len() > 1 {
                let path = matrix_paths.get(i).copied().unwrap_or("<demo>");
                println!("[{}/{}] {path}", i + 1, traffics.len());
            }
            let plan = plan_topology(traffic, &topo, beta, TickScale::MILLIS, topo_algo)
                .unwrap_or_else(|e| die(&format!("topology planning failed: {e}")));
            println!(
                "topology: {} senders, {} receivers, {} backbones; traffic: {} messages, {:.1} MB",
                topo.senders(),
                topo.receivers(),
                topo.links.len(),
                traffic.message_count(),
                traffic.total_bytes() as f64 / 1e6
            );
            for lp in &plan.link_plans {
                let link = &topo.links[lp.link];
                println!(
                    "  link {} ({} -> {}, {:.1} Mbit/s): k_b = {}, {} messages, cost {:.2} s (bound {:.2} s)",
                    lp.link,
                    link.connects.0,
                    link.connects.1,
                    link.capacity,
                    lp.k,
                    lp.messages,
                    lp.cost as f64 / TickScale::MILLIS.ticks_per_second,
                    lp.lower_bound as f64 / TickScale::MILLIS.ticks_per_second
                );
            }
            let secs = TickScale::MILLIS.ticks_per_second;
            println!(
                "{algo:?}: {} composed steps, cost {:.2} s, lower bound {:.2} s, ratio {:.4}",
                plan.schedule.num_steps(),
                plan.schedule.cost() as f64 / secs,
                plan.lower_bound as f64 / secs,
                plan.evaluation_ratio()
            );
            if opt_flag(&args, "gantt") {
                println!("\n{}", plan.schedule.gantt(72));
            }
        }
        if want_counters {
            counters::disable();
            println!("\nwork counters:");
            print!("{}", export::counter_summary(&counters::global_snapshot()));
        }
        return;
    }

    // Matrices in a batch may differ in shape, so each gets its own platform.
    let platforms: Vec<Platform> = traffics
        .iter()
        .map(|t| Platform::new(t.senders(), t.receivers(), t1, t2, backbone))
        .collect();
    let inputs: Vec<(TrafficMatrix, Platform)> = traffics.into_iter().zip(platforms).collect();

    let planner = Planner::new(algo).with_beta(beta).with_blocks(blocks);
    // The fan-out: all plans are computed before anything is printed, and
    // printed in input order, keeping the output independent of --jobs.
    let plans: Vec<Plan> = parallel_map(&inputs, jobs, |(t, p)| planner.plan(t, p));

    for (i, plan) in plans.iter().enumerate() {
        let (traffic, platform) = (&plan.traffic, &plan.platform);
        if plans.len() > 1 {
            let path = matrix_paths.get(i).copied().unwrap_or("<demo>");
            println!("[{}/{}] {path}", i + 1, plans.len());
        }
        println!(
            "platform: {}x{} nodes, t = {:.1} Mbit/s, k = {}; traffic: {} messages, {:.1} MB",
            platform.n1,
            platform.n2,
            platform.transfer_speed(),
            platform.k(),
            traffic.message_count(),
            traffic.total_bytes() as f64 / 1e6
        );
        plan.schedule
            .validate(&plan.instance)
            .unwrap_or_else(|e| die(&format!("internal error: invalid schedule: {e}")));
        println!(
            "{algo:?}: {} steps, cost {:.2} s, lower bound {:.2} s, ratio {:.4}",
            plan.schedule.num_steps(),
            plan.cost_seconds(),
            plan.lower_bound_seconds(),
            plan.evaluation_ratio()
        );

        if opt_flag(&args, "gantt") {
            println!("\n{}", plan.schedule.gantt(72));
        }
        if opt_flag(&args, "simulate") || trace_path.is_some() {
            let r = plan.simulate_ideal();
            println!(
                "simulated on the platform network: {:.2} s over {} steps ({:.2} s barriers)",
                r.total_seconds, r.num_steps, r.barrier_seconds
            );
        }
        if opt_flag(&args, "compare") {
            let algos = [
                Algorithm::Oggp,
                Algorithm::Ggp,
                Algorithm::List,
                Algorithm::Greedy,
                Algorithm::Sequential,
            ];
            let compared = parallel_map(&algos, jobs, |&a| {
                Planner::new(a).with_beta(beta).plan(traffic, platform)
            });
            println!("\nall algorithms:");
            for (a, p) in algos.iter().zip(&compared) {
                println!(
                    "  {:>10?}: {:>3} steps, {:>8.2} s (ratio {:.4})",
                    a,
                    p.schedule.num_steps(),
                    p.cost_seconds(),
                    p.evaluation_ratio()
                );
            }
        }
    }

    if let Some(path) = trace_path {
        spans::disable();
        let events = spans::drain_all();
        let json = export::chrome_trace(&events);
        std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!(
            "\ntrace: {} events written to {path} (open in https://ui.perfetto.dev)",
            events.len()
        );
        print!("{}", export::span_summary(&events));
    }
    if want_counters {
        counters::disable();
        println!("\nwork counters:");
        print!("{}", export::counter_summary(&counters::global_snapshot()));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("redistplan: {msg}");
    std::process::exit(2);
}
