//! Helpers for the `redistplan` command-line tool: CSV traffic-matrix
//! parsing and option handling, kept in the library so they are unit-tested.

use kpbs::TrafficMatrix;

/// Parses a traffic matrix from CSV text: one row per sender, comma- (or
/// whitespace-) separated byte counts per receiver. Blank lines and lines
/// starting with `#` are skipped. Values accept `k`/`M`/`G` suffixes
/// (decimal: 1k = 1000).
pub fn parse_matrix_csv(text: &str) -> Result<TrafficMatrix, String> {
    let mut rows: Vec<Vec<u64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for cell in line.split(|c: char| c == ',' || c.is_whitespace()) {
            let cell = cell.trim();
            if cell.is_empty() {
                continue;
            }
            row.push(
                parse_bytes(cell)
                    .ok_or_else(|| format!("line {}: bad value {cell:?}", lineno + 1))?,
            );
        }
        if !row.is_empty() {
            rows.push(row);
        }
    }
    if rows.is_empty() {
        return Err("matrix is empty".into());
    }
    let n2 = rows[0].len();
    if rows.iter().any(|r| r.len() != n2) {
        return Err("rows have inconsistent lengths".into());
    }
    let n1 = rows.len();
    Ok(TrafficMatrix::from_rows(
        n1,
        n2,
        rows.into_iter().flatten().collect(),
    ))
}

/// Parses `123`, `10k`, `25M`, `1.5G` into bytes (decimal suffixes).
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1_000.0),
        'm' | 'M' => (&s[..s.len() - 1], 1_000_000.0),
        'g' | 'G' => (&s[..s.len() - 1], 1_000_000_000.0),
        _ => (s, 1.0),
    };
    let v: f64 = num.parse().ok()?;
    if v < 0.0 || !v.is_finite() {
        return None;
    }
    Some((v * mult).round() as u64)
}

/// Looks up `--name value` in an argument list.
pub fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .map(|w| w[1].as_str())
}

/// True when `--name` appears as a flag.
pub fn opt_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == &format!("--{name}"))
}

/// Collects every value of a repeatable `--name value` option, in order.
/// `opt_value` returns only the first; batch options like `--matrix` may
/// appear once per input.
pub fn opt_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    let flag = format!("--{name}");
    args.windows(2)
        .filter(|w| w[0] == flag)
        .map(|w| w[1].as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_matrix() {
        let m = parse_matrix_csv("1,2,3\n4,5,6\n").unwrap();
        assert_eq!(m.senders(), 2);
        assert_eq!(m.receivers(), 3);
        assert_eq!(m.get(1, 2), 6);
        assert_eq!(m.total_bytes(), 21);
    }

    #[test]
    fn comments_blanks_and_suffixes() {
        let m = parse_matrix_csv("# header\n\n10k, 2M\n0, 1G\n").unwrap();
        assert_eq!(m.get(0, 0), 10_000);
        assert_eq!(m.get(0, 1), 2_000_000);
        assert_eq!(m.get(1, 1), 1_000_000_000);
        assert_eq!(m.get(1, 0), 0);
    }

    #[test]
    fn whitespace_separated() {
        let m = parse_matrix_csv("1 2\n3 4\n").unwrap();
        assert_eq!(m.get(1, 0), 3);
    }

    #[test]
    fn ragged_rejected() {
        assert!(parse_matrix_csv("1,2\n3\n").is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(parse_matrix_csv("# nothing\n").is_err());
    }

    #[test]
    fn bad_value_rejected() {
        let e = parse_matrix_csv("1,x\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
    }

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("42"), Some(42));
        assert_eq!(parse_bytes("1.5k"), Some(1_500));
        assert_eq!(parse_bytes("2M"), Some(2_000_000));
        assert_eq!(parse_bytes("-1"), None);
        assert_eq!(parse_bytes("nan"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn option_helpers() {
        let args: Vec<String> = ["--k", "3", "--gantt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(opt_value(&args, "k"), Some("3"));
        assert_eq!(opt_value(&args, "beta"), None);
        assert!(opt_flag(&args, "gantt"));
        assert!(!opt_flag(&args, "simulate"));
    }

    #[test]
    fn repeated_options() {
        let args: Vec<String> = ["--matrix", "a.csv", "--k", "2", "--matrix", "b.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(opt_values(&args, "matrix"), vec!["a.csv", "b.csv"]);
        assert_eq!(opt_value(&args, "matrix"), Some("a.csv"));
        assert!(opt_values(&args, "beta").is_empty());
    }
}
