//! # redistribute — message scheduling for data redistribution through a backbone
//!
//! A production-oriented implementation of Jeannot & Wagner, *Two Fast and
//! Efficient Message Scheduling Algorithms for Data Redistribution through a
//! Backbone* (IPDPS 2004): the **K-PBS** scheduling problem, its **GGP** and
//! **OGGP** 2-approximation algorithms, and everything needed to evaluate
//! them — a bipartite-graph library, a fluid network simulator, and an
//! MPI-like threaded runtime.
//!
//! The constituent crates are re-exported:
//!
//! * [`bipartite`] — graphs, matchings (maximum-cardinality, bottleneck),
//! * [`kpbs`] — the schedulers, bounds, baselines and extensions,
//! * [`flowsim`] — the discrete-event network simulator,
//! * [`mpilite`] — the threaded message-passing runtime,
//! * [`telemetry`] — spans, deterministic work counters, trace export.
//!
//! The [`Planner`]/[`Plan`] pair on this crate is the "fully working
//! redistribution library" of the paper's conclusion: hand it a traffic
//! matrix and a platform description, get a feasible schedule, inspect its
//! cost against the lower bound, then run it — simulated or threaded.
//!
//! ```
//! use redistribute::{Algorithm, Planner};
//! use redistribute::kpbs::{Platform, TrafficMatrix};
//!
//! let platform = Platform::new(4, 4, 100.0, 100.0, 200.0); // k = 2
//! let mut traffic = TrafficMatrix::zeros(4, 4);
//! traffic.set(0, 0, 20_000_000);
//! traffic.set(0, 3, 5_000_000);
//! traffic.set(2, 1, 12_000_000);
//!
//! let plan = Planner::new(Algorithm::Oggp).plan(&traffic, &platform);
//! assert!(plan.evaluation_ratio() < 2.0);
//! let report = plan.simulate_ideal();
//! assert!(report.total_seconds > 0.0);
//! ```

pub use bipartite;
pub use flowsim;
pub use kpbs;
pub use mpilite;
pub use telemetry;

pub mod cli;

use flowsim::{ExecutionReport, NetworkSpec, SimConfig};
use kpbs::traffic::TickScale;
use kpbs::{Instance, Platform, Schedule, TrafficMatrix};

/// The scheduling algorithms a [`Planner`] can use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Generic Graph Peeling (Section 4.2 of the paper).
    Ggp,
    /// Optimised Generic Graph Peeling (Section 4.3) — the default.
    Oggp,
    /// One message per step (strawman).
    Sequential,
    /// Non-preemptive heaviest-first list scheduling.
    List,
    /// Preemptive greedy peeling without regularisation (ablation).
    Greedy,
    /// Hierarchical block-decomposed planning (see [`mod@kpbs::hier`]) — for
    /// large sparse instances where flat OGGP's peeling is too slow. Block
    /// count defaults to `⌈√n⌉` and can be overridden with
    /// [`Planner::with_blocks`].
    Hier,
}

/// Builds [`Plan`]s from traffic matrices.
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    algorithm: Algorithm,
    beta_seconds: f64,
    scale: TickScale,
    blocks: usize,
}

impl Planner {
    /// A planner with the given algorithm, a 50 ms setup delay and
    /// millisecond tick resolution.
    pub fn new(algorithm: Algorithm) -> Self {
        Planner {
            algorithm,
            beta_seconds: 0.05,
            scale: TickScale::MILLIS,
            blocks: 0,
        }
    }

    /// Overrides the block count used by [`Algorithm::Hier`] (`0` — the
    /// default — picks `⌈√n⌉` per [`kpbs::hier::default_blocks`]; `1`
    /// reproduces flat OGGP). Ignored by the other algorithms.
    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    /// Overrides the per-step setup delay β (seconds).
    pub fn with_beta(mut self, beta_seconds: f64) -> Self {
        assert!(beta_seconds >= 0.0);
        self.beta_seconds = beta_seconds;
        self
    }

    /// Overrides the tick resolution.
    pub fn with_scale(mut self, scale: TickScale) -> Self {
        self.scale = scale;
        self
    }

    /// Schedules `traffic` on `platform`.
    pub fn plan(&self, traffic: &TrafficMatrix, platform: &Platform) -> Plan {
        let (instance, endpoints) = traffic.to_instance(platform, self.beta_seconds, self.scale);
        let schedule = match self.algorithm {
            Algorithm::Ggp => kpbs::ggp(&instance),
            Algorithm::Oggp => kpbs::oggp(&instance),
            Algorithm::Sequential => kpbs::baselines::sequential(&instance),
            Algorithm::List => kpbs::baselines::nonpreemptive_list(&instance),
            Algorithm::Greedy => kpbs::baselines::preemptive_greedy(&instance),
            Algorithm::Hier => {
                let n = instance
                    .graph
                    .left_count()
                    .max(instance.graph.right_count());
                let blocks = if self.blocks == 0 {
                    kpbs::hier::default_blocks(n)
                } else {
                    self.blocks
                };
                kpbs::hier(&instance, &kpbs::HierConfig::new(blocks))
            }
        };
        debug_assert!(schedule.validate(&instance).is_ok());
        Plan {
            traffic: traffic.clone(),
            platform: *platform,
            instance,
            endpoints,
            schedule,
            beta_seconds: self.beta_seconds,
            scale: self.scale,
        }
    }

    /// Schedules a batch of traffic matrices on `platform` across `jobs`
    /// worker threads, returning the plans in input order.
    ///
    /// Instances are independent, so the result is identical for every
    /// `jobs` value (the `redistplan --jobs` flag is checked against that in
    /// `scripts/check.sh`); only the wall time changes.
    pub fn plan_many(
        &self,
        traffic: &[TrafficMatrix],
        platform: &Platform,
        jobs: usize,
    ) -> Vec<Plan> {
        kpbs::batch::parallel_map(traffic, jobs, |t| self.plan(t, platform))
    }
}

/// A planned redistribution: the schedule plus everything needed to execute
/// or evaluate it.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The traffic matrix the plan was built for.
    pub traffic: TrafficMatrix,
    /// The platform description.
    pub platform: Platform,
    /// The K-PBS instance (graph in ticks, k, β).
    pub instance: Instance,
    /// `(sender, receiver)` behind each edge id.
    pub endpoints: Vec<(usize, usize)>,
    /// The schedule.
    pub schedule: Schedule,
    /// β in seconds.
    pub beta_seconds: f64,
    /// Tick resolution.
    pub scale: TickScale,
}

impl Plan {
    /// Analytic cost of the schedule in seconds, `Σ (β + step duration)`.
    pub fn cost_seconds(&self) -> f64 {
        self.scale.to_seconds(self.schedule.cost())
    }

    /// The Cohen–Jeannot–Padoy lower bound in seconds.
    pub fn lower_bound_seconds(&self) -> f64 {
        self.scale.to_seconds(kpbs::lower_bound(&self.instance))
    }

    /// The paper's evaluation ratio: cost / lower bound (1.0 for an empty
    /// plan).
    pub fn evaluation_ratio(&self) -> f64 {
        let lb = self.lower_bound_seconds();
        if lb == 0.0 {
            1.0
        } else {
            self.cost_seconds() / lb
        }
    }

    /// Simulates the plan on the platform's network with an ideal fluid
    /// transport.
    pub fn simulate_ideal(&self) -> ExecutionReport {
        self.simulate(
            &NetworkSpec::from_platform(&self.platform),
            &SimConfig::default(),
        )
    }

    /// Simulates the plan on an arbitrary network and transport model.
    pub fn simulate(&self, spec: &NetworkSpec, config: &SimConfig) -> ExecutionReport {
        flowsim::scheduled_time(
            &self.traffic,
            &self.instance,
            &self.endpoints,
            &self.schedule,
            spec,
            self.beta_seconds,
            config,
        )
    }

    /// ASCII Gantt chart of the schedule (see [`Schedule::gantt`]).
    pub fn gantt(&self) -> String {
        self.schedule.gantt(72)
    }

    /// Estimated makespan if the global barriers were weakened into
    /// per-node dependencies (the paper's §2.1 post-processing), in seconds.
    pub fn relaxed_estimate_seconds(&self) -> f64 {
        let r = kpbs::relax::relax_k(
            &self.schedule,
            &self.instance.graph,
            self.instance.effective_k(),
        );
        self.scale.to_seconds(r.makespan)
    }

    /// Executes the plan on the threaded MPI-like runtime, moving real
    /// bytes; returns the measured wall-clock report.
    pub fn execute_threaded(&self, fabric: mpilite::FabricConfig) -> mpilite::RunnerReport {
        mpilite::run_schedule(
            &self.traffic,
            &self.instance,
            &self.endpoints,
            &self.schedule,
            fabric,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_traffic() -> (TrafficMatrix, Platform) {
        let platform = Platform::new(3, 3, 100.0, 100.0, 200.0);
        let mut t = TrafficMatrix::zeros(3, 3);
        t.set(0, 0, 10_000_000);
        t.set(0, 1, 4_000_000);
        t.set(1, 1, 8_000_000);
        t.set(2, 2, 6_000_000);
        (t, platform)
    }

    #[test]
    fn all_algorithms_produce_valid_plans() {
        let (t, p) = demo_traffic();
        for algo in [
            Algorithm::Ggp,
            Algorithm::Oggp,
            Algorithm::Sequential,
            Algorithm::List,
            Algorithm::Greedy,
            Algorithm::Hier,
        ] {
            let plan = Planner::new(algo).plan(&t, &p);
            plan.schedule
                .validate(&plan.instance)
                .unwrap_or_else(|e| panic!("{algo:?}: {e}"));
            assert!(plan.evaluation_ratio() >= 1.0 - 1e-9, "{algo:?}");
        }
    }

    #[test]
    fn hier_blocks_one_matches_oggp() {
        let (t, p) = demo_traffic();
        let hier = Planner::new(Algorithm::Hier).with_blocks(1).plan(&t, &p);
        let oggp = Planner::new(Algorithm::Oggp).plan(&t, &p);
        assert_eq!(hier.schedule, oggp.schedule);
    }

    #[test]
    fn oggp_not_worse_than_sequential() {
        let (t, p) = demo_traffic();
        let oggp = Planner::new(Algorithm::Oggp).plan(&t, &p);
        let seq = Planner::new(Algorithm::Sequential).plan(&t, &p);
        assert!(oggp.cost_seconds() <= seq.cost_seconds());
    }

    #[test]
    fn beta_zero_supported() {
        let (t, p) = demo_traffic();
        let plan = Planner::new(Algorithm::Oggp).with_beta(0.0).plan(&t, &p);
        assert!(plan.schedule.validate(&plan.instance).is_ok());
    }

    #[test]
    fn simulation_close_to_analytic_cost() {
        let (t, p) = demo_traffic();
        let plan = Planner::new(Algorithm::Oggp).plan(&t, &p);
        let sim = plan.simulate_ideal();
        let analytic = plan.cost_seconds();
        let rel = (sim.total_seconds - analytic).abs() / analytic;
        assert!(
            rel < 0.02,
            "sim {} vs analytic {analytic}",
            sim.total_seconds
        );
    }

    #[test]
    fn plan_sugar() {
        let (t, p) = demo_traffic();
        let plan = Planner::new(Algorithm::Oggp).plan(&t, &p);
        let g = plan.gantt();
        assert!(g.contains('#'), "gantt renders transmissions:\n{g}");
        let relaxed = plan.relaxed_estimate_seconds();
        assert!(relaxed > 0.0);
        assert!(relaxed <= plan.cost_seconds() + 1e-9);
    }

    #[test]
    fn empty_traffic_trivial_plan() {
        let p = Platform::new(2, 2, 100.0, 100.0, 200.0);
        let t = TrafficMatrix::zeros(2, 2);
        let plan = Planner::new(Algorithm::Oggp).plan(&t, &p);
        assert_eq!(plan.schedule.num_steps(), 0);
        assert_eq!(plan.evaluation_ratio(), 1.0);
    }
}
