//! Offline stand-in for `criterion`.
//!
//! Provides a working wall-clock benchmark harness with criterion's
//! macro and builder surface (`criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`]): each benchmark is warmed up,
//! timed over `sample_size` samples with an adaptive per-sample
//! iteration count, and reported as median/mean ns-per-iteration on
//! stdout. There is no statistical regression analysis, plotting, or
//! saved baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target wall time per measured sample; the per-sample iteration count
/// is chosen so one sample takes roughly this long.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// Top-level benchmark driver; holds default settings for groups.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.render(None), self.default_sample_size, &mut f);
    }
}

/// Identifier combining a function name and an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl ToString) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier with only a parameter label.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = self.function.as_deref() {
            parts.push(f);
        }
        if let Some(p) = self.parameter.as_deref() {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark (min 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Sets the measurement time budget. Accepted for API compatibility;
    /// this harness sizes samples adaptively instead.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.render(Some(&self.name)), self.sample_size, &mut f);
    }

    /// Runs a benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&id.render(Some(&self.name)), self.sample_size, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group. (No cross-benchmark analysis to flush here.)
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibration: find an iteration count that makes one sample last
    // about TARGET_SAMPLE_TIME (also serves as warm-up).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters_per_sample: iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        // Grow geometrically toward the target.
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE_TIME.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters_per_sample: iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{label:<60} median {} mean {} ({} samples x {} iters)",
        format_ns(median),
        format_ns(mean),
        sample_size,
        iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>9.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>9.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>9.3} µs", ns / 1e3)
    } else {
        format!("{ns:>9.1} ns")
    }
}

/// Re-export point used by generated code; mirrors upstream's shape.
pub use self::Criterion as __Criterion;

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let input = vec![1u64; 64];
        group.bench_with_input(BenchmarkId::new("sum", 64), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
