//! No-op `Serialize` / `Deserialize` derives for the offline serde
//! stand-in: each derive expands to an empty marker-trait impl for the
//! decorated type (generic parameters included), which is all the
//! workspace needs since no serializer backend is present.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the empty `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize", "")
}

/// Derives the empty `serde::Deserialize<'de>` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize", "'de")
}

/// Parses just enough of the item — its name and generic parameter names —
/// to emit `impl<...> serde::Trait for Name<...> {}`.
fn marker_impl(input: TokenStream, trait_name: &str, trait_lifetime: &str) -> TokenStream {
    let (name, generics) = parse_name_and_generics(input);
    let (decl, usage) = generics_tokens(&generics);

    let mut impl_generics: Vec<String> = Vec::new();
    if !trait_lifetime.is_empty() {
        impl_generics.push(trait_lifetime.to_string());
    }
    impl_generics.extend(decl);

    let impl_list = if impl_generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_generics.join(", "))
    };
    let trait_args = if trait_lifetime.is_empty() {
        String::new()
    } else {
        format!("<{trait_lifetime}>")
    };
    let usage_list = if usage.is_empty() {
        String::new()
    } else {
        format!("<{}>", usage.join(", "))
    };
    let bounds: String = generics
        .iter()
        .filter(|g| g.kind == ParamKind::Type)
        .map(|g| format!("{}: serde::{trait_name}{trait_args},", g.name))
        .collect();
    let where_clause = if bounds.is_empty() {
        String::new()
    } else {
        format!(" where {bounds}")
    };

    format!(
        "impl{impl_list} serde::{trait_name}{trait_args} for {name}{usage_list}{where_clause} {{}}"
    )
    .parse()
    .expect("generated impl parses")
}

#[derive(PartialEq)]
enum ParamKind {
    Lifetime,
    Type,
    Const,
}

struct Param {
    kind: ParamKind,
    name: String,
    /// Full declaration text, e.g. `const N: usize` or `'a`.
    decl: String,
}

/// Extracts the item name and its generic parameters from a
/// struct/enum/union declaration token stream.
fn parse_name_and_generics(input: TokenStream) -> (String, Vec<Param>) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility to the `struct`/`enum`/`union` keyword.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name after struct/enum keyword, got {other:?}"),
    };
    i += 2;

    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut current: Vec<TokenTree> = Vec::new();
            let mut params_raw: Vec<Vec<TokenTree>> = Vec::new();
            while i < tokens.len() && depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        current.push(tokens[i].clone());
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            current.push(tokens[i].clone());
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        params_raw.push(std::mem::take(&mut current));
                    }
                    t => current.push(t.clone()),
                }
                i += 1;
            }
            if !current.is_empty() {
                params_raw.push(current);
            }
            for raw in params_raw {
                if let Some(p) = parse_param(&raw) {
                    generics.push(p);
                }
            }
        }
    }
    (name, generics)
}

/// Parses one generic parameter (tokens between commas at depth 1).
fn parse_param(raw: &[TokenTree]) -> Option<Param> {
    let mut iter = raw.iter();
    let first = iter.next()?;
    match first {
        TokenTree::Punct(p) if p.as_char() == '\'' => {
            let name = match iter.next()? {
                TokenTree::Ident(id) => format!("'{id}"),
                _ => return None,
            };
            Some(Param {
                kind: ParamKind::Lifetime,
                decl: name.clone(),
                name,
            })
        }
        TokenTree::Ident(id) if id.to_string() == "const" => {
            let name = match iter.next()? {
                TokenTree::Ident(id) => id.to_string(),
                _ => return None,
            };
            // Keep the declared type; drop any default (`= ...`).
            let mut decl = format!("const {name}");
            for t in iter {
                if let TokenTree::Punct(p) = t {
                    if p.as_char() == '=' {
                        break;
                    }
                }
                decl.push(' ');
                decl.push_str(&tt_text(t));
            }
            Some(Param {
                kind: ParamKind::Const,
                name,
                decl,
            })
        }
        TokenTree::Ident(id) => {
            let name = id.to_string();
            // Keep bounds, drop defaults.
            let mut decl = name.clone();
            for t in iter {
                if let TokenTree::Punct(p) = t {
                    if p.as_char() == '=' {
                        break;
                    }
                }
                decl.push(' ');
                decl.push_str(&tt_text(t));
            }
            Some(Param {
                kind: ParamKind::Type,
                name,
                decl,
            })
        }
        _ => None,
    }
}

fn tt_text(t: &TokenTree) -> String {
    match t {
        TokenTree::Group(g) => {
            let (open, close) = match g.delimiter() {
                Delimiter::Parenthesis => ("(", ")"),
                Delimiter::Brace => ("{", "}"),
                Delimiter::Bracket => ("[", "]"),
                Delimiter::None => ("", ""),
            };
            let inner: String = g
                .stream()
                .into_iter()
                .map(|t| tt_text(&t))
                .collect::<Vec<_>>()
                .join(" ");
            format!("{open}{inner}{close}")
        }
        other => other.to_string(),
    }
}

fn generics_tokens(generics: &[Param]) -> (Vec<String>, Vec<String>) {
    let decl = generics.iter().map(|g| g.decl.clone()).collect();
    let usage = generics.iter().map(|g| g.name.clone()).collect();
    (decl, usage)
}
