//! MPMC channels with bounded capacity, including capacity 0
//! (rendezvous): `send` on a zero-capacity channel does not return until
//! a receiver has taken the message, which is the property `mpilite`'s
//! synchronous point-to-point layer depends on.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error returned by [`Sender::send`] when every receiver has been
/// dropped; carries the unsent message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    /// Messages pushed so far; a sender's message has sequence number
    /// `pushed` at push time and has been consumed once `popped` passes it.
    pushed: u64,
    popped: u64,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Effective buffer capacity; 0 behaves as a one-slot buffer whose
    /// sender additionally blocks until its message is consumed.
    cap: usize,
    cvar: Condvar,
}

impl<T> Shared<T> {
    fn slots(&self) -> usize {
        self.cap.max(1)
    }
}

/// Sending half of a channel; cloneable, usable from many threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel; cloneable, usable from many threads.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded MPMC channel. `cap == 0` yields rendezvous
/// semantics: each `send` blocks until a `recv` takes the message.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            pushed: 0,
            popped: 0,
            senders: 1,
            receivers: 1,
        }),
        cap,
        cvar: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued (and, for zero-capacity
    /// channels, consumed). Returns the message in `Err` if all receivers
    /// are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut s = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if s.receivers == 0 {
                return Err(SendError(msg));
            }
            if s.queue.len() < shared.slots() {
                break;
            }
            s = shared.cvar.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        let seq = s.pushed;
        s.pushed += 1;
        s.queue.push_back(msg);
        shared.cvar.notify_all();
        if shared.cap == 0 {
            // Rendezvous: stay blocked until our message is consumed.
            while s.popped <= seq {
                if s.receivers == 0 {
                    // Reclaim the message so the caller gets it back. It
                    // sits at the offset of its sequence number past the
                    // consumed prefix.
                    let idx = (seq - s.popped) as usize;
                    let msg = s.queue.remove(idx).expect("unconsumed message present");
                    return Err(SendError(msg));
                }
                s = shared.cvar.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; `Err` when the channel is empty
    /// and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut s = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = s.queue.pop_front() {
                s.popped += 1;
                shared.cvar.notify_all();
                return Ok(msg);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = shared.cvar.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Takes a message only if one is already queued.
    pub fn try_recv(&self) -> Option<T> {
        let shared = &*self.shared;
        let mut s = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        let msg = s.queue.pop_front();
        if msg.is_some() {
            s.popped += 1;
            shared.cvar.notify_all();
        }
        msg
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.senders -= 1;
        if s.senders == 0 {
            self.shared.cvar.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.receivers -= 1;
        if s.receivers == 0 {
            self.shared.cvar.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_fifo() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn rendezvous_blocks_until_received() {
        let (tx, rx) = bounded::<u32>(0);
        let t = std::thread::spawn(move || {
            // send must not complete before the main thread calls recv.
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv(), Ok(42));
        t.join().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));

        let (tx, rx) = bounded::<u32>(1);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn rendezvous_sender_unblocked_by_receiver_drop() {
        let (tx, rx) = bounded::<u32>(0);
        let t = std::thread::spawn(move || tx.send(7));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(7)));
    }

    #[test]
    fn mesh_of_rendezvous_channels() {
        // Mirrors mpilite's usage: one channel per (src, dst) pair shared
        // across scoped threads.
        let n = 3;
        let mut txs: Vec<Vec<Option<Sender<u64>>>> = Vec::new();
        let mut rxs: Vec<Vec<Option<Receiver<u64>>>> = Vec::new();
        for _ in 0..n {
            let mut tr = Vec::new();
            let mut rr = Vec::new();
            for _ in 0..n {
                let (tx, rx) = bounded(0);
                tr.push(Some(tx));
                rr.push(Some(rx));
            }
            txs.push(tr);
            rxs.push(rr);
        }
        // Transpose receivers so rank r owns rxs_t[r][s] = message from s.
        let txs: Vec<Vec<Sender<u64>>> = txs
            .into_iter()
            .map(|row| row.into_iter().map(Option::unwrap).collect())
            .collect();
        let mut rxs_t: Vec<Vec<Receiver<u64>>> = (0..n).map(|_| Vec::new()).collect();
        for row in rxs {
            for (d, rx) in row.into_iter().enumerate() {
                rxs_t[d].push(rx.unwrap());
            }
        }
        std::thread::scope(|scope| {
            for (r, (tx_row, rx_row)) in txs.iter().zip(&rxs_t).enumerate() {
                scope.spawn(move || {
                    let r = r as u64;
                    std::thread::scope(|inner| {
                        inner.spawn(move || {
                            for (d, tx) in tx_row.iter().enumerate() {
                                tx.send(r * 10 + d as u64).unwrap();
                            }
                        });
                        for (s, rx) in rx_row.iter().enumerate() {
                            assert_eq!(rx.recv().unwrap(), (s as u64) * 10 + r);
                        }
                    });
                });
            }
        });
    }
}
