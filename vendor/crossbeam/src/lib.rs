//! Offline stand-in for `crossbeam`.
//!
//! Only the [`channel`] module is provided — MPMC channels with
//! [`channel::bounded`] supporting capacity 0 (rendezvous), which is what
//! the `mpilite` point-to-point layer builds its mesh from.

#![warn(missing_docs)]

pub mod channel;
