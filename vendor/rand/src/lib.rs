//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the *exact* subset of the `rand 0.8` API it consumes:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable generator (xoshiro256++,
//!   the same family real `rand` uses for `SmallRng` on 64-bit targets),
//! * [`SeedableRng::seed_from_u64`] — the only constructor used here,
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive) and [`Rng::gen_bool`].
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! upstream `rand`; every consumer in this workspace only relies on
//! determinism and uniformity, never on the exact stream.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word (high bits of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `u64` convenience constructor is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps a uniform `u64` to a uniform `f64` in `[0, 1)` (53 random bits).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over an interval. Mirrors upstream's
/// `SampleUniform` so that [`SampleRange`] can be a single blanket impl —
/// which is what lets integer-literal ranges infer their type from the
/// surrounding expression.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator, seeded via SplitMix64 — the
    /// same construction upstream `rand` documents for `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5..=6u64);
            assert!((5..=6).contains(&w));
            let f = rng.gen_range(-1.5..=1.5f64);
            assert!((-1.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn works_through_unsized_ref() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(sample(&mut rng) < 10);
    }
}
