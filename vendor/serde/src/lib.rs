//! Offline stand-in for `serde`.
//!
//! The workspace decorates several types with `#[derive(Serialize,
//! Deserialize)]` but contains no serializer backend (no `serde_json`
//! etc.), so the traits only need to exist and the derives only need to
//! type-check. [`Serialize`] and [`Deserialize`] are therefore empty
//! marker traits, and the paired `serde_derive` proc-macro crate emits
//! empty impls for them.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
