//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (an immutable, cheaply cloneable byte buffer) and
//! [`BytesMut`] (a growable builder that freezes into [`Bytes`]). Unlike
//! upstream there is no zero-copy slicing machinery — clones of owned
//! data share one `Arc<[u8]>`, which preserves the O(1)-clone property
//! the message-passing layer relies on.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Static(&[])
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Returns a buffer holding the given subrange.
    ///
    /// Unlike upstream this copies the subrange instead of sharing the
    /// allocation; callers only rely on value semantics.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.as_slice()[start..end])
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Repr {
    fn eq(&self, other: &Self) -> bool {
        let a: &[u8] = match self {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        };
        let b: &[u8] = match other {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        };
        a == b
    }
}

impl Eq for Repr {}

impl std::hash::Hash for Repr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let s: &[u8] = match self {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        };
        s.hash(state);
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"hel");
        b.extend_from_slice(b"lo");
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"hello");
        let copy = frozen.clone();
        assert_eq!(copy, frozen);
    }

    #[test]
    fn static_and_vec_sources_compare_equal() {
        let s = Bytes::from_static(b"abc");
        let v = Bytes::from(b"abc".to_vec());
        assert_eq!(s, v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
