//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: composable [`strategy::Strategy`] values (ranges, tuples,
//! [`strategy::Just`], `prop_map`, `prop_flat_map`,
//! [`collection::vec`]), the [`proptest!`] macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!` assertion
//! macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (no persisted failure file) and failing cases are
//! **not** shrunk — the panic message reports the case number and seed so
//! a failure is still reproducible by rerunning the test.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test harness macro.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(300))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in pair_strategy()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each test runs its body for `cases` generated inputs; `prop_assume!`
/// rejections draw a replacement input (bounded retries) without
/// consuming a case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while let Some(mut rng) = runner.next_case() {
                let outcome = {
                    use $crate::strategy::Strategy as _;
                    $(let $arg = ($strat).generate(&mut rng);)+
                    #[allow(unused_mut, clippy::redundant_closure_call)]
                    let mut case =
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        };
                    case()
                };
                runner.record(outcome);
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Fails the current property-test case (with an optional formatted
/// message) without panicking, so the harness can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current input; the harness draws a replacement without
/// consuming a test case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
