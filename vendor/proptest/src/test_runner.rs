//! Test-execution machinery behind the [`proptest!`](crate::proptest)
//! macro: per-test configuration, case outcomes, and the deterministic
//! case runner.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hash::{Hash, Hasher};

/// How many consecutive `prop_assume!` rejections are tolerated before
/// the test aborts (mirrors upstream's global reject cap in spirit).
const MAX_CONSECUTIVE_REJECTS: u32 = 10_000;

/// Per-test configuration; only `cases` is meaningful in this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) inputs each property runs on.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Non-panicking outcome of one property-test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Input rejected by `prop_assume!`; retried without consuming a case.
    Reject(String),
    /// Assertion failure; aborts the test with the carried message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(what: impl Into<String>) -> Self {
        TestCaseError::Reject(what.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(w) => write!(f, "input rejected: {w}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// Drives one property through its configured number of cases with a
/// deterministic per-test, per-attempt RNG seed, so any reported failure
/// reproduces on rerun.
pub struct TestRunner {
    cases: u32,
    completed: u32,
    consecutive_rejects: u32,
    attempt: u64,
    seed_base: u64,
    current_seed: u64,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the property named `name` (used both for the
    /// seed derivation and in failure messages).
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // DefaultHasher::new() uses fixed keys, so the seed is stable
        // across processes and runs.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        TestRunner {
            cases: config.cases,
            completed: 0,
            consecutive_rejects: 0,
            attempt: 0,
            seed_base: h.finish(),
            current_seed: 0,
            name,
        }
    }

    /// Returns the RNG for the next attempt, or `None` once all cases
    /// have completed.
    pub fn next_case(&mut self) -> Option<SmallRng> {
        if self.completed >= self.cases {
            return None;
        }
        self.current_seed = self.seed_base.wrapping_add(self.attempt);
        self.attempt += 1;
        Some(SmallRng::seed_from_u64(self.current_seed))
    }

    /// Records the outcome of the attempt started by the last
    /// [`next_case`](TestRunner::next_case) call.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on an assertion failure
    /// or when rejections exceed the cap.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => {
                self.completed += 1;
                self.consecutive_rejects = 0;
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{}` failed at case {}/{} (seed {:#x}): {}",
                    self.name, self.completed, self.cases, self.current_seed, msg
                );
            }
            Err(TestCaseError::Reject(what)) => {
                self.consecutive_rejects += 1;
                if self.consecutive_rejects > MAX_CONSECUTIVE_REJECTS {
                    panic!(
                        "property `{}` rejected {} consecutive inputs (last: {})",
                        self.name, self.consecutive_rejects, what
                    );
                }
            }
        }
    }
}
