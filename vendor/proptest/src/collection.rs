//! Collection strategies: [`vec()`] with a flexible size specification.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Inclusive range of lengths accepted by [`vec()`]; built from a plain
/// `usize`, a `Range<usize>`, or a `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sizes_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let fixed = vec(0u64..10, 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
        let ranged = vec(0u64..10, 2..5usize);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let inclusive = vec(0u64..10, 0..=3usize);
        for _ in 0..100 {
            assert!(inclusive.generate(&mut rng).len() <= 3);
        }
    }
}
