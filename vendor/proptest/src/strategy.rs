//! Composable input generators. A [`Strategy`] produces one value per
//! call from the runner's deterministic RNG; combinators (`prop_map`,
//! `prop_flat_map`, tuples, ranges, [`Just`]) compose exactly like their
//! upstream namesakes, minus shrinking.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange};

/// A generator of test-case inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = SmallRng::seed_from_u64(0);
        let strat = (1usize..=4, 1usize..=4)
            .prop_flat_map(|(a, b)| (Just((a, b)), (0..a, 0..b)))
            .prop_map(|((a, b), (x, y))| (a, b, x, y));
        for _ in 0..200 {
            let (a, b, x, y) = strat.generate(&mut rng);
            assert!((1..=4).contains(&a) && (1..=4).contains(&b));
            assert!(x < a && y < b);
        }
    }
}
