//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly and a poisoned mutex (panicking
//! holder) is treated as still usable, matching parking_lot semantics
//! closely enough for this workspace's barrier/shaper code.

#![warn(missing_docs)]

use std::sync;
use std::sync::PoisonError;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// the underlying std guard and put a fresh one back after re-acquisition.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// re-acquiring the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
