//! Online redistribution — the paper's future-work scenario where "the
//! redistribution pattern is not fully known in advance": messages are
//! revealed while earlier ones are already moving, and the scheduler folds
//! them into the residual plan between steps.
//!
//! ```sh
//! cargo run --example online_arrivals
//! ```

use rand::{rngs::SmallRng, Rng, SeedableRng};
use redistribute::kpbs::online::{online_vs_offline, ArrivingMessage, OnlineScheduler};

fn main() {
    // A burst of messages known upfront plus stragglers arriving while the
    // transfer runs.
    let mut rng = SmallRng::seed_from_u64(6);
    let (n1, n2, k, beta) = (6, 6, 3, 2);
    let mut messages = Vec::new();
    for _ in 0..10 {
        messages.push(ArrivingMessage {
            release: 0,
            src: rng.gen_range(0..n1),
            dst: rng.gen_range(0..n2),
            ticks: rng.gen_range(5..25),
        });
    }
    for r in 1..6 {
        messages.push(ArrivingMessage {
            release: r,
            src: rng.gen_range(0..n1),
            dst: rng.gen_range(0..n2),
            ticks: rng.gen_range(1..10),
        });
    }

    println!(
        "{} messages, {} of them arriving online; k = {k}, beta = {beta}\n",
        messages.len(),
        messages.iter().filter(|m| m.release > 0).count()
    );

    // Step-by-step view.
    let mut sched = OnlineScheduler::new(n1, n2, k, beta);
    let mut revealed = 0usize;
    let mut step = 0usize;
    loop {
        for (i, m) in messages.iter().enumerate() {
            if m.release == step {
                sched.add_message(i, m.src, m.dst, m.ticks);
                revealed += 1;
            }
        }
        match sched.next_step() {
            Some(transfers) => {
                let parts: Vec<String> = transfers
                    .iter()
                    .map(|&(msg, amount)| format!("m{msg}:{amount}"))
                    .collect();
                println!(
                    "step {step:>2} ({revealed:>2} msgs known, {:>4} ticks pending): {}",
                    sched.pending(),
                    parts.join(" ")
                );
            }
            None if revealed == messages.len() => break,
            None => {}
        }
        step += 1;
    }

    let report = online_vs_offline(n1, n2, k, beta, &messages);
    println!(
        "\nonline cost {} vs clairvoyant offline {} -> regret {:.3}",
        report.online_cost,
        report.offline_cost,
        report.regret()
    );
}
