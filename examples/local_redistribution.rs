//! Local redistribution (Section 2.4 of the paper): when `k = min(n1, n2)`
//! the backbone is no bottleneck and K-PBS degenerates to the classical
//! preemptive bipartite scheduling of a *local* redistribution — e.g.
//! changing the block-cyclic layout of a distributed array between two
//! virtual processor grids on the same machine.
//!
//! ```sh
//! cargo run --example local_redistribution
//! ```

use bipartite::Graph;
use redistribute::kpbs::{self, Instance};

/// Bytes of a 1-D block-cyclic array of `elements` elements redistributed
/// from `p` processors with block size `b1` to `q` processors with block
/// size `b2`: entry `(i, j)` counts the elements that move from source
/// processor `i` to target processor `j`.
fn block_cyclic_traffic(
    elements: usize,
    p: usize,
    b1: usize,
    q: usize,
    b2: usize,
) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; q]; p];
    for idx in 0..elements {
        let src = (idx / b1) % p;
        let dst = (idx / b2) % q;
        m[src][dst] += 8; // f64 elements
    }
    m
}

fn main() {
    // Redistribute a 1M-element array from a 4-processor cyclic(3) layout
    // to a 6-processor cyclic(5) layout.
    let (p, q) = (4, 6);
    let m = block_cyclic_traffic(1_000_000, p, 3, q, 5);

    let mut g = Graph::new(p, q);
    let mut endpoints = Vec::new();
    for (i, row) in m.iter().enumerate() {
        for (j, &bytes) in row.iter().enumerate() {
            if bytes > 0 {
                // Local network at 1 GB/s: weight = microseconds to move.
                g.add_edge(i, j, bytes / 1000 + 1);
                endpoints.push((i, j));
            }
        }
    }
    println!(
        "block-cyclic({}) on {} procs -> block-cyclic({}) on {} procs: {} messages",
        3,
        p,
        5,
        q,
        g.edge_count()
    );

    // Backbone unconstrained: k = min(p, q).
    let k = p.min(q);
    let beta = 50; // 50 us per step setup
    let inst = Instance::new(g, k, beta);
    let lb = kpbs::lower_bound(&inst);

    for (name, schedule) in [
        ("GGP", kpbs::ggp(&inst)),
        ("OGGP", kpbs::oggp(&inst)),
        ("list", kpbs::baselines::nonpreemptive_list(&inst)),
        ("sequential", kpbs::baselines::sequential(&inst)),
    ] {
        schedule.validate(&inst).expect("feasible");
        println!(
            "{:>10}: {:>3} steps, cost {:>9} us (ratio to bound {:.4})",
            name,
            schedule.num_steps(),
            schedule.cost(),
            schedule.cost() as f64 / lb as f64
        );
    }
    println!("{:>10}: {:>12} us", "lower bound", lb);

    // Barrier weakening (Section 2.1 / future work): how much the global
    // synchronisation actually costs here.
    let schedule = kpbs::oggp(&inst);
    let relaxed = kpbs::relax::relax_k(&schedule, &inst.graph, k);
    println!(
        "\nOGGP with barriers: {} us; barriers weakened to per-node deps: {} us ({:.1}% faster)",
        schedule.cost(),
        relaxed.makespan,
        (1.0 - relaxed.makespan as f64 / schedule.cost() as f64) * 100.0
    );
}
