//! Dynamic backbone throughput — the paper's future-work scenario
//! (Section 6): the backbone's available bandwidth changes while the
//! redistribution runs (say, a concurrent bulk transfer comes and goes), so
//! the admissible parallelism `k` varies per step. The multi-step structure
//! lets the scheduler re-plan the residual graph between steps.
//!
//! ```sh
//! cargo run --example dynamic_backbone
//! ```

use bipartite::generate::complete_graph;
use rand::{rngs::SmallRng, SeedableRng};
use redistribute::kpbs::adaptive::{
    adaptive_schedule, oblivious_schedule, validate_adaptive, CyclicK,
};
use redistribute::kpbs::{self, Instance};

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let g = complete_graph(&mut rng, 6, 6, (5, 30));
    let beta = 1;

    // The backbone starts idle (k = 6), then a long-lived external transfer
    // squeezes it down to one admissible flow (k = 1) before partially
    // recovering (k = 3): the plan built for k = 6 is badly shaped for the
    // congested phase.
    let profile = CyclicK(vec![6, 1, 1, 1, 1, 1, 1, 1, 3, 3, 3, 3]);
    println!("k profile (cyclic): {:?}", profile.0);

    let adaptive = adaptive_schedule(&g, beta, &profile);
    validate_adaptive(&g, &adaptive, &profile).expect("adaptive plan feasible");
    let oblivious = oblivious_schedule(&g, beta, &profile);
    validate_adaptive(&g, &oblivious, &profile).expect("oblivious plan feasible");

    println!(
        "adaptive re-planning : {:>3} steps, cost {:>5}",
        adaptive.num_steps(),
        adaptive.cost()
    );
    println!(
        "oblivious (plan once): {:>3} steps, cost {:>5}",
        oblivious.num_steps(),
        oblivious.cost()
    );
    println!(
        "re-planning saves {:.1}%",
        (1.0 - adaptive.cost() as f64 / oblivious.cost() as f64) * 100.0
    );

    // Reference points: static OGGP plans for the best and worst fixed k.
    for k in [1, 6] {
        let inst = Instance::new(g.clone(), k, beta);
        let s = kpbs::oggp(&inst);
        println!(
            "static OGGP with fixed k = {k}: {:>3} steps, cost {:>5} (only valid if the backbone held still)",
            s.num_steps(),
            s.cost()
        );
    }
}
