//! Code coupling over a backbone — the scenario motivating the paper's
//! introduction: an ocean model on cluster 1 streams its boundary data to an
//! atmosphere model on cluster 2 every coupling period, and the backbone is
//! the bottleneck.
//!
//! Compares the brute-force "open every TCP connection at once" approach to
//! GGP/OGGP scheduling over the same lossy transport, reproducing the
//! structure of the paper's Figures 10–11.
//!
//! ```sh
//! cargo run --release --example code_coupling
//! ```

use rand::{rngs::SmallRng, SeedableRng};
use redistribute::flowsim::{brute_force_time, NetworkSpec, SimConfig, TcpModel};
use redistribute::kpbs::{Platform, TrafficMatrix};
use redistribute::{Algorithm, Planner};

fn main() {
    // The paper's testbed: 10 + 10 nodes, NICs shaped to 100/k Mbit/s,
    // 100 Mbit/s interconnect.
    let k = 5;
    let platform = Platform::testbed(k);
    let spec = NetworkSpec::from_platform(&platform);
    println!("testbed: k = {}, NICs {:.1} Mbit/s", k, platform.t1);

    // Boundary exchange: every pair of subdomains overlaps a little; sizes
    // 10..40 MB.
    let mut rng = SmallRng::seed_from_u64(2004);
    let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 40);
    println!(
        "coupling volume: {:.0} MB in {} messages\n",
        traffic.total_bytes() as f64 / 1e6,
        traffic.message_count()
    );

    // Both arms run over the same calibrated TCP model.
    let lossy = SimConfig {
        tcp: TcpModel::default(),
        seed: 1,
        record_trace: false,
    };

    let brute = brute_force_time(&traffic, &spec, &lossy);
    println!("brute-force TCP : {:>8.2} s", brute.total_seconds);

    for algo in [Algorithm::Ggp, Algorithm::Oggp] {
        let plan = Planner::new(algo).plan(&traffic, &platform);
        let run = plan.simulate(&spec, &lossy);
        println!(
            "{:>15?} : {:>8.2} s ({} steps, ratio to bound {:.4}, {:+.1}% vs brute force)",
            algo,
            run.total_seconds,
            run.num_steps,
            plan.evaluation_ratio(),
            (run.total_seconds / brute.total_seconds - 1.0) * 100.0
        );
    }

    // The paper's other observation: brute force is non-deterministic.
    println!("\nbrute-force run-to-run variation (5 seeds):");
    for seed in 0..5 {
        let cfg = SimConfig {
            tcp: TcpModel::default(),
            seed,
            record_trace: false,
        };
        let t = brute_force_time(&traffic, &spec, &cfg).total_seconds;
        println!("  seed {seed}: {t:.2} s");
    }
}
