//! SS/TDMA switching — the paper's conclusion notes GGP/OGGP "can also be
//! used [...] in the context of SS/TDMA systems or WDM network".
//!
//! A satellite-switched TDMA system has ground stations uplinking to a
//! satellite with `k` transponders; a switching configuration is a matching
//! of at most `k` (uplink, downlink) beams, and reconfiguring the switch
//! costs a fixed delay — exactly K-PBS with the transponder count as `k`
//! and the switching time as β (references [4, 17, 18] of the paper).
//!
//! ```sh
//! cargo run --example sstdma
//! ```

use bipartite::Graph;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use redistribute::kpbs::{self, coloring, Instance};

fn main() {
    // 8 uplink stations, 8 downlink stations, 4 transponders; traffic in
    // time slots (one slot = time to relay one frame).
    let (uplinks, downlinks, transponders) = (8, 8, 4);
    let switching_delay = 2; // slots lost per switch reconfiguration

    let mut rng = SmallRng::seed_from_u64(1981); // Bongiovanni et al., 1981
    let mut g = Graph::new(uplinks, downlinks);
    for u in 0..uplinks {
        for d in 0..downlinks {
            if rng.gen_bool(0.45) {
                g.add_edge(u, d, rng.gen_range(1..=30));
            }
        }
    }
    println!(
        "SS/TDMA: {} uplinks, {} downlinks, {} transponders, switching delay {} slots",
        uplinks, downlinks, transponders, switching_delay
    );
    println!("traffic: {} beams, {} slots total\n", g.edge_count(), {
        let inst = Instance::new(g.clone(), transponders, switching_delay);
        inst.total_weight()
    });

    let inst = Instance::new(g, transponders, switching_delay);
    let lb = kpbs::lower_bound(&inst);

    for (name, s) in [
        ("GGP", kpbs::ggp(&inst)),
        ("OGGP", kpbs::oggp(&inst)),
        ("coloring", coloring::coloring_schedule(&inst)),
        ("list", kpbs::baselines::nonpreemptive_list(&inst)),
    ] {
        s.validate(&inst).expect("feasible switch program");
        println!(
            "{:>9}: {:>3} switch configurations, frame length {:>4} slots (ratio {:.3})",
            name,
            s.num_steps(),
            s.cost(),
            s.cost() as f64 / lb as f64
        );
    }
    println!("{:>9}: {:>22} {:>4} slots", "bound", "", lb);

    // The zero-switching-delay case is solvable exactly (Bongiovanni et
    // al.); our peeling attains the bound there.
    let free_switch = Instance::new(inst.graph.clone(), transponders, 0);
    let s = kpbs::oggp(&free_switch);
    assert_eq!(s.cost(), kpbs::lower_bound(&free_switch));
    println!(
        "\nwith free switching (beta = 0) the schedule is provably optimal: {} slots",
        s.cost()
    );
}
