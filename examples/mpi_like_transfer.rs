//! Run a schedule on the threaded MPI-like runtime: ranks are threads, the
//! NICs and backbone are token buckets (the `rshaper` stand-in), sends are
//! synchronous and steps are separated by barriers — the in-process version
//! of the paper's MPICH experiments, moving real bytes.
//!
//! ```sh
//! cargo run --release --example mpi_like_transfer
//! ```

use redistribute::kpbs::{Platform, TrafficMatrix};
use redistribute::mpilite::{run_brute_force, FabricConfig};
use redistribute::{Algorithm, Planner};

fn main() {
    // 4x4 nodes; volumes kept small because these bytes really move between
    // threads. The fabric runs the paper's testbed shape (k = 2 here) sped
    // up 20x so the demo finishes in a moment.
    let k = 2;
    let platform = Platform::new(4, 4, 100.0 / k as f64, 100.0 / k as f64, 100.0);
    assert_eq!(platform.k(), k);

    let mut traffic = TrafficMatrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            traffic.set(i, j, 200_000 + (i * 4 + j) as u64 * 50_000);
        }
    }
    println!(
        "moving {:.2} MB through a shaped in-process fabric (k = {k})",
        traffic.total_bytes() as f64 / 1e6
    );

    let speedup = 20.0;
    let nic = 100.0 / k as f64 * 1e6 / 8.0 * speedup;
    let fabric = FabricConfig {
        out_bytes_per_s: nic,
        in_bytes_per_s: nic,
        backbone_bytes_per_s: 100.0 * 1e6 / 8.0 * speedup,
        chunk_bytes: 16 * 1024,
    };

    let plan = Planner::new(Algorithm::Oggp)
        .with_beta(0.0)
        .plan(&traffic, &platform);
    let scheduled = plan.execute_threaded(fabric);
    println!(
        "scheduled (OGGP): {:>6.3} s wall clock, {} steps, {} bytes verified",
        scheduled.seconds, scheduled.steps, scheduled.bytes_moved
    );

    let brute = run_brute_force(&traffic, fabric);
    println!(
        "brute force     : {:>6.3} s wall clock, {} bytes verified",
        brute.seconds, brute.bytes_moved
    );
    println!(
        "scheduled is {:+.1}% vs brute force",
        (scheduled.seconds / brute.seconds - 1.0) * 100.0
    );
    // Note: the in-process fabric is a lossless token-bucket — it arbitrates
    // fairly without TCP's retransmission overhead — so the two modes come
    // out close here. The runtime demonstrates the *mechanics* (per-step
    // synchronous sends, barriers, shaping, byte-exact delivery); the TCP
    // loss effect that gives scheduling its 5-20% win is modelled in the
    // `flowsim` crate (see the code_coupling example and Figures 10-11).
}
