//! Quickstart: schedule a redistribution between two small clusters and
//! inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use redistribute::kpbs::{Platform, TrafficMatrix};
use redistribute::{Algorithm, Planner};

fn main() {
    // Two clusters of 4 nodes each, 100 Mbit/s NICs, a 200 Mbit/s backbone:
    // at most k = 2 simultaneous transfers avoid congestion.
    let platform = Platform::new(4, 4, 100.0, 100.0, 200.0);
    println!(
        "platform: {}x{} nodes, t = {} Mbit/s, k = {}",
        platform.n1,
        platform.n2,
        platform.transfer_speed(),
        platform.k()
    );

    // The application's redistribution pattern, in bytes.
    let mut traffic = TrafficMatrix::zeros(4, 4);
    traffic.set(0, 0, 25_000_000);
    traffic.set(0, 2, 10_000_000);
    traffic.set(1, 1, 40_000_000);
    traffic.set(2, 3, 15_000_000);
    traffic.set(3, 0, 5_000_000);
    traffic.set(3, 3, 20_000_000);
    println!(
        "traffic: {} messages, {:.1} MB total",
        traffic.message_count(),
        traffic.total_bytes() as f64 / 1e6
    );

    for algo in [Algorithm::Oggp, Algorithm::Ggp, Algorithm::Sequential] {
        let plan = Planner::new(algo).plan(&traffic, &platform);
        plan.schedule
            .validate(&plan.instance)
            .expect("planner output must be feasible");
        println!(
            "{:>10?}: {:>2} steps, cost {:>6.2} s, lower bound {:>6.2} s, ratio {:.4}",
            algo,
            plan.schedule.num_steps(),
            plan.cost_seconds(),
            plan.lower_bound_seconds(),
            plan.evaluation_ratio()
        );
    }

    // Show the OGGP schedule step by step.
    let plan = Planner::new(Algorithm::Oggp).plan(&traffic, &platform);
    println!("\nOGGP schedule (β = {} s):", plan.beta_seconds);
    for (i, step) in plan.schedule.steps.iter().enumerate() {
        let slices: Vec<String> = step
            .transfers
            .iter()
            .map(|t| {
                let (s, d) = plan.endpoints[t.edge.index()];
                format!("{s}->{d} ({:.2}s)", plan.scale.to_seconds(t.amount))
            })
            .collect();
        println!(
            "  step {:>2}: duration {:>6.2} s | {}",
            i,
            plan.scale.to_seconds(step.duration()),
            slices.join(", ")
        );
    }

    println!("\nGantt ('#' transmitting, '.' idle within the step):");
    print!("{}", plan.schedule.gantt(60));

    // And simulate it on the platform's network.
    let report = plan.simulate_ideal();
    println!(
        "\nsimulated execution: {:.2} s across {} steps ({:.2} s of barriers)",
        report.total_seconds, report.num_steps, report.barrier_seconds
    );
}
