//! Differential proptests of the topology subsystem.
//!
//! Three invariants over 200 random cases each:
//!
//! * **Oracle**: on a homogeneous two-cluster topology, planning through
//!   [`kpbs::plan_topology`] is **byte-identical** to planning through the
//!   [`kpbs::Platform`] path (same instance parameters, same schedule, same
//!   lower bound) — the topology layer is a strict generalisation, never a
//!   behavioural fork.
//! * **Validity**: every heterogeneous (star or multi-backbone) plan passes
//!   [`kpbs::validate`] against its composed instance and delivers exactly
//!   the input bytes through the byte-slice apportioning the executor uses.
//! * **Bound**: no composed schedule's cost ever beats the
//!   heterogeneity-aware lower bound [`kpbs::topo_lower_bound`].

use kpbs::residual::residual_matrix;
use kpbs::traffic::TickScale;
use kpbs::{oggp, plan_topology, topo_lower_bound, Platform, TopoAlgo, Topology, TrafficMatrix};
use proptest::prelude::*;

/// A random homogeneous workload: cluster sizes, uniform speeds, a backbone
/// wide enough for k in 1..=4, and a full traffic matrix.
fn homogeneous_strategy() -> impl Strategy<Value = (TrafficMatrix, Platform, f64)> {
    (2usize..=6, 2usize..=6)
        .prop_flat_map(|(n1, n2)| {
            let cells = proptest::collection::vec(0u64..=30_000_000, n1 * n2);
            (
                Just((n1, n2)),
                cells,
                1usize..=4,
                10u64..=200,
                10u64..=200,
                0u64..=100,
            )
        })
        .prop_map(|((n1, n2), cells, kmul, t1, t2, beta_ms)| {
            let traffic = TrafficMatrix::from_rows(n1, n2, cells);
            let t = t1.min(t2) as f64;
            let platform = Platform::new(n1, n2, t1 as f64, t2 as f64, t * kmul as f64);
            (traffic, platform, beta_ms as f64 / 1_000.0)
        })
}

/// A random heterogeneous topology — a star (per-node NIC speeds, one
/// backbone) or a two-backbone cluster-of-clusters — with traffic on its
/// routable pairs only. The vendored proptest has no `prop_oneof`, so a
/// selector draw picks the shape from one parameter pool.
fn heterogeneous_strategy() -> impl Strategy<Value = (Topology, TrafficMatrix, f64)> {
    (
        0u8..=1,
        (2usize..=5, 2usize..=5),
        proptest::collection::vec(10.0f64..200.0, 5..=5),
        proptest::collection::vec(10.0f64..200.0, 5..=5),
        (20.0f64..600.0, 20.0f64..400.0),
    )
        .prop_flat_map(|(kind, (a, b), out_pool, in_pool, (cap_a, cap_b))| {
            let topo = if kind == 0 {
                Topology::star(&out_pool[..a], &in_pool[..b], cap_a)
            } else {
                // Cluster-of-clusters: two sender and two receiver
                // clusters of 1..=3 nodes, disjoint backbones.
                kpbs::instances::multi_level_topology(
                    &[(1 + a % 3, out_pool[0]), (1 + b % 3, out_pool[1])],
                    &[(1 + a % 3, in_pool[0]), (1 + b % 3, in_pool[1])],
                    &[(0, 0, cap_a), (1, 1, cap_b)],
                )
            };
            let (n1, n2) = (topo.senders(), topo.receivers());
            let cells = proptest::collection::vec(0u64..=20_000_000, n1 * n2);
            (Just(topo), cells, 0u64..=100)
        })
        .prop_map(|(topo, cells, beta_ms)| {
            let (n1, n2) = (topo.senders(), topo.receivers());
            let mut m = TrafficMatrix::zeros(n1, n2);
            for i in 0..n1 {
                for j in 0..n2 {
                    if topo.route(i, j).is_some() {
                        m.set(i, j, cells[i * n2 + j]);
                    }
                }
            }
            (topo, m, beta_ms as f64 / 1_000.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn homogeneous_topology_is_byte_identical_to_platform(
        (traffic, platform, beta) in homogeneous_strategy(),
    ) {
        let topo = Topology::from_platform(&platform);
        let reduced = topo.as_platform();
        prop_assert_eq!(reduced.as_ref(), Some(&platform));
        let plan = plan_topology(&traffic, &topo, beta, TickScale::MILLIS, TopoAlgo::Oggp)
            .map_err(|e| TestCaseError::fail(format!("topo planning failed: {e}")))?;

        let (instance, endpoints) = traffic.to_instance(&platform, beta, TickScale::MILLIS);
        let oracle = oggp(&instance);
        prop_assert_eq!(plan.instance.k, instance.k, "k diverged");
        prop_assert_eq!(plan.instance.beta, instance.beta, "beta diverged");
        prop_assert_eq!(&plan.endpoints, &endpoints, "edge numbering diverged");
        prop_assert_eq!(&plan.schedule, &oracle, "schedules diverged");
        prop_assert_eq!(
            plan.lower_bound,
            kpbs::lower_bound(&instance),
            "lower bounds diverged"
        );
    }

    #[test]
    fn heterogeneous_plans_validate_and_deliver_exactly(
        (topo, traffic, beta) in heterogeneous_strategy(),
    ) {
        let plan = plan_topology(&traffic, &topo, beta, TickScale::MILLIS, TopoAlgo::Oggp)
            .map_err(|e| TestCaseError::fail(format!("topo planning failed: {e}")))?;
        prop_assert!(
            plan.schedule.validate(&plan.instance).is_ok(),
            "composed schedule failed kpbs::validate"
        );
        // Exact delivery: expanding the schedule into byte slices and
        // subtracting from the demand leaves nothing outstanding.
        let mut delivered = TrafficMatrix::zeros(traffic.senders(), traffic.receivers());
        for slices in plan.schedule.byte_slices(&plan.instance, &plan.bytes) {
            for (edge, bytes) in slices {
                let (i, j) = plan.endpoints[edge.index()];
                delivered.set(i, j, delivered.get(i, j) + bytes);
            }
        }
        prop_assert_eq!(&delivered, &traffic, "byte coverage");
        prop_assert_eq!(residual_matrix(&traffic, &delivered).total_bytes(), 0);
    }

    #[test]
    fn cost_never_beats_the_heterogeneous_lower_bound(
        (topo, traffic, beta) in heterogeneous_strategy(),
    ) {
        let plan = plan_topology(&traffic, &topo, beta, TickScale::MILLIS, TopoAlgo::Oggp)
            .map_err(|e| TestCaseError::fail(format!("topo planning failed: {e}")))?;
        let bound = topo_lower_bound(&traffic, &topo, beta, TickScale::MILLIS)
            .map_err(|e| TestCaseError::fail(format!("bound failed: {e}")))?;
        prop_assert_eq!(plan.lower_bound, bound, "plan carries the same bound");
        prop_assert!(
            plan.schedule.cost() >= bound,
            "cost {} beats the lower bound {}",
            plan.schedule.cost(),
            bound
        );
    }
}
