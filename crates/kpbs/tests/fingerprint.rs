//! Property tests of the instance fingerprint / cache key: stability on
//! identical instances, sensitivity to every field the planners read, and
//! collision-freedom between canonically distinct instances.

use bipartite::Graph;
use kpbs::{cache_key, fingerprint, session_cache_key, DeltaPlanner, Instance, MatrixDelta};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// An instance plus the raw tuple it was built from, so tests can rebuild
/// or perturb it field by field.
#[derive(Debug, Clone)]
struct Raw {
    n1: usize,
    n2: usize,
    edges: Vec<(usize, usize, u64)>,
    k: usize,
    beta: u64,
}

impl Raw {
    fn build(&self) -> Instance {
        let mut g = Graph::new(self.n1, self.n2);
        for &(l, r, w) in &self.edges {
            g.add_edge(l, r, w);
        }
        Instance::new(g, self.k, self.beta)
    }
}

fn raw_strategy() -> impl Strategy<Value = Raw> {
    (2usize..=8, 2usize..=8)
        .prop_flat_map(|(n1, n2)| {
            let edges = proptest::collection::vec((0..n1, 0..n2, 1u64..=50), 1..=20);
            (Just((n1, n2)), edges, 1..=n1.min(n2), 0u64..=10)
        })
        .prop_map(|((n1, n2), edges, k, beta)| Raw {
            n1,
            n2,
            edges,
            k,
            beta,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn identical_instances_hash_stably(raw in raw_strategy(), tag in 0u64..=8) {
        // Two independent constructions of the same tuple agree — the
        // stability a plan cache needs to ever hit.
        let a = raw.build();
        let b = raw.build();
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(cache_key(&a, tag), cache_key(&b, tag));
        // And hashing is a pure function: rehashing the same instance
        // yields the same digest.
        prop_assert_eq!(fingerprint(&a), fingerprint(&a));
    }

    #[test]
    fn distinct_instances_get_distinct_cache_keys(
        raw_a in raw_strategy(),
        raw_b in raw_strategy(),
        tag in 0u64..=8,
    ) {
        // Canonically different instances must not share a cache key (an
        // FNV collision in 200 small random cases would be astronomically
        // unlucky and *would* be a cache-poisoning bug worth hearing
        // about).
        let same = raw_a.n1 == raw_b.n1
            && raw_a.n2 == raw_b.n2
            && raw_a.edges == raw_b.edges
            && raw_a.k == raw_b.k
            && raw_a.beta == raw_b.beta;
        prop_assume!(!same);
        let a = raw_a.build();
        let b = raw_b.build();
        prop_assert_ne!(fingerprint(&a), fingerprint(&b));
        prop_assert_ne!(cache_key(&a, tag), cache_key(&b, tag));
    }

    #[test]
    fn sensitive_to_k_and_beta(raw in raw_strategy(), tag in 0u64..=8) {
        let base = raw.build();
        let mut bumped_k = raw.clone();
        bumped_k.k += 1;
        let mut bumped_beta = raw.clone();
        bumped_beta.beta += 1;
        // k and beta must each be part of the key.
        prop_assert_ne!(fingerprint(&base), fingerprint(&bumped_k.build()));
        prop_assert_ne!(fingerprint(&base), fingerprint(&bumped_beta.build()));
        prop_assert_ne!(cache_key(&base, tag), cache_key(&bumped_k.build(), tag));
        prop_assert_ne!(cache_key(&base, tag), cache_key(&bumped_beta.build(), tag));
        // Different algorithm tags never collide for the same instance.
        prop_assert_ne!(cache_key(&base, tag), cache_key(&base, tag + 1));
    }

    #[test]
    fn applied_deltas_move_the_session_cache_key(
        raw in raw_strategy(),
        sender in 0usize..8,
        receiver in 0usize..8,
        bump in 1u64..=40,
        tag in 0u64..=8,
    ) {
        // A live session's matrix edit must be visible to the cache: the
        // instance fingerprint moves (the cell's weight, or the edge
        // count, changed) and with it the generation-qualified session
        // key — so a committed patched plan can never be served for the
        // pre-delta matrix.
        let (sender, receiver) = (sender % raw.n1, receiver % raw.n2);
        // The planner refuses parallel edges, so rebuild deduplicated.
        let cells: BTreeMap<(usize, usize), u64> =
            raw.edges.iter().map(|&(l, r, w)| ((l, r), w)).collect();
        let mut g = Graph::new(raw.n1, raw.n2);
        for (&(l, r), &w) in &cells {
            g.add_edge(l, r, w);
        }
        let mut planner = DeltaPlanner::new(Instance::new(g, raw.k, raw.beta));
        let before = planner.instance().clone();
        let key_before = session_cache_key(&before, tag, planner.generation());

        let old = planner.cell(sender, receiver);
        planner.replan(&[MatrixDelta::Set { sender, receiver, ticks: old + bump }]);

        prop_assert_ne!(fingerprint(&before), fingerprint(planner.instance()));
        prop_assert_ne!(
            key_before,
            session_cache_key(planner.instance(), tag, planner.generation())
        );
        // Generation alone also separates: even an identical matrix at a
        // later generation keys differently.
        prop_assert_ne!(
            session_cache_key(&before, tag, 0),
            session_cache_key(&before, tag, 1)
        );
    }
}
