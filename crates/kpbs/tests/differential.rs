//! Differential tests of the incremental peeling engine against the
//! from-scratch oracle strategies: identical schedules (hence identical
//! cost, step count and validity), peel for peel, on random instances and
//! on regularised graphs full of filler/pad edges.

use bipartite::{hopcroft_karp, EdgeId, Graph, Matching};
use kpbs::ggp::{ggp, ggp_seeded, schedule_with, schedule_with_mut};
use kpbs::oggp::{oggp, oggp_reference};
use kpbs::regularize::regularize;
use kpbs::wrgp::{
    peel_all, peel_all_incremental, GreedySeeded, IncrementalMaxMin, MatchingStrategyMut,
    MaxMinPerfect,
};
use kpbs::Instance;
use proptest::prelude::*;

fn instance_strategy(
    max_side: usize,
    max_edges: usize,
    max_w: u64,
    max_beta: u64,
) -> impl Strategy<Value = Instance> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(move |(nl, nr)| {
            let edges = proptest::collection::vec((0..nl, 0..nr, 1..=max_w), 1..=max_edges);
            (Just((nl, nr)), edges, 1..=nl.min(nr), 0..=max_beta)
        })
        .prop_map(|((nl, nr), edges, k, beta)| {
            let mut g = Graph::new(nl, nr);
            for (l, r, w) in edges {
                g.add_edge(l, r, w);
            }
            Instance::new(g, k, beta)
        })
}

/// From-scratch oracle for the incremental any-perfect strategy: every peel
/// recomputes `maximum_matching_seeded` with fresh allocations, seeded by
/// the survivors of the previous peel's matching — exactly the semantics
/// `IncrementalAnyPerfect` implements on recycled buffers.
#[derive(Default)]
struct ColdSeededChain {
    carry: Vec<EdgeId>,
}

impl MatchingStrategyMut for ColdSeededChain {
    fn matching(&mut self, g: &Graph) -> Matching {
        let survivors = Matching::from_edges(
            self.carry
                .iter()
                .copied()
                .filter(|&e| g.is_alive(e))
                .collect(),
        );
        let m = hopcroft_karp::maximum_matching_seeded(g, &survivors);
        self.carry = m.edges().to_vec();
        m
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn incremental_oggp_schedule_identical(inst in instance_strategy(8, 30, 40, 4)) {
        let fast = oggp(&inst);
        let oracle = oggp_reference(&inst);
        prop_assert!(fast.validate(&inst).is_ok());
        prop_assert_eq!(fast.cost(), oracle.cost());
        prop_assert_eq!(fast.num_steps(), oracle.num_steps());
        prop_assert_eq!(fast, oracle);
    }

    #[test]
    fn incremental_ggp_matches_seeded_chain_oracle(inst in instance_strategy(8, 30, 40, 4)) {
        let fast = ggp(&inst);
        let oracle = schedule_with_mut(&inst, &mut ColdSeededChain::default());
        prop_assert!(fast.validate(&inst).is_ok());
        prop_assert_eq!(fast.cost(), oracle.cost());
        prop_assert_eq!(fast.num_steps(), oracle.num_steps());
        prop_assert_eq!(fast, oracle);
    }

    #[test]
    fn incremental_greedy_seeded_schedule_identical(inst in instance_strategy(8, 30, 40, 4)) {
        let fast = ggp_seeded(&inst);
        let oracle = schedule_with(&inst, &GreedySeeded);
        prop_assert!(fast.validate(&inst).is_ok());
        prop_assert_eq!(fast.cost(), oracle.cost());
        prop_assert_eq!(fast.num_steps(), oracle.num_steps());
        prop_assert_eq!(fast, oracle);
    }

    #[test]
    fn peels_identical_on_regularized_graphs(inst in instance_strategy(7, 25, 30, 0)) {
        // Drive the peeling kernel directly on the regularised graph, so the
        // filler/pad edges of Section 4.2.2 are part of the matchings and of
        // the incremental bookkeeping.
        let reg = regularize(&inst.graph, inst.effective_k());
        let endpoints: Vec<(usize, usize)> = reg
            .graph
            .edges()
            .map(|(_, l, r, _)| (l, r))
            .collect();
        let mut cold_g = reg.graph.clone();
        let mut fast_g = reg.graph.clone();
        let cold = peel_all(&mut cold_g, &MaxMinPerfect);
        let fast = peel_all_incremental(&mut fast_g, &mut IncrementalMaxMin::new());
        prop_assert_eq!(cold.len(), fast.len(), "peel counts differ");
        for (a, b) in cold.iter().zip(fast.iter()) {
            prop_assert_eq!(a.quantum, b.quantum);
            prop_assert_eq!(&a.edges, &b.edges);
        }
        // Edge-id stability: after the graph has been peeled to nothing,
        // every id recorded in a peel still resolves to the endpoints it had
        // before peeling — Schedule transfers rely on exactly this.
        for peel in &fast {
            for &e in &peel.edges {
                prop_assert_eq!(fast_g.left_of(e), endpoints[e.index()].0);
                prop_assert_eq!(fast_g.right_of(e), endpoints[e.index()].1);
            }
        }
    }
}
