//! Differential property tests pinning [`DeltaPlanner::replan`] against
//! the stateless planners: whatever rung of the repair ladder a replan
//! lands on, the committed schedule must validate, deliver exactly the
//! post-delta matrix, and cost no more than the worse of the replan
//! ceiling and a cold OGGP plan of the same matrix — and the whole
//! process must be deterministic, because `redistd`'s loopback and load
//! tests byte-compare server schedules against client mirrors.

use bipartite::Graph;
use kpbs::delta::REPLAN_COST_FACTOR;
use kpbs::{oggp, DeltaPlanner, Instance, MatrixDelta, RepairLevel};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The raw tuple a planner instance is built from. Cells are stored
/// deduplicated and row-major so the construction is canonical (the
/// planner refuses parallel edges, and cold-fallback equality needs the
/// same edge-id labelling a `TrafficMatrix::to_instance` would produce).
#[derive(Debug, Clone)]
struct Raw {
    n1: usize,
    n2: usize,
    cells: BTreeMap<(usize, usize), u64>,
    k: usize,
    beta: u64,
}

impl Raw {
    fn build(&self) -> Instance {
        let mut g = Graph::new(self.n1, self.n2);
        for (&(l, r), &w) in &self.cells {
            g.add_edge(l, r, w);
        }
        Instance::new(g, self.k, self.beta)
    }
}

fn raw_strategy() -> impl Strategy<Value = Raw> {
    (2usize..=7, 2usize..=7)
        .prop_flat_map(|(n1, n2)| {
            let cells = proptest::collection::vec((0..n1, 0..n2, 1u64..=60), 1..=16);
            (Just((n1, n2)), cells, 1..=n1.min(n2), 0u64..=8)
        })
        .prop_map(|((n1, n2), cells, k, beta)| Raw {
            n1,
            n2,
            // Later duplicates win, like repeated `TrafficMatrix::set`s.
            cells: cells.into_iter().map(|(l, r, w)| ((l, r), w)).collect(),
            k,
            beta,
        })
}

/// Edits addressing the *initial* node range. Dims only ever grow
/// (drops clear a line without removing the node), so every index stays
/// valid however the batch is ordered. Weighted ~8:1:1:1 towards cell
/// edits, like real admission traffic.
fn delta_strategy(n1: usize, n2: usize) -> impl Strategy<Value = MatrixDelta> {
    (0u64..=10, 0..n1, 0..n2, 0u64..=60).prop_map(|(kind, sender, receiver, ticks)| match kind {
        0 => MatrixDelta::GrowNodes {
            senders: 1,
            receivers: (ticks % 2) as usize,
        },
        1 => MatrixDelta::DropSender(sender),
        2 => MatrixDelta::DropReceiver(receiver),
        _ => MatrixDelta::Set {
            sender,
            receiver,
            ticks,
        },
    })
}

fn campaign_strategy() -> impl Strategy<Value = (Raw, Vec<Vec<MatrixDelta>>)> {
    raw_strategy().prop_flat_map(|raw| {
        let batches = proptest::collection::vec(
            proptest::collection::vec(delta_strategy(raw.n1, raw.n2), 1..=5),
            1..=3,
        );
        (Just(raw), batches)
    })
}

/// A cold, canonical plan of the planner's current matrix: row-major
/// cells, fresh OGGP — what a stateless server would answer.
fn cold_reference(planner: &DeltaPlanner) -> (Instance, kpbs::Schedule) {
    let target = planner.target_matrix();
    let live = planner.instance();
    let mut g = Graph::new(live.graph.left_count(), live.graph.right_count());
    for i in 0..live.graph.left_count() {
        for j in 0..live.graph.right_count() {
            let w = target.get(i, j);
            if w > 0 {
                g.add_edge(i, j, w);
            }
        }
    }
    let inst = Instance::new(g, live.k, live.beta);
    let schedule = oggp(&inst);
    (inst, schedule)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn replan_matches_its_contract((raw, batches) in campaign_strategy()) {
        let mut planner = DeltaPlanner::new(raw.build());
        let mut twin = DeltaPlanner::new(raw.build());
        for (bi, batch) in batches.iter().enumerate() {
            let outcome = planner.replan(batch);
            prop_assert_eq!(outcome.generation, (bi + 1) as u64);

            // Feasibility: the committed schedule validates against the
            // live post-delta instance.
            kpbs::validate::validate(planner.instance(), planner.schedule())
                .map_err(|e| TestCaseError::fail(format!("batch {bi}: {e:?}")))?;

            // Exact delivery: the schedule moves precisely the post-delta
            // matrix — no cell short, no cell over.
            prop_assert_eq!(
                planner.delivered_matrix(),
                planner.target_matrix(),
                "batch {} must deliver the post-delta matrix",
                bi
            );

            // Cost: bounded by the replan ceiling or, past it, by the
            // cold plan the fallback ladder would have taken instead; and
            // never below the instance's lower bound.
            let (cold_inst, cold) = cold_reference(&planner);
            prop_assert_eq!(outcome.lower_bound, kpbs::lower_bound(&cold_inst));
            prop_assert!(outcome.cost >= outcome.lower_bound);
            let ceiling =
                (REPLAN_COST_FACTOR * outcome.lower_bound.max(1)).max(cold.cost());
            prop_assert!(
                outcome.cost <= ceiling,
                "batch {}: cost {} above ceiling {} (level {:?})",
                bi, outcome.cost, ceiling, outcome.level
            );

            // A cold fallback is indistinguishable from a stateless plan
            // of the same matrix — same edge labelling and all.
            if outcome.level == RepairLevel::Cold {
                prop_assert_eq!(planner.schedule(), &cold);
            }

            // Determinism: an independent planner fed the same history
            // commits an identical schedule — the property every mirror
            // byte-compare in the serving layer rests on.
            let twin_outcome = twin.replan(batch);
            prop_assert_eq!(outcome, twin_outcome);
            prop_assert_eq!(planner.schedule(), twin.schedule());
        }
    }

    #[test]
    fn pure_decreases_never_raise_cost(raw in raw_strategy()) {
        // Shrinking or deleting messages can only cheapen the committed
        // schedule: level-0 repair trims in place and never adds a step.
        let mut planner = DeltaPlanner::new(raw.build());
        let before = planner.schedule().cost();
        let batch: Vec<MatrixDelta> = raw
            .cells
            .iter()
            .take(3)
            .map(|(&(sender, receiver), &w)| MatrixDelta::Set {
                sender,
                receiver,
                ticks: w / 2,
            })
            .collect();
        let outcome = planner.replan(&batch);
        // No increase means no residual to re-peel: the ladder stays at
        // level 0 unless stranded slivers trip the cost ceiling.
        prop_assert_ne!(outcome.level, RepairLevel::RePeel);
        if outcome.level == RepairLevel::Repair {
            prop_assert!(outcome.cost <= before);
        }
        prop_assert_eq!(planner.delivered_matrix(), planner.target_matrix());
    }
}
