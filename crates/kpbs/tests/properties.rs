//! Property-based tests of the scheduler pipeline's internal stages:
//! normalisation, regularisation, peeling, and the alternative schedulers.

use bipartite::{properties, Graph};
use kpbs::adaptive::{adaptive_schedule, validate_adaptive, CyclicK};
use kpbs::coloring::{coloring_schedule, schedule_with_slot};
use kpbs::normalize::normalize;
use kpbs::regularize::{regularize, EdgeKind};
use kpbs::relax::{relax_k, relax_unbounded};
use kpbs::{ggp, lower_bound, oggp, Instance};
use proptest::prelude::*;

fn instance_strategy(
    max_side: usize,
    max_edges: usize,
    max_w: u64,
    max_beta: u64,
) -> impl Strategy<Value = Instance> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(move |(nl, nr)| {
            let edges = proptest::collection::vec((0..nl, 0..nr, 1..=max_w), 1..=max_edges);
            (Just((nl, nr)), edges, 1..=nl.min(nr), 0..=max_beta)
        })
        .prop_map(|((nl, nr), edges, k, beta)| {
            let mut g = Graph::new(nl, nr);
            for (l, r, w) in edges {
                g.add_edge(l, r, w);
            }
            Instance::new(g, k, beta)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn normalization_rounds_up_and_bounds(inst in instance_strategy(8, 25, 40, 6)) {
        let n = normalize(&inst);
        let unit = if inst.beta > 0 { inst.beta } else { 1 };
        prop_assert_eq!(n.unit, unit);
        for e in inst.graph.edge_ids() {
            let w = inst.graph.weight(e);
            let wn = n.graph.weight(e);
            prop_assert!(wn >= 1);
            prop_assert!(wn * unit >= w, "normalised slot must cover the weight");
            prop_assert!(wn * unit < w + unit, "rounding adds less than one unit");
        }
    }

    #[test]
    fn regularize_invariants(inst in instance_strategy(8, 25, 30, 0)) {
        let k = inst.effective_k();
        let reg = regularize(&inst.graph, k);
        // Weight-regular, equal sides.
        prop_assert_eq!(
            properties::regular_weight(&reg.graph),
            Some(reg.regular_weight)
        );
        prop_assert_eq!(reg.graph.left_count(), reg.graph.right_count());
        // R = max(W, ceil(P/k)).
        let w = properties::max_node_weight(&inst.graph);
        let p = properties::total_weight(&inst.graph);
        prop_assert_eq!(
            reg.regular_weight,
            w.max(p.div_ceil(k as u64))
        );
        // Total synthetic weight accounting: P(J) = R * (|V1| + |V2| - k)
        // ... per side: sum over left nodes = R * |left| and P(J) counts it
        // once.
        let side = reg.graph.left_count() as u64;
        prop_assert_eq!(properties::total_weight(&reg.graph), reg.regular_weight * side);
        // Real edges are preserved verbatim.
        let mut real = 0;
        for e in reg.graph.edge_ids() {
            if let EdgeKind::Real(o) = reg.kind(e) {
                real += 1;
                prop_assert_eq!(reg.graph.weight(e), inst.graph.weight(o));
            }
        }
        prop_assert_eq!(real, inst.graph.edge_count());
    }

    #[test]
    fn coloring_schedule_feasible(inst in instance_strategy(7, 20, 25, 4)) {
        let s = coloring_schedule(&inst);
        prop_assert!(s.validate(&inst).is_ok());
        prop_assert!(s.cost() >= lower_bound(&inst));
    }

    #[test]
    fn fixed_slot_feasible_any_slot(inst in instance_strategy(6, 15, 20, 3), d in 1u64..30) {
        let s = schedule_with_slot(&inst, d);
        prop_assert!(s.validate(&inst).is_ok());
    }

    #[test]
    fn relaxation_faster_than_barriers(inst in instance_strategy(8, 25, 25, 4)) {
        let s = oggp(&inst);
        let k = inst.effective_k();
        let bounded = relax_k(&s, &inst.graph, k);
        let unbounded = relax_unbounded(&s, &inst.graph);
        prop_assert!(bounded.makespan <= s.cost());
        prop_assert!(unbounded.makespan <= bounded.makespan);
        prop_assert!(bounded.peak_concurrency <= k);
    }

    #[test]
    fn adaptive_valid_under_any_profile(
        inst in instance_strategy(6, 15, 20, 2),
        profile in proptest::collection::vec(1usize..6, 1..5),
    ) {
        let p = CyclicK(profile);
        let s = adaptive_schedule(&inst.graph, inst.beta, &p);
        prop_assert!(validate_adaptive(&inst.graph, &s, &p).is_ok());
    }

    #[test]
    fn schedulers_agree_on_volume(inst in instance_strategy(7, 20, 25, 3)) {
        let total = inst.total_weight();
        prop_assert_eq!(ggp(&inst).volume(), total);
        prop_assert_eq!(oggp(&inst).volume(), total);
        prop_assert_eq!(coloring_schedule(&inst).volume(), total);
    }

    #[test]
    fn cost_monotone_in_beta(inst in instance_strategy(7, 20, 25, 0)) {
        // Raising β can only raise the (analytic) cost of the OGGP result.
        let cheap = oggp(&Instance::new(inst.graph.clone(), inst.k, 0)).cost();
        let costly = oggp(&Instance::new(inst.graph.clone(), inst.k, 10)).cost();
        prop_assert!(costly >= cheap);
    }
}
