//! End-to-end telemetry tests over the real scheduler: golden (byte-stable)
//! traces, structural validity of the Chrome trace JSON, deterministic work
//! counters, and the disabled path costing (and recording) nothing.
//!
//! Telemetry state is process-global, so every test that toggles it holds
//! `LOCK` and leaves both subsystems disabled on exit.

use bipartite::generate::complete_graph;
use kpbs::{ggp, oggp, Instance};
use rand::{rngs::SmallRng, SeedableRng};
use std::sync::Mutex;
use telemetry::counters;
use telemetry::export::chrome_trace;
use telemetry::json;
use telemetry::spans::{self, ClockMode, SpanEvent};

static LOCK: Mutex<()> = Mutex::new(());

fn fixed_instance(seed: u64, n: usize) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = complete_graph(&mut rng, n, n, (1, 300));
    Instance::new(g, n / 2, 1)
}

/// Runs `oggp` on a fixed-seed instance with span recording on a logical
/// clock and returns this thread's events.
fn traced_oggp_events(inst: &Instance) -> Vec<SpanEvent> {
    spans::set_clock(ClockMode::Logical);
    spans::reset();
    spans::enable();
    std::hint::black_box(oggp(inst));
    spans::disable();
    let events = spans::drain_thread();
    spans::set_clock(ClockMode::Wall);
    events
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    let _guard = LOCK.lock().unwrap();
    let inst = fixed_instance(0x901d, 10);
    let first = chrome_trace(&traced_oggp_events(&inst));
    let second = chrome_trace(&traced_oggp_events(&inst));
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "fixed-seed OGGP trace must be byte-identical across runs"
    );
    // The trace covers the scheduler pipeline, not just the outer call.
    for name in ["kpbs.oggp", "kpbs.regularize", "kpbs.peel", "kpbs.extract"] {
        assert!(first.contains(name), "trace missing span {name}");
    }
}

#[test]
fn trace_json_parses_and_phases_balance() {
    let _guard = LOCK.lock().unwrap();
    let inst = fixed_instance(0x5712, 12);
    let events = traced_oggp_events(&inst);
    assert!(!events.is_empty());
    let text = chrome_trace(&events);

    let v = json::parse(&text).expect("chrome trace must be valid JSON");
    let list = v
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .expect("traceEvents array");
    assert_eq!(list.len(), events.len());

    // Per (tid, name): every B has a matching E and stacks never go negative.
    let mut depth: std::collections::BTreeMap<(u64, String), i64> = Default::default();
    for e in list {
        let obj = e.as_obj().expect("event object");
        let name = obj["name"].as_str().unwrap().to_string();
        let ph = obj["ph"].as_str().unwrap();
        let tid = obj["tid"].as_f64().unwrap() as u64;
        assert!(obj["ts"].as_f64().unwrap() >= 0.0);
        match ph {
            "B" => *depth.entry((tid, name)).or_insert(0) += 1,
            "E" => {
                let d = depth.entry((tid, name.clone())).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "span {name} ended before it began");
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for ((tid, name), d) in depth {
        assert_eq!(d, 0, "span {name} on tid {tid} left {d} unmatched begins");
    }
}

#[test]
fn work_counters_are_deterministic_across_runs() {
    let _guard = LOCK.lock().unwrap();
    let inst = fixed_instance(0xdead, 12);
    let mut snapshots = Vec::new();
    for _ in 0..2 {
        counters::enable();
        let before = counters::local_snapshot();
        std::hint::black_box(oggp(&inst));
        std::hint::black_box(ggp(&inst));
        snapshots.push(counters::local_snapshot().delta(&before));
        counters::disable();
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "fixed-seed work counters must be identical across runs"
    );
    // The pipeline exercised both matching engines and the peeling loop.
    use telemetry::Counter;
    let s = &snapshots[0];
    assert!(s.get(Counter::HkPhases) > 0, "OGGP must run HK phases");
    assert!(
        s.get(Counter::KuhnAttempts) > 0,
        "GGP must run Kuhn attempts"
    );
    assert!(s.get(Counter::DfsEdgeVisits) > 0);
    assert!(s.get(Counter::Peels) > 0);
    assert!(s.get(Counter::MergePasses) > 0);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = LOCK.lock().unwrap();
    counters::disable();
    spans::disable();
    spans::reset();
    let before = counters::local_snapshot();
    let inst = fixed_instance(0x0ff, 10);
    std::hint::black_box(oggp(&inst));
    std::hint::black_box(ggp(&inst));
    let delta = counters::local_snapshot().delta(&before);
    assert!(
        delta.is_zero(),
        "disabled counters must not move: {delta:?}"
    );
    assert!(
        spans::drain_thread().is_empty(),
        "disabled spans must not allocate events"
    );
}
