//! Differential tests of the hierarchical planner against flat OGGP: on
//! small instances (n ≤ 24) every hierarchical schedule must be feasible,
//! deliver exactly the input traffic (checked through the residual-matrix
//! machinery the executor uses), and stay within a fixed cost factor of the
//! flat plan; with one block the pipeline must reproduce flat OGGP
//! byte-for-byte.

use bipartite::Graph;
use kpbs::hier::{hier, HierConfig};
use kpbs::residual::residual_matrix;
use kpbs::validate::validate;
use kpbs::{lower_bound, oggp, Instance, TrafficMatrix};
use proptest::prelude::*;

/// The fixed factor hierarchy may lose to flat OGGP by on tiny instances.
/// Macro-step serialisation costs extra β-steps and narrower per-block
/// widths; empirically the ratio stays well under this (see
/// `BENCH_scale.json` for the large-n ratios, ~2.5× the lower bound).
const COST_FACTOR: u64 = 6;

/// Random small instances plus a block count: sides up to `max_side`, a
/// non-empty batch of weighted messages, `k`, a small β and `1..=max_blocks`
/// requested blocks (the planner clamps to the sides on its own).
fn instance_strategy(
    max_side: usize,
    max_msgs: usize,
    max_ticks: u64,
    max_beta: u64,
    max_blocks: usize,
) -> impl Strategy<Value = (Instance, usize)> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(move |(n1, n2)| {
            let msgs = proptest::collection::vec((0..n1, 0..n2, 1..=max_ticks), 1..=max_msgs);
            (
                Just((n1, n2)),
                1..=n1.min(n2),
                0..=max_beta,
                1..=max_blocks,
                msgs,
            )
        })
        .prop_map(|((n1, n2), k, beta, blocks, msgs)| {
            let mut g = Graph::new(n1, n2);
            for (l, r, w) in msgs {
                g.add_edge(l, r, w);
            }
            (Instance::new(g, k, beta), blocks)
        })
}

/// The instance's traffic aggregated per (sender, receiver) — parallel
/// edges fold together, exactly how a traffic matrix sees them.
fn traffic_of(inst: &Instance) -> TrafficMatrix {
    let mut t = TrafficMatrix::zeros(inst.graph.left_count(), inst.graph.right_count());
    for (_, l, r, w) in inst.graph.edges() {
        t.set(l, r, t.get(l, r) + w);
    }
    t
}

/// What the schedule actually moves per (sender, receiver).
fn delivered_by(inst: &Instance, schedule: &kpbs::Schedule) -> TrafficMatrix {
    let mut t = TrafficMatrix::zeros(inst.graph.left_count(), inst.graph.right_count());
    for step in &schedule.steps {
        for tr in &step.transfers {
            let (l, r) = (inst.graph.left_of(tr.edge), inst.graph.right_of(tr.edge));
            t.set(l, r, t.get(l, r) + tr.amount);
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every hierarchical schedule is a feasible K-PBS solution: 1-port
    /// matchings, width ≤ k, exact per-edge coverage — for any requested
    /// block count.
    #[test]
    fn hier_schedule_validates(
        (inst, blocks) in instance_strategy(24, 40, 30, 3, 8)
    ) {
        let s = hier(&inst, &HierConfig::new(blocks));
        prop_assert!(
            validate(&inst, &s).is_ok(),
            "blocks={blocks}: {:?}",
            validate(&inst, &s)
        );
        prop_assert!(s.cost() >= lower_bound(&inst));
    }

    /// The composed schedule delivers exactly the input traffic matrix:
    /// the residual (what the executor would still have to move) is zero.
    #[test]
    fn hier_delivers_exact_matrix(
        (inst, blocks) in instance_strategy(24, 40, 30, 3, 8)
    ) {
        let s = hier(&inst, &HierConfig::new(blocks));
        let residual = residual_matrix(&traffic_of(&inst), &delivered_by(&inst, &s));
        prop_assert_eq!(
            residual.total_bytes(), 0,
            "undelivered traffic with blocks={}", blocks
        );
    }

    /// The price of hierarchy is bounded: never more than a fixed factor
    /// over the flat OGGP plan of the same instance.
    #[test]
    fn hier_cost_within_factor_of_flat(
        (inst, blocks) in instance_strategy(24, 40, 30, 3, 8)
    ) {
        let h = hier(&inst, &HierConfig::new(blocks));
        let flat = oggp(&inst);
        prop_assert!(
            h.cost() <= COST_FACTOR * flat.cost(),
            "hier {} vs flat {} (blocks={})",
            h.cost(), flat.cost(), blocks
        );
    }

    /// One block degenerates to the flat pipeline: the schedules are
    /// byte-identical, not merely equal in cost.
    #[test]
    fn blocks_one_is_byte_identical_to_flat(
        (inst, _) in instance_strategy(24, 40, 30, 3, 8)
    ) {
        let h = hier(&inst, &HierConfig::new(1));
        let flat = oggp(&inst);
        prop_assert_eq!(h, flat);
    }
}
