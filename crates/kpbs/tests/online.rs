//! Differential tests of the online scheduler against the offline ground
//! truth: whatever order messages are revealed in, the committed schedule
//! must be a feasible K-PBS solution for the full message set, and its cost
//! can never beat the instance's volume/degree lower bound (which holds for
//! *any* feasible schedule, clairvoyant or not).

use bipartite::Graph;
use kpbs::online::{online_vs_offline, ArrivingMessage, OnlineScheduler};
use kpbs::validate::validate;
use kpbs::{lower_bound, Instance};
use proptest::prelude::*;

/// Random arrival streams: platform sides, backbone width, per-step setup
/// cost and a non-empty batch of messages with staggered release times.
fn stream_strategy(
    max_side: usize,
    max_msgs: usize,
    max_ticks: u64,
    max_release: usize,
    max_beta: u64,
) -> impl Strategy<Value = (usize, usize, usize, u64, Vec<ArrivingMessage>)> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(move |(n1, n2)| {
            let msgs = proptest::collection::vec(
                (0..=max_release, 0..n1, 0..n2, 1..=max_ticks),
                1..=max_msgs,
            );
            (Just((n1, n2)), 1..=n1.min(n2), 0..=max_beta, msgs)
        })
        .prop_map(|((n1, n2), k, beta, raw)| {
            let messages = raw
                .into_iter()
                .map(|(release, src, dst, ticks)| ArrivingMessage {
                    release,
                    src,
                    dst,
                    ticks,
                })
                .collect();
            (n1, n2, k, beta, messages)
        })
}

/// Replays `messages` through an [`OnlineScheduler`] exactly the way
/// [`online_vs_offline`] does, and also builds the matching full instance
/// whose edge ids line up with the scheduler's internal ones (edges are
/// created in `add_message` order).
fn drive_online(
    n1: usize,
    n2: usize,
    k: usize,
    beta: u64,
    messages: &[ArrivingMessage],
) -> (kpbs::Schedule, Instance) {
    let mut sched = OnlineScheduler::new(n1, n2, k, beta);
    let mut graph = Graph::new(n1, n2);
    let mut pending: Vec<&ArrivingMessage> = messages.iter().collect();
    pending.sort_by_key(|m| m.release);
    let mut next_arrival = 0usize;
    let mut step_idx = 0usize;
    loop {
        while next_arrival < pending.len() && pending[next_arrival].release <= step_idx {
            let m = pending[next_arrival];
            sched.add_message(next_arrival, m.src, m.dst, m.ticks);
            graph.add_edge(m.src, m.dst, m.ticks);
            next_arrival += 1;
        }
        if sched.next_step().is_none() {
            if next_arrival >= pending.len() {
                break;
            }
            step_idx = pending[next_arrival].release;
            continue;
        }
        step_idx += 1;
    }
    assert_eq!(sched.pending(), 0, "scheduler must drain");
    (sched.committed(), Instance::new(graph, k, beta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The committed online schedule is feasible for the union of all
    /// revealed messages: 1-port matchings, width ≤ k, exact coverage.
    #[test]
    fn online_schedule_is_feasible(
        (n1, n2, k, beta, messages) in stream_strategy(6, 20, 30, 6, 4)
    ) {
        let (committed, inst) = drive_online(n1, n2, k, beta, &messages);
        prop_assert!(
            validate(&inst, &committed).is_ok(),
            "online schedule failed validation: {:?}",
            validate(&inst, &committed)
        );
    }

    /// No arrival order lets the online policy beat the offline lower
    /// bound — it is a bound over *all* feasible schedules.
    #[test]
    fn online_cost_never_beats_lower_bound(
        (n1, n2, k, beta, messages) in stream_strategy(6, 20, 30, 6, 4)
    ) {
        let (committed, inst) = drive_online(n1, n2, k, beta, &messages);
        prop_assert!(
            committed.cost() >= lower_bound(&inst),
            "online cost {} < lower bound {}",
            committed.cost(),
            lower_bound(&inst)
        );
    }

    /// `online_vs_offline` agrees with a manual replay, and its offline
    /// side is itself bounded below by the lower bound.
    #[test]
    fn report_matches_manual_replay(
        (n1, n2, k, beta, messages) in stream_strategy(6, 20, 30, 6, 4)
    ) {
        let (committed, inst) = drive_online(n1, n2, k, beta, &messages);
        let report = online_vs_offline(n1, n2, k, beta, &messages);
        prop_assert_eq!(report.online_cost, committed.cost());
        prop_assert!(report.offline_cost >= lower_bound(&inst));
        prop_assert!(report.online_cost >= report.offline_cost.min(report.online_cost));
        prop_assert!(report.regret() > 0.0);
    }

    /// Everything released upfront: the online policy plans over complete
    /// information, so beyond feasibility its schedule must also respect
    /// the lower bound *and* finish in at most `edge count` steps (each
    /// step retires at least one transfer of one edge... conservatively,
    /// total steps cannot exceed total ticks).
    #[test]
    fn upfront_release_stays_bounded(
        (n1, n2, k, beta, mut messages) in stream_strategy(5, 12, 20, 0, 3)
    ) {
        for m in &mut messages {
            m.release = 0;
        }
        let (committed, inst) = drive_online(n1, n2, k, beta, &messages);
        prop_assert!(validate(&inst, &committed).is_ok());
        let total_ticks: u64 = messages.iter().map(|m| m.ticks).sum();
        prop_assert!(committed.num_steps() as u64 <= total_ticks);
    }
}
