//! Traffic matrices and their conversion into K-PBS instances.
//!
//! The application hands the scheduler a traffic matrix `M = (m_ij)` of
//! *bytes* to move from sender `i` to receiver `j` (Section 2.1). Dividing
//! by the per-transfer speed `t` gives the communication matrix
//! `C = (c_ij = m_ij / t)` of *durations*, which is the weighted bipartite
//! graph the algorithms schedule. Durations are discretised to integer ticks
//! by a [`TickScale`].

use crate::platform::Platform;
use crate::problem::Instance;
use bipartite::{Graph, Weight};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Conversion between wall-clock seconds and scheduler ticks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickScale {
    /// Number of ticks per second. Higher values discretise more finely;
    /// rounding (always up) costs at most one tick per message.
    pub ticks_per_second: f64,
}

impl TickScale {
    /// A millisecond-resolution scale, ample for the paper's workloads.
    pub const MILLIS: TickScale = TickScale {
        ticks_per_second: 1_000.0,
    };

    /// Converts a duration in seconds to ticks, rounding up (a non-zero
    /// duration never becomes zero ticks).
    pub fn to_ticks(&self, seconds: f64) -> Weight {
        assert!(seconds >= 0.0 && seconds.is_finite());
        if seconds == 0.0 {
            return 0;
        }
        (seconds * self.ticks_per_second).ceil().max(1.0) as Weight
    }

    /// Converts ticks back to seconds.
    pub fn to_seconds(&self, ticks: Weight) -> f64 {
        ticks as f64 / self.ticks_per_second
    }
}

/// The duration, in ticks, of a single message of `bytes` bytes on
/// `platform` under `scale` — the exact per-cell conversion
/// [`TrafficMatrix::to_instance`] applies, exposed on its own so a live
/// delta-planning server can patch instance weights consistently with the
/// cold construction (zero bytes → zero ticks, i.e. "no edge").
pub fn message_ticks(platform: &Platform, scale: TickScale, bytes: u64) -> Weight {
    if bytes == 0 {
        return 0;
    }
    let speed_bytes_per_s = platform.transfer_speed() * 1e6 / 8.0;
    scale.to_ticks(bytes as f64 / speed_bytes_per_s)
}

/// A dense traffic matrix in bytes, row-major (`n1` senders × `n2`
/// receivers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n1: usize,
    n2: usize,
    bytes: Vec<u64>,
}

impl TrafficMatrix {
    /// An all-zero matrix.
    pub fn zeros(n1: usize, n2: usize) -> Self {
        TrafficMatrix {
            n1,
            n2,
            bytes: vec![0; n1 * n2],
        }
    }

    /// Builds a matrix from a row-major byte vector.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != n1 * n2`.
    pub fn from_rows(n1: usize, n2: usize, bytes: Vec<u64>) -> Self {
        assert_eq!(bytes.len(), n1 * n2, "dimension mismatch");
        TrafficMatrix { n1, n2, bytes }
    }

    /// Number of senders.
    pub fn senders(&self) -> usize {
        self.n1
    }

    /// Number of receivers.
    pub fn receivers(&self) -> usize {
        self.n2
    }

    /// Bytes from sender `i` to receiver `j`.
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.bytes[i * self.n2 + j]
    }

    /// Sets the bytes from sender `i` to receiver `j`.
    pub fn set(&mut self, i: usize, j: usize, bytes: u64) {
        self.bytes[i * self.n2 + j] = bytes;
    }

    /// Total bytes to move.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of non-zero messages.
    pub fn message_count(&self) -> usize {
        self.bytes.iter().filter(|&&b| b > 0).count()
    }

    /// The workload of the paper's real-world experiments (Section 5.2):
    /// every pair communicates, sizes uniform in `[lo_mb, hi_mb]` MB.
    pub fn uniform_mb<R: Rng + ?Sized>(
        rng: &mut R,
        n1: usize,
        n2: usize,
        lo_mb: u64,
        hi_mb: u64,
    ) -> Self {
        assert!(lo_mb >= 1 && lo_mb <= hi_mb);
        let mut m = TrafficMatrix::zeros(n1, n2);
        for i in 0..n1 {
            for j in 0..n2 {
                m.set(i, j, rng.gen_range(lo_mb..=hi_mb) * 1_000_000);
            }
        }
        m
    }

    /// Converts the matrix into a K-PBS instance on `platform` with setup
    /// delay `beta_seconds`, discretised by `scale`.
    ///
    /// Each non-zero message becomes an edge whose weight is its transfer
    /// duration at the platform's per-transfer speed `t = min(t1, t2)`.
    /// Returns the instance together with the `(sender, receiver)` behind
    /// each edge id (edge ids are dense, in row-major message order).
    pub fn to_instance(
        &self,
        platform: &Platform,
        beta_seconds: f64,
        scale: TickScale,
    ) -> (Instance, Vec<(usize, usize)>) {
        assert_eq!(self.n1, platform.n1, "sender count mismatch");
        assert_eq!(self.n2, platform.n2, "receiver count mismatch");
        let mut g = Graph::new(self.n1, self.n2);
        let mut endpoints = Vec::with_capacity(self.message_count());
        for i in 0..self.n1 {
            for j in 0..self.n2 {
                let b = self.get(i, j);
                if b > 0 {
                    g.add_edge(i, j, message_ticks(platform, scale, b));
                    endpoints.push((i, j));
                }
            }
        }
        let beta = scale.to_ticks(beta_seconds);
        (Instance::new(g, platform.k(), beta), endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn tick_scale_round_trip() {
        let s = TickScale::MILLIS;
        assert_eq!(s.to_ticks(1.5), 1500);
        assert_eq!(s.to_ticks(0.0), 0);
        // Tiny but non-zero durations round up to one tick.
        assert_eq!(s.to_ticks(1e-9), 1);
        assert!((s.to_seconds(2500) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_accessors() {
        let mut m = TrafficMatrix::zeros(2, 3);
        m.set(1, 2, 42);
        m.set(0, 0, 8);
        assert_eq!(m.get(1, 2), 42);
        assert_eq!(m.total_bytes(), 50);
        assert_eq!(m.message_count(), 2);
        assert_eq!(m.senders(), 2);
        assert_eq!(m.receivers(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bad_dimensions_rejected() {
        TrafficMatrix::from_rows(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn uniform_workload_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 50);
        assert_eq!(m.message_count(), 100);
        for i in 0..10 {
            for j in 0..10 {
                let mb = m.get(i, j) / 1_000_000;
                assert!((10..=50).contains(&mb));
            }
        }
    }

    #[test]
    fn to_instance_durations() {
        // 100 Mbit/s NICs both sides, backbone 100 → k = 1, t = 100 Mbit/s =
        // 12.5 MB/s. A 25 MB message lasts 2 s = 2000 ms ticks.
        let p = Platform::new(1, 1, 100.0, 100.0, 100.0);
        let mut m = TrafficMatrix::zeros(1, 1);
        m.set(0, 0, 25_000_000);
        let (inst, endpoints) = m.to_instance(&p, 0.05, TickScale::MILLIS);
        assert_eq!(inst.graph.edge_count(), 1);
        let w = inst.graph.edges().next().unwrap().3;
        assert_eq!(w, 2000);
        assert_eq!(inst.beta, 50);
        assert_eq!(inst.k, 1);
        assert_eq!(endpoints, vec![(0, 0)]);
    }

    #[test]
    fn message_ticks_agrees_with_to_instance() {
        let p = Platform::new(2, 2, 100.0, 100.0, 200.0);
        let mut m = TrafficMatrix::zeros(2, 2);
        m.set(0, 1, 1_000_000);
        m.set(1, 0, 25_000_000);
        let (inst, endpoints) = m.to_instance(&p, 0.0, TickScale::MILLIS);
        for (e, &(i, j)) in endpoints.iter().enumerate() {
            assert_eq!(
                inst.graph.weight(bipartite::EdgeId(e as u32)),
                message_ticks(&p, TickScale::MILLIS, m.get(i, j)),
                "cell ({i}, {j})"
            );
        }
        assert_eq!(message_ticks(&p, TickScale::MILLIS, 0), 0);
    }

    #[test]
    fn zero_messages_skipped() {
        let p = Platform::new(2, 2, 100.0, 100.0, 200.0);
        let mut m = TrafficMatrix::zeros(2, 2);
        m.set(0, 1, 1_000_000);
        let (inst, endpoints) = m.to_instance(&p, 0.0, TickScale::MILLIS);
        assert_eq!(inst.graph.edge_count(), 1);
        assert_eq!(endpoints, vec![(0, 1)]);
    }
}
