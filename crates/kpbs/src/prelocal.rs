//! Local pre-redistribution — the paper's first future-work direction
//! (Section 6): "achieving a local pre-redistribution in case a high-speed
//! local network is available. This would allow to aggregate small
//! communications together, or on the opposite to dispatch communications
//! to all nodes in the cluster."
//!
//! Two rewriting passes over the communication graph, each with explicit
//! cost accounting for the local phase:
//!
//! * [`aggregate`] — per receiver, messages smaller than a threshold are
//!   gathered at a *proxy* sender over the local network, then cross the
//!   backbone as one message. Trades local gather time for fewer backbone
//!   steps (β) and lower degree.
//! * [`dispatch`] — whole messages are moved off overloaded senders onto
//!   lightly-loaded ones, lowering `W(G)` on the sender side (useful when
//!   one node holds most of the data).
//!
//! Both passes assume the intra-cluster network is a crossbar `speedup`
//! times faster than a backbone channel, with the 1-port rule applying
//! locally too (a node receives local data serially). The local phase cost
//! is therefore the maximum, over nodes, of the local traffic in or out of
//! that node, divided by the speedup.

use crate::problem::Instance;
use bipartite::{Graph, Weight};

/// Configuration of the local pre-redistribution passes.
#[derive(Debug, Clone, Copy)]
pub struct LocalConfig {
    /// Messages strictly smaller than this many ticks are aggregation
    /// candidates.
    pub small_threshold: Weight,
    /// How many times faster a local channel is than a backbone channel.
    pub local_speedup: f64,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            small_threshold: 4,
            local_speedup: 10.0,
        }
    }
}

/// Result of a pre-redistribution pass.
#[derive(Debug, Clone)]
pub struct PrePlan {
    /// The rewritten backbone instance.
    pub instance: Instance,
    /// Ticks spent in the local phase (already divided by the speedup,
    /// rounded up; phases across distinct node pairs overlap, so this is
    /// the per-node maximum).
    pub local_cost: Weight,
}

impl PrePlan {
    /// Total cost when scheduled with OGGP: local phase + backbone phase.
    pub fn total_cost(&self) -> Weight {
        self.local_cost + crate::oggp::oggp(&self.instance).cost()
    }
}

/// Aggregation pass: for every receiver with at least two small incoming
/// messages, gather them at the sender holding the largest of them (whose
/// own bytes never move locally) and merge into one backbone message.
///
/// ```
/// use bipartite::Graph;
/// use kpbs::{Instance, prelocal};
///
/// // Four 1-tick messages to receiver 0; β = 5 dominates them.
/// let mut g = Graph::new(4, 1);
/// for s in 0..4 { g.add_edge(s, 0, 1); }
/// let inst = Instance::new(g, 1, 5);
/// let pre = prelocal::aggregate(&inst, &prelocal::LocalConfig::default());
/// assert_eq!(pre.instance.graph.edge_count(), 1); // one merged message
/// assert!(pre.total_cost() < kpbs::oggp(&inst).cost());
/// ```
// `j` indexes `merged[s][j]` for varying `s`; iterating rows is not simpler.
#[allow(clippy::needless_range_loop)]
pub fn aggregate(inst: &Instance, cfg: &LocalConfig) -> PrePlan {
    assert!(cfg.local_speedup >= 1.0, "a slower local net never helps");
    let g = &inst.graph;
    let n1 = g.left_count();
    let n2 = g.right_count();

    // merged[s][j] = backbone ticks from s to j after rewriting.
    let mut merged = vec![vec![0u64; n2]; n1];
    // local_in[s] = ticks gathered INTO proxy s over the local network.
    let mut local_in = vec![0u64; n1];
    let mut local_out = vec![0u64; n1];

    for j in 0..n2 {
        let mut small: Vec<(usize, Weight)> = Vec::new();
        for e in g.edges_of_right(j) {
            let (s, w) = (g.left_of(e), g.weight(e));
            if w < cfg.small_threshold {
                small.push((s, w));
            } else {
                merged[s][j] += w;
            }
        }
        if small.len() >= 2 {
            // Proxy: holder of the largest small message.
            let &(proxy, _) = small
                .iter()
                .max_by_key(|&&(_, w)| w)
                .expect("non-empty small set");
            for &(s, w) in &small {
                merged[proxy][j] += w;
                if s != proxy {
                    local_in[proxy] += w;
                    local_out[s] += w;
                }
            }
        } else {
            for &(s, w) in &small {
                merged[s][j] += w;
            }
        }
    }

    build_preplan(inst, merged, &local_in, &local_out, cfg)
}

/// Dispatch pass: while some sender's outgoing weight exceeds the average
/// by more than the largest single message, move whole messages to the
/// least-loaded sender (greedy load balancing), paying the local copy.
pub fn dispatch(inst: &Instance, cfg: &LocalConfig) -> PrePlan {
    assert!(cfg.local_speedup >= 1.0);
    let g = &inst.graph;
    let n1 = g.left_count();
    let n2 = g.right_count();

    let mut merged = vec![vec![0u64; n2]; n1];
    // Messages as a mutable pool: (current holder, receiver, ticks).
    let mut pool: Vec<(usize, usize, Weight)> = g.edges().map(|(_, s, j, w)| (s, j, w)).collect();
    let mut load: Vec<Weight> = vec![0; n1];
    for &(s, _, w) in &pool {
        load[s] += w;
    }
    let mut local_in = vec![0u64; n1];
    let mut local_out = vec![0u64; n1];

    while let Some((max_s, &max_load)) = load.iter().enumerate().max_by_key(|&(_, &l)| l) {
        let (min_s, &min_load) = load
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("non-empty");
        // Smallest message of the overloaded sender that still helps.
        let candidate = pool
            .iter()
            .enumerate()
            .filter(|&(_, &(s, _, _))| s == max_s)
            .min_by_key(|&(_, &(_, _, w))| w)
            .map(|(i, &(_, _, w))| (i, w));
        let Some((idx, w)) = candidate else { break };
        // Move only while it strictly reduces the maximum load.
        if max_load <= min_load + w {
            break;
        }
        pool[idx].0 = min_s;
        load[max_s] -= w;
        load[min_s] += w;
        local_out[max_s] += w;
        local_in[min_s] += w;
    }

    for &(s, j, w) in &pool {
        merged[s][j] += w;
    }
    build_preplan(inst, merged, &local_in, &local_out, cfg)
}

fn build_preplan(
    inst: &Instance,
    merged: Vec<Vec<u64>>,
    local_in: &[u64],
    local_out: &[u64],
    cfg: &LocalConfig,
) -> PrePlan {
    let n2 = inst.graph.right_count();
    let mut g = Graph::new(merged.len(), n2);
    for (s, row) in merged.iter().enumerate() {
        for (j, &w) in row.iter().enumerate() {
            if w > 0 {
                g.add_edge(s, j, w);
            }
        }
    }
    // Local phase: per-node serial in/out, overlapping across nodes.
    let busiest = local_in.iter().chain(local_out).copied().max().unwrap_or(0);
    let local_cost = if busiest == 0 {
        0
    } else {
        ((busiest as f64 / cfg.local_speedup).ceil() as Weight).max(1)
    };
    PrePlan {
        instance: Instance::new(g, inst.k, inst.beta),
        local_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oggp::oggp;
    use bipartite::properties;

    fn many_small_to_one() -> Instance {
        // 6 senders each with a 1-tick message to receiver 0; β = 5 makes
        // the per-step setup dominate.
        let mut g = Graph::new(6, 2);
        for s in 0..6 {
            g.add_edge(s, 0, 1);
        }
        g.add_edge(0, 1, 10);
        Instance::new(g, 2, 5)
    }

    #[test]
    fn aggregation_merges_small_messages() {
        let inst = many_small_to_one();
        let cfg = LocalConfig {
            small_threshold: 4,
            local_speedup: 10.0,
        };
        let pre = aggregate(&inst, &cfg);
        // All six 1-tick messages merge into one 6-tick backbone message
        // (the proxy is whichever sender held a largest small message).
        assert_eq!(pre.instance.graph.edge_count(), 2);
        assert_eq!(properties::max_node_weight(&pre.instance.graph), 10); // sender 0's big message
        assert!(pre.local_cost >= 1);
        // Five 1-tick gathers over a 10x local net -> 1 tick.
        assert_eq!(pre.local_cost, 1);
    }

    #[test]
    fn aggregation_beneficial_when_beta_dominates() {
        let inst = many_small_to_one();
        let direct = oggp(&inst).cost();
        let pre = aggregate(&inst, &LocalConfig::default());
        assert!(
            pre.total_cost() < direct,
            "aggregated {} should beat direct {}",
            pre.total_cost(),
            direct
        );
    }

    #[test]
    fn aggregation_noop_when_messages_large() {
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 100);
        g.add_edge(1, 1, 90);
        g.add_edge(2, 0, 80);
        let inst = Instance::new(g, 2, 1);
        let pre = aggregate(&inst, &LocalConfig::default());
        assert_eq!(pre.local_cost, 0);
        assert_eq!(pre.instance.graph.edge_count(), 3);
        assert_eq!(
            pre.total_cost(),
            oggp(&inst).cost(),
            "no rewriting, no cost change"
        );
    }

    #[test]
    fn aggregation_preserves_volume() {
        let inst = many_small_to_one();
        let pre = aggregate(&inst, &LocalConfig::default());
        assert_eq!(
            properties::total_weight(&pre.instance.graph),
            inst.total_weight()
        );
    }

    #[test]
    fn dispatch_lowers_sender_bottleneck() {
        // One sender holds everything: W(G) = 12; others idle.
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 4);
        g.add_edge(0, 1, 4);
        g.add_edge(0, 2, 4);
        let inst = Instance::new(g, 3, 0);
        let pre = dispatch(&inst, &LocalConfig::default());
        let w_before = properties::max_node_weight(&inst.graph);
        let w_after = properties::max_node_weight(&pre.instance.graph);
        assert!(w_after < w_before, "{w_after} !< {w_before}");
        assert_eq!(
            properties::total_weight(&pre.instance.graph),
            inst.total_weight()
        );
        // With β = 0 the schedule cost equals max(W, ceil(P/k)): dispatch
        // brings it down from 12 towards ceil(12/3) = 4 (+ local copies).
        assert!(pre.total_cost() < oggp(&inst).cost() + pre.local_cost);
    }

    #[test]
    fn dispatch_noop_on_balanced_load() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 5);
        g.add_edge(1, 1, 5);
        let inst = Instance::new(g, 2, 1);
        let pre = dispatch(&inst, &LocalConfig::default());
        assert_eq!(pre.local_cost, 0);
        assert_eq!(pre.total_cost(), oggp(&inst).cost());
    }

    #[test]
    fn passes_keep_schedules_feasible() {
        use bipartite::generate::{random_graph, GraphParams};
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(41);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 12),
        };
        for _ in 0..50 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g, k, rng.gen_range(0..4));
            for pre in [
                aggregate(&inst, &LocalConfig::default()),
                dispatch(&inst, &LocalConfig::default()),
            ] {
                let s = oggp(&pre.instance);
                s.validate(&pre.instance).unwrap();
                assert_eq!(
                    properties::total_weight(&pre.instance.graph),
                    inst.total_weight()
                );
            }
        }
    }
}
