//! Schedules: ordered communication steps with per-edge quanta.

use crate::problem::Instance;
use crate::validate::{self, ValidationError};
use bipartite::{EdgeId, Weight};
use serde::{Deserialize, Serialize};

/// One preempted slice of a communication: `amount` ticks of edge `edge`
/// transmitted during some step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Edge of the *original* instance graph this slice belongs to.
    pub edge: EdgeId,
    /// Duration of the slice in ticks (1-port: the pair is busy that long).
    pub amount: Weight,
}

/// A communication step: a matching of the instance graph (at most one slice
/// per node) with at most `k` slices, all transmitted in parallel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// The slices of this step.
    pub transfers: Vec<Transfer>,
}

impl Step {
    /// Step duration `W(M_i)`: the longest slice of the step.
    pub fn duration(&self) -> Weight {
        self.transfers.iter().map(|t| t.amount).max().unwrap_or(0)
    }

    /// Number of parallel communications in this step.
    pub fn width(&self) -> usize {
        self.transfers.len()
    }

    /// Sum of the slice durations: the useful work carried by the step.
    pub fn volume(&self) -> Weight {
        self.transfers.iter().map(|t| t.amount).sum()
    }
}

/// A complete K-PBS solution: the ordered steps plus the setup delay they
/// were scheduled for. Total cost is `Σ_i (β + W(M_i))`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Communication steps in execution order.
    pub steps: Vec<Step>,
    /// Setup delay charged per step, in ticks.
    pub beta: Weight,
}

impl Schedule {
    /// Creates an empty schedule with the given setup delay.
    pub fn new(beta: Weight) -> Self {
        Schedule {
            steps: Vec::new(),
            beta,
        }
    }

    /// Number of steps `s`.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Objective value `Σ_i (β + W(M_i))` in ticks.
    pub fn cost(&self) -> Weight {
        self.steps.iter().map(|s| self.beta + s.duration()).sum()
    }

    /// Total transmission time excluding setup delays, `Σ_i W(M_i)`.
    pub fn transmission_time(&self) -> Weight {
        self.steps.iter().map(|s| s.duration()).sum()
    }

    /// Total useful work carried, `Σ_i Σ_t amount`.
    pub fn volume(&self) -> Weight {
        self.steps.iter().map(|s| s.volume()).sum()
    }

    /// Widest step (most parallel communications).
    pub fn max_width(&self) -> usize {
        self.steps.iter().map(|s| s.width()).max().unwrap_or(0)
    }

    /// Fraction of the transmission time during which matched pairs were
    /// actually transmitting: `volume / (Σ_i width_i · W(M_i))`. 1.0 means
    /// every step was perfectly square (all slices equal).
    pub fn slice_efficiency(&self) -> f64 {
        let busy: Weight = self
            .steps
            .iter()
            .map(|s| s.duration() * s.width() as Weight)
            .sum();
        if busy == 0 {
            return 1.0;
        }
        self.volume() as f64 / busy as f64
    }

    /// Checks this schedule against `inst`: 1-port steps, at most
    /// `effective_k` slices per step, positive amounts, and exact coverage of
    /// every edge weight. See [`crate::validate`].
    pub fn validate(&self, inst: &Instance) -> Result<(), ValidationError> {
        validate::validate(inst, self)
    }

    /// Renders the schedule as an ASCII Gantt chart: one row per
    /// communication (edge), one column block per step, `#` while the pair
    /// is transmitting. Step widths are proportional to durations (scaled
    /// to at most `max_cols` columns in total).
    ///
    /// ```text
    /// e0 |#####|   |..|
    /// e1 |#####|###|..|
    /// ```
    pub fn gantt(&self, max_cols: usize) -> String {
        use std::fmt::Write;
        if self.steps.is_empty() {
            return String::from("(empty schedule)\n");
        }
        let total: Weight = self.transmission_time().max(1);
        let scale = |w: Weight| -> usize {
            ((w as f64 / total as f64) * max_cols as f64)
                .ceil()
                .max(1.0) as usize
        };
        // Collect edge ids in first-appearance order.
        let mut edges: Vec<EdgeId> = Vec::new();
        for step in &self.steps {
            for t in &step.transfers {
                if !edges.contains(&t.edge) {
                    edges.push(t.edge);
                }
            }
        }
        let mut out = String::new();
        for &e in &edges {
            let _ = write!(out, "e{:<4}", e.0);
            for step in &self.steps {
                let cols = scale(step.duration());
                match step.transfers.iter().find(|t| t.edge == e) {
                    Some(t) => {
                        let filled = scale(t.amount).min(cols);
                        let _ = write!(out, "|{}{}", "#".repeat(filled), ".".repeat(cols - filled));
                    }
                    None => {
                        let _ = write!(out, "|{}", " ".repeat(cols));
                    }
                }
            }
            out.push_str("|\n");
        }
        // Footer: step durations.
        let _ = write!(out, "dur  ");
        for step in &self.steps {
            let cols = scale(step.duration());
            let label = format!("{}", step.duration());
            let _ = write!(out, "|{label:>cols$}");
        }
        out.push_str("|\n");
        out
    }

    /// Apportions each edge's byte volume across its slices, proportional to
    /// slice durations, with no remainder: per step, the bytes each transfer
    /// should move. `bytes[e]` is the volume of edge id `e`; the
    /// cumulative-floor split guarantees the per-edge sums equal `bytes[e]`
    /// exactly whenever the schedule covers the edge.
    ///
    /// Runtime executors (the fluid simulator and the MPI-like runtime) use
    /// this to turn tick-valued schedules back into byte transfers.
    pub fn byte_slices(&self, inst: &Instance, bytes: &[u64]) -> Vec<Vec<(EdgeId, u64)>> {
        let m = bytes.len();
        let mut weight: Vec<u128> = vec![0; m];
        for e in inst.graph.edge_ids() {
            weight[e.index()] = inst.graph.weight(e) as u128;
        }
        let mut cum: Vec<u128> = vec![0; m];
        self.steps
            .iter()
            .map(|step| {
                step.transfers
                    .iter()
                    .filter_map(|t| {
                        let i = t.edge.index();
                        let before = bytes[i] as u128 * cum[i] / weight[i];
                        cum[i] += t.amount as u128;
                        let after = bytes[i] as u128 * cum[i] / weight[i];
                        let slice = (after - before) as u64;
                        (slice > 0).then_some((t.edge, slice))
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(amounts: &[Weight]) -> Step {
        Step {
            transfers: amounts
                .iter()
                .enumerate()
                .map(|(i, &a)| Transfer {
                    edge: EdgeId(i as u32),
                    amount: a,
                })
                .collect(),
        }
    }

    #[test]
    fn figure2_cost_accounting() {
        // Figure 2 of the paper: three steps of durations 5, 3, 4 with β = 1
        // cost (1+5) + (1+3) + (1+4) = 15.
        let s = Schedule {
            steps: vec![step(&[5, 4]), step(&[3, 3]), step(&[4, 4, 2])],
            beta: 1,
        };
        assert_eq!(s.cost(), 15);
        assert_eq!(s.num_steps(), 3);
        assert_eq!(s.transmission_time(), 12);
    }

    #[test]
    fn empty_schedule_costs_nothing() {
        let s = Schedule::new(10);
        assert_eq!(s.cost(), 0);
        assert_eq!(s.num_steps(), 0);
        assert_eq!(s.max_width(), 0);
        assert!((s.slice_efficiency() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn step_metrics() {
        let st = step(&[4, 2, 4]);
        assert_eq!(st.duration(), 4);
        assert_eq!(st.width(), 3);
        assert_eq!(st.volume(), 10);
    }

    #[test]
    fn gantt_renders_rows_and_footer() {
        let s = Schedule {
            steps: vec![
                Step {
                    transfers: vec![
                        Transfer {
                            edge: EdgeId(0),
                            amount: 5,
                        },
                        Transfer {
                            edge: EdgeId(1),
                            amount: 3,
                        },
                    ],
                },
                Step {
                    transfers: vec![Transfer {
                        edge: EdgeId(1),
                        amount: 4,
                    }],
                },
            ],
            beta: 1,
        };
        let g = s.gantt(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "two edges + footer:\n{g}");
        assert!(lines[0].starts_with("e0"));
        assert!(lines[1].starts_with("e1"));
        assert!(lines[0].contains('#'));
        assert!(lines[2].starts_with("dur"));
        // e0 is idle in step 2: its second cell is blank.
        assert!(lines[0].trim_end().ends_with('|'));
    }

    #[test]
    fn gantt_empty_schedule() {
        assert_eq!(Schedule::new(1).gantt(20), "(empty schedule)\n");
    }

    #[test]
    fn byte_slices_exact_and_proportional() {
        use bipartite::Graph;
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 3);
        let inst = Instance::new(g, 1, 0);
        let s = Schedule {
            steps: vec![
                Step {
                    transfers: vec![Transfer { edge: e, amount: 1 }],
                },
                Step {
                    transfers: vec![Transfer { edge: e, amount: 2 }],
                },
            ],
            beta: 0,
        };
        // 10 bytes over ticks 1 + 2 → slices of 3 and 7 (cumulative floor).
        let slices = s.byte_slices(&inst, &[10]);
        assert_eq!(slices[0], vec![(e, 3)]);
        assert_eq!(slices[1], vec![(e, 7)]);
        let total: u64 = slices.iter().flatten().map(|&(_, b)| b).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn byte_slices_zero_slice_dropped() {
        use bipartite::Graph;
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 1000);
        let inst = Instance::new(g, 1, 0);
        let s = Schedule {
            steps: vec![
                Step {
                    transfers: vec![Transfer { edge: e, amount: 1 }],
                },
                Step {
                    transfers: vec![Transfer {
                        edge: e,
                        amount: 999,
                    }],
                },
            ],
            beta: 0,
        };
        // 1 byte over 1000 ticks: the first (1-tick) slice rounds to zero
        // bytes and is dropped; the remainder carries the byte.
        let slices = s.byte_slices(&inst, &[1]);
        assert!(slices[0].is_empty());
        assert_eq!(slices[1], vec![(e, 1)]);
    }

    #[test]
    fn slice_efficiency_square_steps() {
        let s = Schedule {
            steps: vec![step(&[3, 3, 3])],
            beta: 0,
        };
        assert!((s.slice_efficiency() - 1.0).abs() < f64::EPSILON);
        let ragged = Schedule {
            steps: vec![step(&[4, 2])],
            beta: 0,
        };
        assert!((ragged.slice_efficiency() - 0.75).abs() < 1e-12);
    }
}
