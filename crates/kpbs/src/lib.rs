//! K-Preemptive Bipartite Scheduling (K-PBS).
//!
//! This crate implements the contribution of Jeannot & Wagner, *Two Fast and
//! Efficient Message Scheduling Algorithms for Data Redistribution through a
//! Backbone* (IPDPS 2004): scheduling an arbitrary redistribution pattern
//! between two clusters interconnected by a backbone that admits at most `k`
//! simultaneous transfers, under the 1-port model, with a per-step setup
//! delay `β`, minimising `Σ_i (β + W(M_i))`.
//!
//! The two headline algorithms are:
//!
//! * [`mod@ggp`] — the Generic Graph Peeling 2-approximation (Section 4.2),
//! * [`mod@oggp`] — the Optimised GGP (Section 4.3), identical peeling but each
//!   step's matching maximises its minimum edge weight.
//!
//! Supporting pieces: [`wrgp`] (the weight-regular peeling kernel, Fig. 3),
//! [`regularize`] (Section 4.2.2 graph augmentation), [`normalize`]
//! (β-normalisation), [`mod@lower_bound`] (the Cohen–Jeannot–Padoy bound used as
//! the denominator of the paper's *evaluation ratio*), [`exact`] (an optimal
//! branch-and-bound solver for tiny instances), [`baselines`], [`mod@hier`] (the
//! hierarchical block-decomposed planner for large sparse instances), and
//! the future-work extensions [`adaptive`] (time-varying `k`) and [`relax`]
//! (barrier weakening). [`mod@topo`] generalises the platform model to
//! heterogeneous multi-backbone topologies with a per-bottleneck `k_b`.
//!
//! # Quickstart
//!
//! ```
//! use bipartite::Graph;
//! use kpbs::{Instance, ggp, oggp, lower_bound};
//!
//! // 2 senders, 2 receivers, 3 messages; at most k = 1 transfer at a time,
//! // setup delay β = 1 tick.
//! let mut g = Graph::new(2, 2);
//! g.add_edge(0, 0, 4);
//! g.add_edge(0, 1, 2);
//! g.add_edge(1, 1, 3);
//! let inst = Instance::new(g, 1, 1);
//!
//! let s = oggp::oggp(&inst);
//! s.validate(&inst).unwrap();
//! assert!(s.cost() >= lower_bound::lower_bound(&inst));
//! assert!(ggp::ggp(&inst).validate(&inst).is_ok());
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod baselines;
pub mod batch;
pub mod coloring;
pub mod delta;
pub mod exact;
pub mod fingerprint;
pub mod ggp;
pub mod hier;
pub mod instances;
pub mod lower_bound;
pub mod normalize;
pub mod oggp;
pub mod online;
pub mod platform;
pub mod prelocal;
pub mod problem;
pub mod regularize;
pub mod relax;
pub mod residual;
pub mod schedule;
pub mod stats;
pub mod topo;
pub mod traffic;
pub mod validate;
pub mod wdm;
pub mod wrgp;

pub use batch::{plan_many, plan_many_with, BatchReport};
pub use delta::{DeltaPlanner, MatrixDelta, RepairLevel, ReplanOutcome};
pub use fingerprint::{cache_key, fingerprint, session_cache_key};
pub use ggp::ggp;
pub use hier::{hier, hier_report, HierConfig, HierReport};
pub use lower_bound::lower_bound;
pub use oggp::oggp;
pub use platform::Platform;
pub use problem::Instance;
pub use residual::{residual_matrix, restrict_matrix, surviving_residual};
pub use schedule::{Schedule, Step, Transfer};
pub use topo::{
    plan_topology, topo_lower_bound, BackboneSpec, NodeSpec, TopoAlgo, TopoError, TopoPlan,
    Topology,
};
pub use traffic::TrafficMatrix;

#[cfg(test)]
pub(crate) mod testutil {
    /// Work counters are process-global; tests that toggle or diff them
    /// must not overlap (mirrors the lock in the telemetry crate's tests).
    pub static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
