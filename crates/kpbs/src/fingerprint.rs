//! Canonical instance fingerprints — the cache key of the serving layer.
//!
//! A long-lived planner (`redistd`) wants to answer a repeated request from
//! a plan cache, but a cached answer is only usable when it is *the* answer:
//! byte-identical to what a cold run would produce. The schedulers here are
//! deterministic functions of the instance — node counts, `k`, `β`, and the
//! edge list **in edge-id order** (edge ids appear in [`crate::Schedule`]
//! transfers, so two instances with the same edge multiset but different
//! insertion orders yield differently-labelled schedules). The fingerprint
//! therefore hashes exactly that tuple, and nothing else.
//!
//! Instances built through a canonical constructor —
//! [`crate::TrafficMatrix::to_instance`] emits edges in row-major
//! `(sender, receiver)` order, as does the `redistd` wire decoder — hash
//! equal iff they plan equal, which is the property the cache needs:
//! equal fingerprints → byte-identical schedules (up to the 128-bit
//! collision bound), different fingerprints → at worst a needless miss.
//!
//! The hash is two independent 64-bit FNV-1a streams over the same byte
//! sequence, concatenated into a `u128`. FNV is not cryptographic; the
//! serving layer guards against adversarial collisions by storing the full
//! canonical byte encoding's length alongside (and a 2⁻¹²⁸ accidental
//! collision is below any operational concern).

use crate::problem::Instance;
use bipartite::Graph;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// A second, independent offset for the high half of the 128-bit key
/// (FNV-1a with a different starting state; streams stay decorrelated).
const FNV_OFFSET_HI: u64 = 0x6c62_272e_07bb_0142;

/// An incremental two-stream FNV-1a hasher producing a 128-bit digest.
#[derive(Debug, Clone)]
struct Fnv2 {
    lo: u64,
    hi: u64,
}

impl Fnv2 {
    fn new() -> Self {
        Fnv2 {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET_HI,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ b as u64).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn digest(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// The canonical 128-bit fingerprint of an instance: a hash of
/// `(n1, n2, k, β, edges in id order)`. Equal fingerprints identify
/// instances on which every scheduler in this crate produces identical
/// schedules; see the module docs for the canonical-construction caveat.
pub fn fingerprint(inst: &Instance) -> u128 {
    let mut h = Fnv2::new();
    write_instance(&mut h, inst);
    h.digest()
}

/// Fingerprint extended with a caller-chosen domain tag — the serving
/// layer's cache key, where `tag` encodes the algorithm (and any future
/// planner option) so OGGP and GGP plans for one instance never collide.
pub fn cache_key(inst: &Instance, tag: u64) -> u128 {
    let mut h = Fnv2::new();
    h.write_u64(tag);
    write_instance(&mut h, inst);
    h.digest()
}

/// Domain separator mixed into every [`session_cache_key`], so a
/// session-generation key can never alias a plain [`cache_key`] (not even
/// at generation 0) or a bare [`fingerprint`].
const SESSION_DOMAIN: u64 = 0x5e55_10de_17a9_e4e1;

/// Cache key for a plan committed by a live delta-planning session:
/// [`cache_key`] extended with the session's replan `generation`, under a
/// dedicated domain separator. Patched instances move through generations
/// as deltas land, so a patched plan can never alias the pre-delta entry
/// for the same canonical matrix — or any stateless `cache_key` entry.
pub fn session_cache_key(inst: &Instance, tag: u64, generation: u64) -> u128 {
    let mut h = Fnv2::new();
    h.write_u64(SESSION_DOMAIN);
    h.write_u64(tag);
    h.write_u64(generation);
    write_instance(&mut h, inst);
    h.digest()
}

fn write_instance(h: &mut Fnv2, inst: &Instance) {
    write_graph(h, &inst.graph);
    h.write_u64(inst.k as u64);
    h.write_u64(inst.beta);
}

fn write_graph(h: &mut Fnv2, g: &Graph) {
    h.write_u64(g.left_count() as u64);
    h.write_u64(g.right_count() as u64);
    h.write_u64(g.edge_count() as u64);
    for (_, l, r, w) in g.edges() {
        h.write_u64(l as u64);
        h.write_u64(r as u64);
        h.write_u64(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::Graph;

    fn inst(edges: &[(usize, usize, u64)], k: usize, beta: u64) -> Instance {
        let mut g = Graph::new(4, 4);
        for &(l, r, w) in edges {
            g.add_edge(l, r, w);
        }
        Instance::new(g, k, beta)
    }

    #[test]
    fn identical_instances_hash_equal() {
        let a = inst(&[(0, 0, 5), (1, 2, 3)], 2, 1);
        let b = inst(&[(0, 0, 5), (1, 2, 3)], 2, 1);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(cache_key(&a, 7), cache_key(&b, 7));
    }

    #[test]
    fn every_field_is_significant() {
        let base = inst(&[(0, 0, 5), (1, 2, 3)], 2, 1);
        let variants = [
            inst(&[(0, 0, 5), (1, 2, 4)], 2, 1), // weight
            inst(&[(0, 0, 5), (1, 3, 3)], 2, 1), // endpoint
            inst(&[(0, 0, 5), (1, 2, 3)], 3, 1), // k
            inst(&[(0, 0, 5), (1, 2, 3)], 2, 2), // beta
            inst(&[(0, 0, 5)], 2, 1),            // edge count
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(fingerprint(&base), fingerprint(v), "variant {i}");
        }
    }

    #[test]
    fn edge_order_is_significant() {
        // Edge ids label the schedule's transfers, so insertion order is
        // part of the instance identity — the fingerprint must see it.
        let a = inst(&[(0, 0, 5), (1, 2, 3)], 2, 1);
        let b = inst(&[(1, 2, 3), (0, 0, 5)], 2, 1);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn node_counts_are_significant() {
        let mut g1 = Graph::new(2, 2);
        g1.add_edge(0, 0, 5);
        let mut g2 = Graph::new(3, 2);
        g2.add_edge(0, 0, 5);
        assert_ne!(
            fingerprint(&Instance::new(g1, 1, 0)),
            fingerprint(&Instance::new(g2, 1, 0))
        );
    }

    #[test]
    fn tag_separates_domains() {
        let a = inst(&[(0, 0, 5)], 1, 0);
        assert_ne!(cache_key(&a, 0), cache_key(&a, 1));
        assert_ne!(fingerprint(&a), cache_key(&a, 0));
    }

    #[test]
    fn session_keys_live_in_their_own_domain() {
        let a = inst(&[(0, 0, 5)], 1, 0);
        // Generation is significant...
        assert_ne!(session_cache_key(&a, 0, 0), session_cache_key(&a, 0, 1));
        // ...the algorithm tag still separates...
        assert_ne!(session_cache_key(&a, 0, 3), session_cache_key(&a, 1, 3));
        // ...and no generation collapses onto the stateless keys.
        for generation in 0..4 {
            assert_ne!(session_cache_key(&a, 0, generation), cache_key(&a, 0));
            assert_ne!(session_cache_key(&a, 0, generation), fingerprint(&a));
        }
    }

    #[test]
    fn halves_are_decorrelated() {
        let a = fingerprint(&inst(&[(0, 0, 5)], 1, 0));
        assert_ne!(a as u64, (a >> 64) as u64);
    }
}
