//! WRGP — Weight-Regular Graph Peeling (Section 4.1, Figure 3).
//!
//! Input: a weight-regular bipartite graph with `|V1| = |V2|`. Such a graph
//! always contains a perfect matching \[8\]; WRGP repeatedly extracts one,
//! transmits the matching's *minimum* weight `w` on every matched edge
//! (preemption cuts the larger edges), and subtracts. Every peel removes at
//! least one edge (the minimum one), so there are at most `m` iterations,
//! and the residual graph stays weight-regular because a uniform `w` is
//! removed from every node.
//!
//! The choice of perfect matching is pluggable via [`MatchingStrategy`]:
//! GGP uses any maximum matching ([`AnyPerfect`]); OGGP uses the bottleneck
//! matching ([`MaxMinPerfect`]) that maximises `w` and thereby minimises the
//! number of steps.
//!
//! Each stateless strategy also has an incremental twin driven through
//! [`MatchingStrategyMut`] and [`peel_all_incremental`]: a
//! [`bipartite::MatchingEngine`] carries the surviving matching, the
//! bottleneck threshold and every scratch buffer from one peel to the next
//! instead of recomputing from scratch. The stateless entry points remain
//! the reference oracle the differential tests compare against.

use bipartite::{
    bottleneck, greedy, hopcroft_karp, EdgeId, Graph, Matching, MatchingEngine, Weight,
};
use telemetry::counters::{self, Counter};

/// How WRGP picks the perfect matching of each peel.
pub trait MatchingStrategy {
    /// Returns a maximum-cardinality matching of `g` (perfect whenever the
    /// peeling invariant holds).
    fn matching(&self, g: &Graph) -> Matching;
}

/// Stateful variant of [`MatchingStrategy`] for strategies that carry state
/// from peel to peel (the incremental engine strategies below). The peeling
/// loop calls [`begin`](MatchingStrategyMut::begin) once, then alternates
/// [`matching`](MatchingStrategyMut::matching) with
/// [`observe_peel`](MatchingStrategyMut::observe_peel) after subtracting
/// each quantum.
pub trait MatchingStrategyMut {
    /// Called once before the first peel of a run over `g`.
    fn begin(&mut self, g: &Graph) {
        let _ = g;
    }

    /// Returns a maximum-cardinality matching of the residual graph.
    fn matching(&mut self, g: &Graph) -> Matching;

    /// Called after the caller subtracted `quantum` from every edge of
    /// `peeled` (removing the ones that reached zero).
    fn observe_peel(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        let _ = (g, peeled, quantum);
    }
}

/// Every stateless strategy is trivially a stateful one; this lets the
/// differential tests run cold strategies through the incremental loop.
impl<S: MatchingStrategy> MatchingStrategyMut for S {
    fn matching(&mut self, g: &Graph) -> Matching {
        MatchingStrategy::matching(self, g)
    }
}

/// Any perfect matching (Hopcroft–Karp). This is plain GGP.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPerfect;

impl MatchingStrategy for AnyPerfect {
    fn matching(&self, g: &Graph) -> Matching {
        hopcroft_karp::maximum_matching(g)
    }
}

/// The perfect matching whose minimum edge weight is maximal (Figure 6).
/// This is the OGGP refinement.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMinPerfect;

impl MatchingStrategy for MaxMinPerfect {
    fn matching(&self, g: &Graph) -> Matching {
        bottleneck::max_min_matching(g)
    }
}

/// A perfect matching grown from a heaviest-first greedy seed: still "any
/// perfect matching" as far as GGP's correctness goes, but biased towards
/// heavy edges. Quantifies how much of OGGP's advantage a cheap heuristic
/// in the matching routine already captures — the paper leaves the matching
/// algorithm open, so reported GGP numbers depend on exactly this choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySeeded;

impl MatchingStrategy for GreedySeeded {
    fn matching(&self, g: &Graph) -> Matching {
        let seed = greedy::maximal_matching_heaviest_first(g);
        hopcroft_karp::maximum_matching_seeded(g, &seed)
    }
}

/// Incremental [`AnyPerfect`]: each peel's matching is grown from the
/// survivors of the previous one on recycled engine buffers, equivalent to
/// re-running `maximum_matching_seeded` with the surviving pairs as seed.
#[derive(Debug, Default)]
pub struct IncrementalAnyPerfect {
    engine: MatchingEngine,
}

impl IncrementalAnyPerfect {
    /// Creates a strategy with an empty engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchingStrategyMut for IncrementalAnyPerfect {
    fn begin(&mut self, g: &Graph) {
        self.engine.begin(g);
    }

    fn matching(&mut self, g: &Graph) -> Matching {
        self.engine.any_perfect_matching(g)
    }

    fn observe_peel(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        self.engine.observe_peel(g, peeled, quantum);
    }
}

/// Incremental [`MaxMinPerfect`]: identical matchings peel for peel (the
/// returned matching goes through the same canonical filtered solve), but
/// the cardinality witness, the threshold sweep and every scratch buffer
/// are carried across peels.
#[derive(Debug, Default)]
pub struct IncrementalMaxMin {
    engine: MatchingEngine,
}

impl IncrementalMaxMin {
    /// Creates a strategy with an empty engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchingStrategyMut for IncrementalMaxMin {
    fn begin(&mut self, g: &Graph) {
        self.engine.begin(g);
    }

    fn matching(&mut self, g: &Graph) -> Matching {
        self.engine.max_min_matching(g)
    }

    fn observe_peel(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        self.engine.observe_peel(g, peeled, quantum);
    }
}

/// Incremental [`GreedySeeded`]: identical matchings peel for peel, with
/// the heaviest-first order maintained by an O(m) merge instead of a
/// per-peel sort.
#[derive(Debug, Default)]
pub struct IncrementalGreedySeeded {
    engine: MatchingEngine,
}

impl IncrementalGreedySeeded {
    /// Creates a strategy with an empty engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchingStrategyMut for IncrementalGreedySeeded {
    fn begin(&mut self, g: &Graph) {
        self.engine.begin(g);
    }

    fn matching(&mut self, g: &Graph) -> Matching {
        self.engine.greedy_seeded_matching(g)
    }

    fn observe_peel(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        self.engine.observe_peel(g, peeled, quantum);
    }
}

/// One peel of the WRGP loop: the matched edges and the uniform quantum
/// every one of them transmitted.
#[derive(Debug, Clone)]
pub struct Peel {
    /// Matched edge ids (in the peeled graph's id space).
    pub edges: Vec<EdgeId>,
    /// Ticks transmitted by every edge of the matching this step.
    pub quantum: Weight,
}

/// Runs the WRGP loop on `g`, consuming all its weight. `g` must be
/// weight-regular with equal side sizes (every isolated node has weight 0
/// only when the whole graph is empty).
///
/// # Panics
///
/// Panics if the invariant breaks (no perfect matching found on a non-empty
/// graph) — that indicates the input was not weight-regular.
pub fn peel_all<S: MatchingStrategy>(g: &mut Graph, strategy: &S) -> Vec<Peel> {
    let mut peels = Vec::new();
    let side = g.left_count();
    while !g.is_empty() {
        counters::incr(Counter::Peels);
        let m = strategy.matching(g);
        assert_eq!(
            m.len(),
            side,
            "WRGP invariant violated: no perfect matching in a {}-node side graph \
             ({} live edges) — input was not weight-regular",
            side,
            g.edge_count()
        );
        let quantum = m.min_weight(g).expect("non-empty matching");
        debug_assert!(quantum > 0);
        for &e in m.edges() {
            g.decrease_weight(e, quantum);
        }
        peels.push(Peel {
            edges: m.into_edges(),
            quantum,
        });
    }
    peels
}

/// The incremental WRGP loop: like [`peel_all`], but driving a stateful
/// [`MatchingStrategyMut`] — the strategy is told about every peel so it can
/// carry matchings, thresholds and scratch buffers to the next one. With the
/// `Incremental*` strategies this is the fast path GGP/OGGP use; with a
/// stateless strategy (via the blanket impl) it degenerates to [`peel_all`].
///
/// # Panics
///
/// Panics if the invariant breaks (no perfect matching found on a non-empty
/// graph) — that indicates the input was not weight-regular.
pub fn peel_all_incremental<S: MatchingStrategyMut>(g: &mut Graph, strategy: &mut S) -> Vec<Peel> {
    strategy.begin(g);
    let mut peels = Vec::new();
    let side = g.left_count();
    while !g.is_empty() {
        counters::incr(Counter::Peels);
        let m = strategy.matching(g);
        assert_eq!(
            m.len(),
            side,
            "WRGP invariant violated: no perfect matching in a {}-node side graph \
             ({} live edges) — input was not weight-regular",
            side,
            g.edge_count()
        );
        let quantum = m.min_weight(g).expect("non-empty matching");
        debug_assert!(quantum > 0);
        for &e in m.edges() {
            g.decrease_weight(e, quantum);
        }
        strategy.observe_peel(g, &m, quantum);
        peels.push(Peel {
            edges: m.into_edges(),
            quantum,
        });
    }
    peels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::properties;

    fn regular_4cycle() -> Graph {
        // Figure 4-style example: 2x2 cycle, node weight 5 everywhere.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 0, 2);
        g.add_edge(1, 1, 3);
        g
    }

    #[test]
    fn peels_consume_everything() {
        let mut g = regular_4cycle();
        let peels = peel_all(&mut g, &AnyPerfect);
        assert!(g.is_empty());
        let volume: Weight = peels
            .iter()
            .map(|p| p.quantum * p.edges.len() as Weight)
            .sum();
        assert_eq!(volume, 10);
    }

    #[test]
    fn residual_stays_weight_regular() {
        let mut g = regular_4cycle();
        // One manual peel.
        let m = AnyPerfect.matching(&g);
        let q = m.min_weight(&g).unwrap();
        for &e in m.edges() {
            g.decrease_weight(e, q);
        }
        assert!(properties::is_weight_regular(&g));
    }

    #[test]
    fn total_transmission_equals_regular_weight() {
        // In a weight-regular graph of node weight R, WRGP transmits for
        // exactly R ticks: every step is square and every node always busy.
        let mut g = regular_4cycle();
        let peels = peel_all(&mut g, &AnyPerfect);
        let total: Weight = peels.iter().map(|p| p.quantum).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn max_min_strategy_no_more_peels() {
        let build = || {
            let mut g = Graph::new(3, 3);
            // Weight-regular with node weight 6.
            g.add_edge(0, 0, 4);
            g.add_edge(0, 1, 2);
            g.add_edge(1, 1, 4);
            g.add_edge(1, 2, 2);
            g.add_edge(2, 2, 4);
            g.add_edge(2, 0, 2);
            g
        };
        let p_any = peel_all(&mut build(), &AnyPerfect);
        let p_mm = peel_all(&mut build(), &MaxMinPerfect);
        assert!(p_mm.len() <= p_any.len());
        // Both transmit exactly R = 6.
        assert_eq!(p_mm.iter().map(|p| p.quantum).sum::<Weight>(), 6);
        assert_eq!(p_any.iter().map(|p| p.quantum).sum::<Weight>(), 6);
    }

    #[test]
    fn empty_graph_no_peels() {
        let mut g = Graph::new(0, 0);
        assert!(peel_all(&mut g, &AnyPerfect).is_empty());
    }

    #[test]
    #[should_panic(expected = "WRGP invariant violated")]
    fn irregular_graph_panics() {
        // Not weight-regular: left 1 is isolated.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 3);
        g.add_edge(0, 1, 3);
        peel_all(&mut g, &AnyPerfect);
    }

    #[test]
    fn random_regular_graphs_peel_cleanly() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        // Build random weight-regular graphs as unions of random perfect
        // matchings with uniform weights.
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..100 {
            let n = rng.gen_range(1..8);
            let layers = rng.gen_range(1..5);
            let mut g = Graph::new(n, n);
            let mut expected_r: Weight = 0;
            for _ in 0..layers {
                let w: Weight = rng.gen_range(1..10);
                expected_r += w;
                // Random permutation as a perfect matching.
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                for (l, &r) in perm.iter().enumerate() {
                    g.add_edge(l, r, w);
                }
            }
            assert_eq!(properties::regular_weight(&g), Some(expected_r));
            let peels = peel_all(&mut g, &MaxMinPerfect);
            let total: Weight = peels.iter().map(|p| p.quantum).sum();
            assert_eq!(total, expected_r, "transmission equals node weight");
        }
    }
}
