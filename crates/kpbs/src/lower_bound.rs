//! The Cohen–Jeannot–Padoy lower bound on the optimal K-PBS cost
//! (references [7, 6] of the paper), used as the denominator of the paper's
//! *evaluation ratio* throughout Section 5.1.
//!
//! Two independent lower bounds compose additively:
//!
//! * **transmission**: every schedule transmits for at least
//!   `max(W(G), ⌈P(G)/k⌉)` ticks — the busiest node keeps its single port
//!   busy for `W(G)`, and `k` parallel channels move at most `k` ticks of
//!   volume per tick;
//! * **setup**: every schedule has at least `max(⌈m/k⌉, Δ(G))` steps — each
//!   step covers at most `k` distinct edges and at most one edge per node —
//!   and each step pays `β`.

use crate::problem::Instance;
use bipartite::properties;
use bipartite::Weight;

/// Lower bound on the number of steps of any feasible schedule.
pub fn min_steps(inst: &Instance) -> u64 {
    let g = &inst.graph;
    if g.is_empty() {
        return 0;
    }
    let k = inst.effective_k() as u64;
    let m = g.edge_count() as u64;
    let delta = properties::max_degree(g) as u64;
    m.div_ceil(k).max(delta)
}

/// Lower bound on the total transmission time (excluding setups) of any
/// feasible schedule.
pub fn min_transmission(inst: &Instance) -> Weight {
    let g = &inst.graph;
    if g.is_empty() {
        return 0;
    }
    let k = inst.effective_k() as Weight;
    let p = properties::total_weight(g);
    let w = properties::max_node_weight(g);
    w.max(p.div_ceil(k))
}

/// The weaker per-node bound `max_s (w(s) + β·Δ(s))`: the busiest node must
/// run each of its `Δ(s)` transfers in a distinct step (1-port) and be busy
/// `w(s)` in total. Always dominated by [`lower_bound`], which may combine
/// the heaviest node with a *different* highest-degree node; kept for
/// documentation and as a cross-check in tests.
pub fn per_node_bound(inst: &Instance) -> Weight {
    let g = &inst.graph;
    let left =
        (0..g.left_count()).map(|l| g.node_weight_left(l) + inst.beta * g.degree_left(l) as Weight);
    let right = (0..g.right_count())
        .map(|r| g.node_weight_right(r) + inst.beta * g.degree_right(r) as Weight);
    left.chain(right).max().unwrap_or(0)
}

/// The full lower bound `max(W(G), ⌈P/k⌉) + β·max(⌈m/k⌉, Δ(G))` in ticks.
///
/// Any feasible schedule costs at least this much, so
/// `cost / lower_bound ≥ 1` and, by Theorem 1, GGP and OGGP stay below
/// `2 × optimal` (though the *ratio to the bound* can exceed 2 only when the
/// bound is loose — the paper's simulations never observed more than 1.8).
pub fn lower_bound(inst: &Instance) -> Weight {
    min_transmission(inst) + inst.beta * min_steps(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::Graph;

    #[test]
    fn empty_instance_zero_bound() {
        let inst = Instance::new(Graph::new(2, 2), 3, 5);
        assert_eq!(lower_bound(&inst), 0);
        assert_eq!(min_steps(&inst), 0);
    }

    #[test]
    fn single_edge_bound_is_exact() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 10);
        let inst = Instance::new(g, 1, 3);
        // One step of duration 10 plus one setup: optimum is 13.
        assert_eq!(lower_bound(&inst), 13);
    }

    #[test]
    fn degree_drives_step_count() {
        // Star with 4 edges out of left 0: Δ = 4 even though m/k = 2.
        let mut g = Graph::new(1, 4);
        for r in 0..4 {
            g.add_edge(0, r, 1);
        }
        let inst = Instance::new(g, 2, 1);
        assert_eq!(min_steps(&inst), 4);
        // W(G) = 4 (node 0 sends all four), P/k with k = 1 (clamped to left
        // side size 1!) is 4.
        assert_eq!(inst.effective_k(), 1);
        assert_eq!(min_transmission(&inst), 4);
        assert_eq!(lower_bound(&inst), 8);
    }

    #[test]
    fn volume_drives_transmission() {
        // 4x4, 16 unit edges, k = 2: P/k = 8 > W = 4.
        let mut g = Graph::new(4, 4);
        for l in 0..4 {
            for r in 0..4 {
                g.add_edge(l, r, 1);
            }
        }
        let inst = Instance::new(g, 2, 0);
        assert_eq!(min_transmission(&inst), 8);
        assert_eq!(min_steps(&inst), 8);
        assert_eq!(lower_bound(&inst), 8);
    }

    #[test]
    fn node_weight_drives_transmission() {
        // Heavy sender: W(G) = 100 dominates P/k = 34.
        let mut g = Graph::new(2, 3);
        g.add_edge(0, 0, 50);
        g.add_edge(0, 1, 50);
        g.add_edge(1, 2, 1);
        let inst = Instance::new(g, 3, 0);
        assert_eq!(inst.effective_k(), 2);
        assert_eq!(min_transmission(&inst), 100);
    }

    #[test]
    fn per_node_bound_dominated_by_full_bound() {
        use bipartite::generate::{random_graph, GraphParams};
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(44);
        let params = GraphParams {
            max_nodes_per_side: 10,
            max_edges: 50,
            weight_range: (1, 25),
        };
        for _ in 0..200 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g, k, rng.gen_range(0..5));
            assert!(per_node_bound(&inst) <= lower_bound(&inst));
        }
    }

    #[test]
    fn ceil_division_in_bounds() {
        // P = 5, k = 2 -> ceil = 3; m = 5, k = 2 -> ceil = 3 steps.
        let mut g = Graph::new(5, 5);
        for i in 0..5 {
            g.add_edge(i, i, 1);
        }
        let inst = Instance::new(g, 2, 1);
        assert_eq!(min_transmission(&inst), 3);
        assert_eq!(min_steps(&inst), 3);
        assert_eq!(lower_bound(&inst), 6);
    }
}
