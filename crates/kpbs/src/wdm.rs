//! The WDM broadcast-network variant of the problem (related work [5, 24]
//! of the paper): receivers equal the number of simultaneous channels
//! (`k = n2`) and the tuning/setup delay of a step can be **overlapped**
//! with the previous step's communication.
//!
//! Under overlapped setups a step costs `max(β, W(M_i))` instead of
//! `β + W(M_i)` (the setup hides behind the transmission unless the step is
//! shorter than the setup itself), so the objective is
//! `Σ_i max(β, W(M_i))` plus one unhidden leading setup. Choi, Choi &
//! Azizoglu \[5\] prove plain list scheduling 2-approximate in this model.
//!
//! This module evaluates any [`Schedule`] under the overlapped objective and
//! provides the list-scheduling heuristic of \[5\] for comparison; the
//! `kpbs` peeling algorithms can be dropped into the WDM setting unchanged,
//! which is exactly the generality the paper's conclusion claims.

use crate::problem::Instance;
use crate::schedule::Schedule;
use bipartite::Weight;

/// Cost of `schedule` under the overlapped-setup (WDM) objective:
/// `β + Σ_i max(β, W(M_i))` — the first setup cannot hide behind anything.
pub fn overlapped_cost(schedule: &Schedule, beta: Weight) -> Weight {
    if schedule.steps.is_empty() {
        return 0;
    }
    beta + schedule
        .steps
        .iter()
        .map(|s| s.duration().max(beta))
        .sum::<Weight>()
}

/// Lower bound under the overlapped objective: the transmission bound still
/// applies, and each of the at least `max(⌈m/k⌉, Δ)` steps costs at least
/// `β` even when fully overlapped-from — plus the leading setup.
pub fn overlapped_lower_bound(inst: &Instance) -> Weight {
    if inst.graph.is_empty() {
        return 0;
    }
    let steps = crate::lower_bound::min_steps(inst);
    let transmission = crate::lower_bound::min_transmission(inst);
    inst.beta + transmission.max(inst.beta * steps)
}

/// The list-scheduling heuristic of \[5\] adapted to our representation:
/// repeatedly take a heaviest-first maximal matching capped at `k` edges
/// and transmit every selected message *entirely* (no preemption — in the
/// WDM setting retuning mid-message is pointless since setups overlap).
pub fn wdm_list_schedule(inst: &Instance) -> Schedule {
    // Identical mechanics to the non-preemptive baseline; β is carried on
    // the schedule for the caller, but costing should go through
    // `overlapped_cost`.
    crate::baselines::nonpreemptive_list(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oggp::oggp;
    use bipartite::generate::{random_graph, GraphParams};
    use bipartite::Graph;
    use rand::{rngs::SmallRng, SeedableRng};

    fn wdm_instance(rng: &mut SmallRng) -> Instance {
        // WDM regime: k = n2 (one tunable channel per receiver).
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 30,
            weight_range: (1, 15),
        };
        let g = random_graph(rng, &params);
        let k = g.right_count().min(g.left_count());
        Instance::new(g, k, 3)
    }

    #[test]
    fn empty_schedule_costs_nothing() {
        assert_eq!(overlapped_cost(&Schedule::new(5), 5), 0);
    }

    #[test]
    fn overlapped_cost_hides_setups_behind_long_steps() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 10);
        g.add_edge(1, 1, 10);
        let inst = Instance::new(g, 2, 3);
        let s = oggp(&inst);
        // One 10-tick step: synchronous cost 13, overlapped 3 + 10.
        assert_eq!(s.cost(), 13);
        assert_eq!(overlapped_cost(&s, 3), 13);
        // Short steps pay β instead of their duration.
        let mut g2 = Graph::new(1, 1);
        g2.add_edge(0, 0, 1);
        let inst2 = Instance::new(g2, 1, 3);
        let s2 = oggp(&inst2);
        assert_eq!(overlapped_cost(&s2, 3), 3 + 3);
    }

    #[test]
    fn overlapped_never_exceeds_synchronous() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let inst = wdm_instance(&mut rng);
            let s = oggp(&inst);
            assert!(
                overlapped_cost(&s, inst.beta) <= s.cost() + inst.beta,
                "overlap can save at most all but one setup"
            );
            assert!(overlapped_cost(&s, inst.beta) >= overlapped_lower_bound(&inst));
        }
    }

    #[test]
    fn list_schedule_two_approximate_in_wdm_model() {
        // The [5] guarantee: list scheduling within 2x of the overlapped
        // bound when k = n2.
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let inst = wdm_instance(&mut rng);
            let s = wdm_list_schedule(&inst);
            s.validate(&inst).unwrap();
            let cost = overlapped_cost(&s, inst.beta);
            let lb = overlapped_lower_bound(&inst);
            assert!(
                cost <= 2 * lb + 2 * inst.beta,
                "list {cost} vs bound {lb} (beta {})",
                inst.beta
            );
        }
    }

    #[test]
    fn peeling_competitive_with_list_in_wdm_model() {
        // Aggregate comparison: OGGP evaluated under the WDM objective
        // should not be grossly worse than the native list heuristic.
        let mut rng = SmallRng::seed_from_u64(5);
        let (mut total_oggp, mut total_list) = (0u64, 0u64);
        for _ in 0..50 {
            let inst = wdm_instance(&mut rng);
            total_oggp += overlapped_cost(&oggp(&inst), inst.beta);
            total_list += overlapped_cost(&wdm_list_schedule(&inst), inst.beta);
        }
        assert!(
            (total_oggp as f64) < 1.5 * total_list as f64,
            "OGGP {total_oggp} vs list {total_list}"
        );
    }
}
