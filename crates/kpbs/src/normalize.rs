//! β-normalisation (GGP step 1, Section 4.2.1).
//!
//! GGP refuses to split communications shorter than β, by expressing all
//! weights in units of β rounded *up*: `w' = ⌈w/β⌉`. The peeling then works
//! on integers ≥ 1, so no step is ever shorter than β in real time — setup
//! costs can never dominate the work they enable.
//!
//! After scheduling, [`denormalize`] maps the normalised schedule back to
//! real ticks. Each edge transmits `min(quantum·β, real remaining)` per step,
//! so the real cost is never larger than the normalised cost times β.

use crate::problem::Instance;
use crate::schedule::{Schedule, Step, Transfer};
use bipartite::{Graph, Weight};

/// The normalised view of an instance: same graph structure with weights
/// `⌈w/unit⌉`, plus the unit to map back. `unit = β` when `β > 0`, else 1
/// (no normalisation — setups are free so arbitrary preemption is safe).
#[derive(Debug, Clone)]
pub struct Normalized {
    /// Graph with normalised weights. Edge ids coincide with the original's.
    pub graph: Graph,
    /// Number of real ticks per normalised weight unit.
    pub unit: Weight,
}

/// Normalises an instance's graph.
pub fn normalize(inst: &Instance) -> Normalized {
    let unit = if inst.beta > 0 { inst.beta } else { 1 };
    let mut graph = Graph::new(inst.graph.left_count(), inst.graph.right_count());
    // Preserve edge ids: iterate ids in order, reproducing tombstones.
    let max_id = inst
        .graph
        .edge_ids()
        .map(|e| e.index() + 1)
        .max()
        .unwrap_or(0);
    for idx in 0..max_id {
        let e = bipartite::EdgeId(idx as u32);
        if inst.graph.is_alive(e) {
            let w = inst.graph.weight(e).div_ceil(unit);
            let id = graph.add_edge(inst.graph.left_of(e), inst.graph.right_of(e), w.max(1));
            debug_assert_eq!(id, e);
        } else {
            // Keep id numbering aligned with the original graph.
            let id = graph.add_edge(0, 0, 1);
            graph.remove_edge(id);
        }
    }
    Normalized { graph, unit }
}

/// Maps a schedule over normalised weights back to real ticks.
///
/// Walks the steps in order, tracking each edge's real remaining duration;
/// every normalised quantum `q` becomes `min(q·unit, remaining)` real ticks.
/// Steps whose every slice collapses to zero are dropped (cannot happen for
/// schedules produced by the peeling algorithms, but tolerated here).
pub fn denormalize(normalised: &Schedule, inst: &Instance) -> Schedule {
    let unit = if inst.beta > 0 { inst.beta } else { 1 };
    if unit == 1 {
        // Weights were not scaled; only restore the instance's real β
        // (the normalised schedule accounts setups in units of β).
        let mut out = normalised.clone();
        out.beta = inst.beta;
        return out;
    }
    let max_id = inst
        .graph
        .edge_ids()
        .map(|e| e.index() + 1)
        .max()
        .unwrap_or(0);
    let mut remaining: Vec<Weight> = vec![0; max_id];
    for e in inst.graph.edge_ids() {
        remaining[e.index()] = inst.graph.weight(e);
    }

    let mut out = Schedule::new(inst.beta);
    for step in &normalised.steps {
        let mut real = Step::default();
        for t in &step.transfers {
            let rem = &mut remaining[t.edge.index()];
            let amount = (t.amount * unit).min(*rem);
            if amount > 0 {
                *rem -= amount;
                real.transfers.push(Transfer {
                    edge: t.edge,
                    amount,
                });
            }
        }
        if !real.transfers.is_empty() {
            out.steps.push(real);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::EdgeId;

    fn instance(weights: &[Weight], beta: Weight) -> Instance {
        let n = weights.len();
        let mut g = Graph::new(n, n);
        for (i, &w) in weights.iter().enumerate() {
            g.add_edge(i, i, w);
        }
        Instance::new(g, n.max(1), beta)
    }

    #[test]
    fn beta_zero_is_identity() {
        let inst = instance(&[5, 7], 0);
        let n = normalize(&inst);
        assert_eq!(n.unit, 1);
        assert_eq!(n.graph.weight(EdgeId(0)), 5);
        assert_eq!(n.graph.weight(EdgeId(1)), 7);
    }

    #[test]
    fn rounding_up() {
        let inst = instance(&[5, 6, 1], 3);
        let n = normalize(&inst);
        assert_eq!(n.unit, 3);
        assert_eq!(n.graph.weight(EdgeId(0)), 2); // ceil(5/3)
        assert_eq!(n.graph.weight(EdgeId(1)), 2); // ceil(6/3)
        assert_eq!(n.graph.weight(EdgeId(2)), 1); // ceil(1/3), never 0
    }

    #[test]
    fn edge_ids_preserved_with_tombstones() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 0, 4);
        let e1 = g.add_edge(1, 1, 9);
        g.remove_edge(e0);
        let inst = Instance::new(g, 2, 2);
        let n = normalize(&inst);
        assert!(!n.graph.is_alive(e0));
        assert_eq!(n.graph.weight(e1), 5);
        assert_eq!(n.graph.edge_count(), 1);
    }

    #[test]
    fn denormalize_caps_at_real_remaining() {
        // Edge weighs 5 real ticks, β = 2 → normalised weight 3.
        let inst = instance(&[5], 2);
        let norm_schedule = Schedule {
            steps: vec![
                Step {
                    transfers: vec![Transfer {
                        edge: EdgeId(0),
                        amount: 2,
                    }],
                },
                Step {
                    transfers: vec![Transfer {
                        edge: EdgeId(0),
                        amount: 1,
                    }],
                },
            ],
            beta: 1,
        };
        let real = denormalize(&norm_schedule, &inst);
        // First step: min(2·2, 5) = 4 ticks; second: min(1·2, 1) = 1 tick.
        assert_eq!(real.steps[0].transfers[0].amount, 4);
        assert_eq!(real.steps[1].transfers[0].amount, 1);
        assert!(real.validate(&inst).is_ok());
    }

    #[test]
    fn denormalized_cost_at_most_normalized_times_unit() {
        let inst = instance(&[5, 7, 2], 3);
        // Normalised weights: 2, 3, 1. One big parallel step then leftovers.
        let norm = Schedule {
            steps: vec![
                Step {
                    transfers: vec![
                        Transfer {
                            edge: EdgeId(0),
                            amount: 2,
                        },
                        Transfer {
                            edge: EdgeId(1),
                            amount: 2,
                        },
                        Transfer {
                            edge: EdgeId(2),
                            amount: 1,
                        },
                    ],
                },
                Step {
                    transfers: vec![Transfer {
                        edge: EdgeId(1),
                        amount: 1,
                    }],
                },
            ],
            beta: 1,
        };
        let real = denormalize(&norm, &inst);
        assert!(real.validate(&inst).is_ok());
        // Normalised cost in units of β: (1+2) + (1+1) = 5 → ≤ 15 real.
        assert!(real.cost() <= 5 * 3);
    }
}
