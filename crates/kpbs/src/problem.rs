//! The K-PBS problem instance.

use bipartite::{Graph, Weight};

/// A K-PBS instance: the communication graph `G`, the maximum number of
/// simultaneous communications `k`, and the per-step setup delay `β`
/// (Section 2.2 of the paper). All durations are integer ticks.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Weighted bipartite communication graph; edge weights are transfer
    /// durations in ticks.
    pub graph: Graph,
    /// Maximum number of simultaneous communications per step. Values larger
    /// than what the 1-port model permits are clamped by
    /// [`Instance::effective_k`].
    pub k: usize,
    /// Setup delay charged once per communication step, in ticks.
    pub beta: Weight,
}

impl Instance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`: at least one communication per step is required
    /// for any non-empty redistribution to terminate.
    pub fn new(graph: Graph, k: usize, beta: Weight) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Instance { graph, k, beta }
    }

    /// The `k` actually usable by a schedule: the 1-port model caps
    /// parallelism at `min(|V1|, |V2|)` regardless of the backbone
    /// (Section 2.4: when `k = min(n1, n2)` the backbone stops being a
    /// bottleneck).
    pub fn effective_k(&self) -> usize {
        self.k
            .min(self.graph.left_count().max(1))
            .min(self.graph.right_count().max(1))
            .max(1)
    }

    /// Total communication volume `P(G)` in ticks.
    pub fn total_weight(&self) -> Weight {
        bipartite::properties::total_weight(&self.graph)
    }

    /// True when there is nothing to transfer.
    pub fn is_trivial(&self) -> bool {
        self.graph.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_k_clamps_to_sides() {
        let mut g = Graph::new(3, 5);
        g.add_edge(0, 0, 1);
        let inst = Instance::new(g, 100, 1);
        assert_eq!(inst.effective_k(), 3);
    }

    #[test]
    fn effective_k_keeps_small_k() {
        let mut g = Graph::new(10, 10);
        g.add_edge(0, 0, 1);
        let inst = Instance::new(g, 4, 0);
        assert_eq!(inst.effective_k(), 4);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        Instance::new(Graph::new(1, 1), 0, 1);
    }

    #[test]
    fn trivial_instance() {
        let inst = Instance::new(Graph::new(2, 2), 1, 1);
        assert!(inst.is_trivial());
        assert_eq!(inst.total_weight(), 0);
        // Even with zero-sized sides, effective_k stays >= 1.
        let inst2 = Instance::new(Graph::new(0, 0), 3, 1);
        assert_eq!(inst2.effective_k(), 1);
    }
}
