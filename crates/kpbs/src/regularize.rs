//! Building weight-regular graphs (Section 4.2.2 of the paper).
//!
//! Any bipartite graph `G` is embedded into a weight-regular graph `J` such
//! that every perfect matching of `J` contains at most `k` edges of `G`.
//! Two kinds of synthetic material are added:
//!
//! * **filler** edges, each joining a fresh left node to a fresh right node,
//!   padding the total weight `P` so that `R = P'/k` is an integer with
//!   `R ≥ W(G)`. All filler edges weigh `W(G)` except possibly the last
//!   (the remainder). This is "case 2" of the paper.
//! * **pad** edges, connecting original (or filler) nodes to fresh *pad*
//!   nodes on the opposite side, raising every node's weight `w(s)` to
//!   exactly `R`. `|V2'|−k` pad nodes join the left side and `|V1'|−k` the
//!   right side; pad edges never join two pad nodes. This is "case 1", and
//!   Proposition 1 then guarantees every perfect matching of `J` has exactly
//!   `k` edges of the filler-augmented graph, hence at most `k` real edges.

use bipartite::{properties, EdgeId, Graph, Weight};
use telemetry::counters::{self, Counter};

/// Where an edge of the regularised graph came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A real communication; payload is the edge id in the source graph.
    Real(EdgeId),
    /// Weight filler between two fresh nodes (case 2).
    Filler,
    /// Padding from an original/filler node to a pad node (case 1).
    Pad,
}

/// A weight-regular embedding of a source graph.
#[derive(Debug, Clone)]
pub struct Regularized {
    /// The weight-regular graph `J`. Its first edges mirror the live edges
    /// of the source graph in id order.
    pub graph: Graph,
    /// Kind of each edge of `graph`, indexed by edge id.
    pub kinds: Vec<EdgeKind>,
    /// The parallelism bound the construction was built for.
    pub k: usize,
    /// The common node weight `R = P(J)/k · k / |V|`… concretely, every node
    /// of `graph` has `w(s) == regular_weight`.
    pub regular_weight: Weight,
}

impl Regularized {
    /// Kind of edge `e` of the regularised graph.
    pub fn kind(&self, e: EdgeId) -> EdgeKind {
        self.kinds[e.index()]
    }

    /// The original edge behind `e`, if `e` is real.
    pub fn origin(&self, e: EdgeId) -> Option<EdgeId> {
        match self.kinds[e.index()] {
            EdgeKind::Real(o) => Some(o),
            _ => None,
        }
    }
}

/// Embeds `src` (all weights ≥ 1) into a weight-regular graph for
/// parallelism `k ≥ 1`, per Section 4.2.2.
///
/// # Panics
///
/// Panics if `k == 0` or `k` exceeds either side of `src` (callers clamp via
/// [`crate::Instance::effective_k`]).
pub fn regularize(src: &Graph, k: usize) -> Regularized {
    assert!(k >= 1, "k must be at least 1");
    if src.is_empty() {
        return Regularized {
            graph: Graph::new(0, 0),
            kinds: Vec::new(),
            k,
            regular_weight: 0,
        };
    }
    assert!(
        k <= src.left_count() && k <= src.right_count(),
        "k = {k} exceeds a side of the graph ({} x {})",
        src.left_count(),
        src.right_count()
    );

    let w_max = properties::max_node_weight(src);
    let p = properties::total_weight(src);
    let kw = k as Weight;

    // --- Case 2: pad total weight so R = P'/k is integral and >= W(G). ---
    // Checked arithmetic: k·W and k·⌈P/k⌉ are the only products that can
    // overflow for adversarial tick scales.
    let (target_p, r) = if p < kw.checked_mul(w_max).expect("k * W(G) overflows u64 ticks") {
        (kw * w_max, w_max)
    } else {
        let r = p.div_ceil(kw);
        (
            kw.checked_mul(r)
                .expect("k * ceil(P/k) overflows u64 ticks"),
            r,
        )
    };
    let mut filler_total = target_p - p;

    let mut graph = Graph::new(src.left_count(), src.right_count());
    let mut kinds: Vec<EdgeKind> = Vec::with_capacity(src.edge_count());
    for (id, l, rr, w) in src.edges() {
        graph.add_edge(l, rr, w);
        kinds.push(EdgeKind::Real(id));
    }
    while filler_total > 0 {
        counters::incr(Counter::RegularizeFillerEdges);
        let chunk = filler_total.min(w_max);
        let l = graph.add_left_node();
        let rr = graph.add_right_node();
        graph.add_edge(l, rr, chunk);
        kinds.push(EdgeKind::Filler);
        filler_total -= chunk;
    }

    // --- Case 1: raise every node's weight to exactly R with pad nodes. ---
    let n1 = graph.left_count();
    let n2 = graph.right_count();
    // Deficits of existing nodes (computed before pad nodes are created).
    let left_deficit: Vec<Weight> = (0..n1).map(|l| r - graph.node_weight_left(l)).collect();
    let right_deficit: Vec<Weight> = (0..n2).map(|j| r - graph.node_weight_right(j)).collect();

    // n2 - k pad nodes join the left side, absorbing the right deficits;
    // n1 - k pad nodes join the right side, absorbing the left deficits.
    pour(
        &mut graph,
        &mut kinds,
        left_deficit,
        n1 - k,
        r,
        PourSide::DeficitOnLeft,
    );
    pour(
        &mut graph,
        &mut kinds,
        right_deficit,
        n2 - k,
        r,
        PourSide::DeficitOnRight,
    );

    debug_assert_eq!(properties::regular_weight(&graph), Some(r));
    debug_assert_eq!(graph.left_count(), graph.right_count());
    Regularized {
        graph,
        kinds,
        k,
        regular_weight: r,
    }
}

enum PourSide {
    /// Deficit sits on left nodes; pad nodes are appended to the right side.
    DeficitOnLeft,
    /// Deficit sits on right nodes; pad nodes are appended to the left side.
    DeficitOnRight,
}

/// First-fit pouring: route each node's deficit into pad nodes of capacity
/// `r` on the opposite side, creating one edge per (node, pad) contact.
fn pour(
    graph: &mut Graph,
    kinds: &mut Vec<EdgeKind>,
    deficits: Vec<Weight>,
    pad_count: usize,
    r: Weight,
    side: PourSide,
) {
    let total: Weight = deficits.iter().sum();
    debug_assert_eq!(
        total,
        pad_count as Weight * r,
        "deficits must exactly fill the pad nodes"
    );
    if pad_count == 0 {
        return;
    }
    let mut pads: Vec<usize> = Vec::with_capacity(pad_count);
    for _ in 0..pad_count {
        pads.push(match side {
            PourSide::DeficitOnLeft => graph.add_right_node(),
            PourSide::DeficitOnRight => graph.add_left_node(),
        });
    }
    let mut pad_idx = 0;
    let mut pad_room = r;
    for (node, mut need) in deficits.into_iter().enumerate() {
        while need > 0 {
            if pad_room == 0 {
                pad_idx += 1;
                pad_room = r;
            }
            counters::incr(Counter::RegularizePadEdges);
            let amount = need.min(pad_room);
            match side {
                PourSide::DeficitOnLeft => graph.add_edge(node, pads[pad_idx], amount),
                PourSide::DeficitOnRight => graph.add_edge(pads[pad_idx], node, amount),
            };
            kinds.push(EdgeKind::Pad);
            need -= amount;
            pad_room -= amount;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::hopcroft_karp;

    fn check_invariants(src: &Graph, k: usize, reg: &Regularized) {
        // Weight-regular with equal sides.
        assert_eq!(
            properties::regular_weight(&reg.graph),
            Some(reg.regular_weight)
        );
        assert_eq!(reg.graph.left_count(), reg.graph.right_count());
        // Proposition 1: a perfect matching exists and carries at most k
        // real edges (exactly k edges of the filler-augmented graph).
        let m = hopcroft_karp::maximum_matching(&reg.graph);
        assert!(m.is_perfect(&reg.graph), "perfect matching must exist");
        let real = m
            .edges()
            .iter()
            .filter(|&&e| matches!(reg.kind(e), EdgeKind::Real(_)))
            .count();
        let non_pad = m
            .edges()
            .iter()
            .filter(|&&e| !matches!(reg.kind(e), EdgeKind::Pad))
            .count();
        assert_eq!(non_pad, k, "exactly k non-pad edges per perfect matching");
        assert!(real <= k);
        // Real edges mirror the source.
        for e in reg.graph.edge_ids() {
            if let Some(o) = reg.origin(e) {
                assert_eq!(reg.graph.weight(e), src.weight(o));
                assert_eq!(reg.graph.left_of(e), src.left_of(o));
                assert_eq!(reg.graph.right_of(e), src.right_of(o));
            }
        }
        // R >= W(G): no original node exceeds the regular weight.
        assert!(reg.regular_weight >= properties::max_node_weight(src));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, 3);
        let reg = regularize(&g, 2);
        assert_eq!(reg.graph.node_count(), 0);
        assert_eq!(reg.regular_weight, 0);
    }

    #[test]
    fn already_regular_k_equals_n() {
        // 2x2 regular graph with node weight 5, k = 2: P = 10 = k·W, no
        // filler, no pads.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 0, 2);
        g.add_edge(1, 1, 3);
        let reg = regularize(&g, 2);
        assert_eq!(reg.graph.node_count(), 4);
        assert_eq!(reg.graph.edge_count(), 4);
        assert_eq!(reg.regular_weight, 5);
        check_invariants(&g, 2, &reg);
    }

    #[test]
    fn heavy_node_forces_filler() {
        // W = 10 > P/k = 11/2 -> filler up to P' = 20, R = 10.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 10);
        g.add_edge(1, 1, 1);
        let reg = regularize(&g, 2);
        assert_eq!(reg.regular_weight, 10);
        assert_eq!(properties::total_weight(&reg.graph) % 10, 0);
        check_invariants(&g, 2, &reg);
    }

    #[test]
    fn indivisible_total_forces_remainder_filler() {
        // P = 5, k = 2, W = 2 <= ceil(P/k): filler of 1 to reach P' = 6.
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 2);
        g.add_edge(1, 1, 2);
        g.add_edge(2, 2, 1);
        let reg = regularize(&g, 2);
        assert_eq!(reg.regular_weight, 3);
        check_invariants(&g, 2, &reg);
    }

    #[test]
    fn filler_chunks_never_exceed_w() {
        // Large deficit relative to W: many filler edges, each <= W(G).
        let mut g = Graph::new(4, 4);
        g.add_edge(0, 0, 3);
        g.add_edge(1, 1, 3);
        g.add_edge(2, 2, 3);
        g.add_edge(3, 3, 1);
        // P = 10, k = 4, W = 3: kW = 12 > P -> filler 2 (single chunk <= 3).
        let reg = regularize(&g, 4);
        let w = properties::max_node_weight(&g);
        for e in reg.graph.edge_ids() {
            if matches!(reg.kind(e), EdgeKind::Filler) {
                assert!(reg.graph.weight(e) <= w);
            }
        }
        check_invariants(&g, 4, &reg);
    }

    #[test]
    fn k_one_sequentialises() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 4);
        g.add_edge(1, 1, 6);
        let reg = regularize(&g, 1);
        // R = P = 10 with k = 1.
        assert_eq!(reg.regular_weight, 10);
        check_invariants(&g, 1, &reg);
    }

    #[test]
    fn pad_edges_never_join_two_pads() {
        let mut g = Graph::new(3, 2);
        g.add_edge(0, 0, 5);
        g.add_edge(1, 1, 2);
        g.add_edge(2, 0, 1);
        let reg = regularize(&g, 2);
        let orig_left = 3 + reg
            .kinds
            .iter()
            .filter(|k| matches!(k, EdgeKind::Filler))
            .count();
        // Every pad edge touches at most one node beyond the original+filler
        // range on each side.
        for e in reg.graph.edge_ids() {
            if matches!(reg.kind(e), EdgeKind::Pad) {
                let l_is_pad = reg.graph.left_of(e) >= orig_left;
                let r_is_pad = reg.graph.right_of(e)
                    >= 2 + reg
                        .kinds
                        .iter()
                        .filter(|k| matches!(k, EdgeKind::Filler))
                        .count();
                assert!(!(l_is_pad && r_is_pad), "pad edge joins two pad nodes");
            }
        }
        check_invariants(&g, 2, &reg);
    }

    #[test]
    fn random_graphs_invariants() {
        use bipartite::generate::{random_graph, GraphParams};
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 30,
            weight_range: (1, 15),
        };
        for _ in 0..300 {
            let g = random_graph(&mut rng, &params);
            let kmax = g.left_count().min(g.right_count());
            let k = rng.gen_range(1..=kmax);
            let reg = regularize(&g, k);
            check_invariants(&g, k, &reg);
        }
    }
}
