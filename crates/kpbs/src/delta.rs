//! Online delta-planning: repair a committed schedule under sparse edits.
//!
//! The batch planners ([`mod@crate::ggp`], [`mod@crate::oggp`]) answer one matrix;
//! a control plane for continuous traffic faces a *sequence* of closely
//! related matrices — a cell grows, a message is cancelled, a node joins
//! or drops. [`DeltaPlanner`] owns a live [`Instance`] plus its committed
//! [`Schedule`] and patches both in place, climbing a three-level repair
//! ladder instead of re-planning from scratch:
//!
//! * **Level 0 — repair** ([`RepairLevel::Repair`]): weight decreases trim
//!   transfer amounts from the tail of the schedule (cost can only drop);
//!   increases are absorbed cost-free into existing slack — a transfer on
//!   the same cell is raised up to its step's duration, or a new transfer
//!   is inserted into a step where both ports are idle and the backbone
//!   still has width.
//! * **Level 1 — bounded re-peel** ([`RepairLevel::RePeel`]): increases
//!   that do not fit in slack form a residual instance over the same node
//!   sets, planned by the warm incremental engine (the
//!   [`IncrementalMaxMin`] strategy keeps its scratch allocations across
//!   replans) and appended as extra steps.
//! * **Level 2 — cold fallback** ([`RepairLevel::Cold`]): when the
//!   residual exceeds the re-peel budget, or a patched schedule drifts
//!   past [`REPLAN_COST_FACTOR`] × the lower bound, the planner rebuilds
//!   the instance canonically (row-major, like
//!   [`TrafficMatrix::to_instance`](crate::traffic::TrafficMatrix)) and
//!   re-plans with OGGP — so a cold fallback is byte-identical to what a
//!   stateless server would have produced for the post-delta matrix.
//!
//! Every replan, at every level, re-establishes the subsystem invariant
//! before returning: the patched schedule passes [`crate::validate`] and
//! delivers *exactly* the post-delta matrix (checked through
//! [`crate::residual`] in both directions). Violations panic — a schedule
//! that silently under- or over-delivers must never reach a caller.

use crate::ggp::schedule_with_mut;
use crate::lower_bound::lower_bound;
use crate::oggp::oggp;
use crate::problem::Instance;
use crate::residual::residual_matrix;
use crate::schedule::{Schedule, Step, Transfer};
use crate::traffic::TrafficMatrix;
use crate::validate::validate;
use crate::wrgp::IncrementalMaxMin;
use bipartite::{EdgeId, Graph, Weight};
use std::collections::{HashMap, HashSet};
use telemetry::counters::{self, Counter};

/// A patched schedule may cost at most this factor times the post-delta
/// lower bound before the planner abandons repair and falls back to a cold
/// plan. OGGP itself is a 2-approximation, so a healthy repaired schedule
/// sits well under the ceiling; repeated trims that strand tiny amounts
/// across many β-paying steps are what this catches.
pub const REPLAN_COST_FACTOR: u64 = 3;

/// Default bound on the number of residual cells level 1 will re-peel;
/// larger edit batches go straight to a cold plan.
pub const DEFAULT_REPEEL_BUDGET: usize = 64;

/// One sparse edit to the live communication matrix. Edits are applied in
/// order, so a [`MatrixDelta::GrowNodes`] may be followed in the same batch
/// by [`MatrixDelta::Set`] entries addressing the new nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixDelta {
    /// Sets cell `(sender, receiver)` to `ticks` (zero clears the cell).
    Set {
        /// Left-side (sender) node index.
        sender: usize,
        /// Right-side (receiver) node index.
        receiver: usize,
        /// New weight of the cell in ticks; `0` removes the message.
        ticks: Weight,
    },
    /// Appends `senders` left-side and `receivers` right-side nodes.
    GrowNodes {
        /// Number of sender nodes to append.
        senders: usize,
        /// Number of receiver nodes to append.
        receivers: usize,
    },
    /// Clears every cell of sender `0`'s row `(i, *)` — the node left the
    /// redistribution; its index stays valid (and re-usable) afterwards.
    DropSender(
        /// Left-side node index whose outgoing messages are cancelled.
        usize,
    ),
    /// Clears every cell of the receiver column `(*, j)`.
    DropReceiver(
        /// Right-side node index whose incoming messages are cancelled.
        usize,
    ),
}

/// Which rung of the repair ladder served a [`DeltaPlanner::replan`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairLevel {
    /// Absorbed entirely by in-place trims and slack insertions.
    Repair,
    /// Needed a bounded re-peel of the residual increase instance.
    RePeel,
    /// Fell back to a full cold plan of the post-delta instance.
    Cold,
}

impl RepairLevel {
    /// Stable lower-case label (wire frames, logs, JSON).
    pub fn label(self) -> &'static str {
        match self {
            RepairLevel::Repair => "repair",
            RepairLevel::RePeel => "repeel",
            RepairLevel::Cold => "cold",
        }
    }
}

/// What a [`DeltaPlanner::replan`] call did and what it left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplanOutcome {
    /// The repair-ladder rung that produced the committed schedule.
    pub level: RepairLevel,
    /// Monotone per-planner generation, bumped once per replan.
    pub generation: u64,
    /// Cost `Σ (β + duration)` of the committed post-delta schedule.
    pub cost: u64,
    /// Lower bound of the post-delta instance.
    pub lower_bound: u64,
}

/// A stateful planner for one live redistribution: the current instance,
/// its committed schedule, and the warm matching engine that makes
/// incremental repair cheap. See the module docs for the repair ladder.
#[derive(Debug)]
pub struct DeltaPlanner {
    inst: Instance,
    schedule: Schedule,
    strategy: IncrementalMaxMin,
    generation: u64,
    repeel_budget: usize,
}

impl DeltaPlanner {
    /// Opens a planning session: cold-plans `inst` with OGGP (warming the
    /// incremental engine in the process) and commits the result.
    ///
    /// # Panics
    ///
    /// Panics if `inst.graph` carries parallel edges between the same cell
    /// — the planner maintains a dense-matrix view where each `(sender,
    /// receiver)` pair has at most one live edge. Instances built from a
    /// traffic matrix (the serving path) always satisfy this.
    pub fn new(inst: Instance) -> DeltaPlanner {
        Self::with_repeel_budget(inst, DEFAULT_REPEEL_BUDGET)
    }

    /// [`DeltaPlanner::new`] with an explicit level-1 re-peel budget:
    /// residuals of more than `repeel_budget` cells go straight to a cold
    /// plan.
    pub fn with_repeel_budget(inst: Instance, repeel_budget: usize) -> DeltaPlanner {
        let mut seen = HashSet::new();
        for (_, l, r, _) in inst.graph.edges() {
            assert!(
                seen.insert((l, r)),
                "DeltaPlanner requires at most one edge per cell, found a parallel edge at ({l}, {r})"
            );
        }
        let mut strategy = IncrementalMaxMin::new();
        let schedule = schedule_with_mut(&inst, &mut strategy);
        counters::incr(Counter::DeltaSessionsOpened);
        DeltaPlanner {
            inst,
            schedule,
            strategy,
            generation: 0,
            repeel_budget,
        }
    }

    /// The live post-delta instance.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The committed schedule delivering exactly the current instance.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Replans performed so far (0 for a freshly opened session).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current weight of cell `(sender, receiver)` in ticks.
    pub fn cell(&self, sender: usize, receiver: usize) -> Weight {
        self.inst
            .graph
            .find_edge(sender, receiver)
            .map_or(0, |e| self.inst.graph.weight(e))
    }

    /// The current communication matrix as a dense [`TrafficMatrix`]
    /// (cells in ticks) — the post-delta target every committed schedule
    /// delivers exactly.
    pub fn target_matrix(&self) -> TrafficMatrix {
        let mut t =
            TrafficMatrix::zeros(self.inst.graph.left_count(), self.inst.graph.right_count());
        for (_, l, r, w) in self.inst.graph.edges() {
            t.set(l, r, w);
        }
        t
    }

    /// What the committed schedule actually delivers, per cell, in ticks.
    pub fn delivered_matrix(&self) -> TrafficMatrix {
        let g = &self.inst.graph;
        let mut t = TrafficMatrix::zeros(g.left_count(), g.right_count());
        for step in &self.schedule.steps {
            for tr in &step.transfers {
                let (l, r) = (g.left_of(tr.edge), g.right_of(tr.edge));
                t.set(l, r, t.get(l, r) + tr.amount);
            }
        }
        t
    }

    /// Applies `deltas` in order and repairs the committed schedule,
    /// climbing the repair ladder as far as necessary. On return the
    /// committed schedule is feasible ([`crate::validate`]) and delivers
    /// exactly the post-delta matrix; both are re-checked on every call.
    ///
    /// # Panics
    ///
    /// Panics if a delta addresses a node out of range, or if the repaired
    /// schedule fails its feasibility/delivery re-check (an internal
    /// invariant violation, never expected).
    pub fn replan(&mut self, deltas: &[MatrixDelta]) -> ReplanOutcome {
        self.generation += 1;

        // Phase 1 — apply the edits to the graph, remembering each touched
        // cell's pre-batch weight so net changes survive multiple edits to
        // the same cell within one batch.
        let mut initial: HashMap<(usize, usize), Weight> = HashMap::new();
        for d in deltas {
            match *d {
                MatrixDelta::Set {
                    sender,
                    receiver,
                    ticks,
                } => {
                    assert!(
                        sender < self.inst.graph.left_count(),
                        "delta sender {sender} out of range"
                    );
                    assert!(
                        receiver < self.inst.graph.right_count(),
                        "delta receiver {receiver} out of range"
                    );
                    let old = self.cell(sender, receiver);
                    initial.entry((sender, receiver)).or_insert(old);
                    if ticks == old {
                        continue;
                    }
                    if ticks == 0 {
                        let e = self.inst.graph.find_edge(sender, receiver).unwrap();
                        self.inst.graph.remove_edge(e);
                    } else {
                        self.inst.graph.upsert_edge(sender, receiver, ticks);
                    }
                }
                MatrixDelta::GrowNodes { senders, receivers } => {
                    for _ in 0..senders {
                        self.inst.graph.add_left_node();
                    }
                    for _ in 0..receivers {
                        self.inst.graph.add_right_node();
                    }
                }
                MatrixDelta::DropSender(i) => {
                    assert!(
                        i < self.inst.graph.left_count(),
                        "dropped sender {i} out of range"
                    );
                    let row: Vec<(EdgeId, usize, Weight)> = self
                        .inst
                        .graph
                        .edges_of_left(i)
                        .map(|e| (e, self.inst.graph.right_of(e), self.inst.graph.weight(e)))
                        .collect();
                    for (e, j, w) in row {
                        initial.entry((i, j)).or_insert(w);
                        self.inst.graph.remove_edge(e);
                    }
                }
                MatrixDelta::DropReceiver(j) => {
                    assert!(
                        j < self.inst.graph.right_count(),
                        "dropped receiver {j} out of range"
                    );
                    let col: Vec<(EdgeId, usize, Weight)> = self
                        .inst
                        .graph
                        .edges_of_right(j)
                        .map(|e| (e, self.inst.graph.left_of(e), self.inst.graph.weight(e)))
                        .collect();
                    for (e, i, w) in col {
                        initial.entry((i, j)).or_insert(w);
                        self.inst.graph.remove_edge(e);
                    }
                }
            }
        }

        // Phase 2 — one pass over the schedule: collect the positions of
        // every transfer on a touched cell (for trims and raises), remap
        // edge ids where the batch removed and re-created a cell's edge,
        // and record per-step occupancy for the slack-insertion pass.
        // Durations are taken before any trimming, so repairs never raise
        // a step past its pre-replan length.
        let current: HashMap<(usize, usize), Option<EdgeId>> = initial
            .keys()
            .map(|&(i, j)| ((i, j), self.inst.graph.find_edge(i, j)))
            .collect();
        let mut positions: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
        let nsteps = self.schedule.steps.len();
        let mut duration: Vec<Weight> = Vec::with_capacity(nsteps);
        let mut width: Vec<usize> = Vec::with_capacity(nsteps);
        let mut used_left: Vec<HashSet<usize>> = Vec::with_capacity(nsteps);
        let mut used_right: Vec<HashSet<usize>> = Vec::with_capacity(nsteps);
        for (si, step) in self.schedule.steps.iter_mut().enumerate() {
            duration.push(step.duration());
            width.push(step.transfers.len());
            let mut ul = HashSet::with_capacity(step.transfers.len());
            let mut ur = HashSet::with_capacity(step.transfers.len());
            for (ti, tr) in step.transfers.iter_mut().enumerate() {
                let cell = (
                    self.inst.graph.left_of(tr.edge),
                    self.inst.graph.right_of(tr.edge),
                );
                ul.insert(cell.0);
                ur.insert(cell.1);
                if let Some(&cur) = current.get(&cell) {
                    if let Some(e) = cur {
                        tr.edge = e;
                    }
                    positions.entry(cell).or_default().push((si, ti));
                }
            }
            used_left.push(ul);
            used_right.push(ur);
        }

        // Phase 3 — level-0 repair. Decreases trim from the tail;
        // increases raise same-cell transfers up to the step duration,
        // then claim idle ports in under-width steps. Whatever remains
        // becomes the residual for level 1. Zeroed transfers are swept
        // only after all cells are processed so recorded positions stay
        // valid throughout.
        let k = self.inst.effective_k();
        let mut residual: Vec<(usize, usize, Weight)> = Vec::new();
        let mut cells: Vec<(usize, usize)> = initial.keys().copied().collect();
        cells.sort_unstable();
        for (i, j) in cells {
            let before = initial[&(i, j)];
            let after = self.cell(i, j);
            let spots = positions.get(&(i, j)).map_or(&[][..], Vec::as_slice);
            if after < before {
                let mut trim = before - after;
                for &(si, ti) in spots.iter().rev() {
                    if trim == 0 {
                        break;
                    }
                    let tr = &mut self.schedule.steps[si].transfers[ti];
                    let cut = trim.min(tr.amount);
                    tr.amount -= cut;
                    trim -= cut;
                }
                debug_assert_eq!(trim, 0, "schedule delivered less than the cell held");
            } else if after > before {
                let e = current[&(i, j)].expect("a grown cell has a live edge");
                let mut grow = after - before;
                for &(si, ti) in spots {
                    if grow == 0 {
                        break;
                    }
                    let tr = &mut self.schedule.steps[si].transfers[ti];
                    let slack = duration[si].saturating_sub(tr.amount);
                    let take = grow.min(slack);
                    tr.amount += take;
                    grow -= take;
                }
                for si in 0..nsteps {
                    if grow == 0 {
                        break;
                    }
                    if width[si] >= k || used_left[si].contains(&i) || used_right[si].contains(&j) {
                        continue;
                    }
                    let take = grow.min(duration[si]);
                    self.schedule.steps[si].transfers.push(Transfer {
                        edge: e,
                        amount: take,
                    });
                    width[si] += 1;
                    used_left[si].insert(i);
                    used_right[si].insert(j);
                    grow -= take;
                }
                if grow > 0 {
                    residual.push((i, j, grow));
                }
            }
        }

        // Phase 4 — climb the ladder if slack was not enough.
        let mut level = RepairLevel::Repair;
        if !residual.is_empty() {
            if residual.len() > self.repeel_budget {
                level = RepairLevel::Cold;
            } else {
                let mut res_g =
                    Graph::new(self.inst.graph.left_count(), self.inst.graph.right_count());
                let mut back: Vec<EdgeId> = Vec::with_capacity(residual.len());
                for &(i, j, w) in &residual {
                    res_g.add_edge(i, j, w);
                    back.push(self.inst.graph.find_edge(i, j).unwrap());
                }
                let res_inst = Instance::new(res_g, self.inst.k, self.inst.beta);
                let patch = schedule_with_mut(&res_inst, &mut self.strategy);
                for step in patch.steps {
                    self.schedule.steps.push(Step {
                        transfers: step
                            .transfers
                            .into_iter()
                            .map(|tr| Transfer {
                                edge: back[tr.edge.index()],
                                amount: tr.amount,
                            })
                            .collect(),
                    });
                }
                level = RepairLevel::RePeel;
            }
        }

        // Sweep transfers trimmed to zero and the steps they emptied.
        for step in &mut self.schedule.steps {
            step.transfers.retain(|tr| tr.amount > 0);
        }
        self.schedule
            .steps
            .retain(|step| !step.transfers.is_empty());

        // Phase 5 — cost ceiling, then the unconditional re-check. A cold
        // fallback is canonical, so it needs no ceiling of its own.
        let lb = lower_bound(&self.inst);
        if level != RepairLevel::Cold && self.schedule.cost() > REPLAN_COST_FACTOR * lb.max(1) {
            level = RepairLevel::Cold;
        }
        if level == RepairLevel::Cold {
            self.rebuild_cold();
        }
        counters::incr(match level {
            RepairLevel::Repair => Counter::DeltaRepairs,
            RepairLevel::RePeel => Counter::DeltaRePeels,
            RepairLevel::Cold => Counter::DeltaColdFallbacks,
        });
        self.assert_invariant();
        ReplanOutcome {
            level,
            generation: self.generation,
            cost: self.schedule.cost(),
            lower_bound: lb,
        }
    }

    /// Rebuilds the instance canonically (cells in row-major order, the
    /// same construction [`TrafficMatrix::to_instance`] uses) and re-plans
    /// from scratch with OGGP, so the committed schedule is byte-identical
    /// to a stateless cold plan of the post-delta matrix.
    fn rebuild_cold(&mut self) {
        let mut cells: Vec<(usize, usize, Weight)> = self
            .inst
            .graph
            .edges()
            .map(|(_, l, r, w)| (l, r, w))
            .collect();
        cells.sort_unstable();
        let mut g = Graph::new(self.inst.graph.left_count(), self.inst.graph.right_count());
        for &(l, r, w) in &cells {
            g.add_edge(l, r, w);
        }
        self.inst = Instance::new(g, self.inst.k, self.inst.beta);
        self.schedule = oggp(&self.inst);
    }

    /// The subsystem invariant: the committed schedule is feasible and
    /// delivers exactly the current matrix (residual zero both ways).
    fn assert_invariant(&self) {
        if let Err(e) = validate(&self.inst, &self.schedule) {
            panic!("delta replan produced an infeasible schedule: {e}");
        }
        let target = self.target_matrix();
        let delivered = self.delivered_matrix();
        let under = residual_matrix(&target, &delivered);
        let over = residual_matrix(&delivered, &target);
        assert!(
            under.total_bytes() == 0 && over.total_bytes() == 0,
            "delta replan delivery mismatch: {} ticks under, {} ticks over",
            under.total_bytes(),
            over.total_bytes()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_instance(n: usize, seed: u64, k: usize, beta: u64) -> Instance {
        let mut g = Graph::new(n, n);
        let mut state = seed | 1;
        for i in 0..n {
            for j in 0..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 10 < 4 {
                    g.add_edge(i, j, 1 + state % 100);
                }
            }
        }
        Instance::new(g, k, beta)
    }

    fn set(i: usize, j: usize, t: u64) -> MatrixDelta {
        MatrixDelta::Set {
            sender: i,
            receiver: j,
            ticks: t,
        }
    }

    #[test]
    fn open_commits_a_valid_cold_plan() {
        let inst = dense_instance(8, 0xfeed, 4, 2);
        let p = DeltaPlanner::new(inst);
        assert_eq!(p.generation(), 0);
        validate(p.instance(), p.schedule()).unwrap();
    }

    #[test]
    fn decrease_trims_without_replanning() {
        let inst = dense_instance(8, 0xfeed, 4, 2);
        let mut p = DeltaPlanner::new(inst);
        let (i, j, w) = p
            .instance()
            .graph
            .edges()
            .map(|(_, l, r, w)| (l, r, w))
            .next()
            .unwrap();
        let before = p.schedule().cost();
        let out = p.replan(&[set(i, j, w / 2 + 1)]);
        assert_eq!(out.level, RepairLevel::Repair);
        assert_eq!(out.generation, 1);
        assert!(out.cost <= before, "trims can only reduce cost");
        assert_eq!(p.cell(i, j), w / 2 + 1);
    }

    #[test]
    fn clear_and_drop_empty_the_schedule() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 5);
        g.add_edge(1, 1, 3);
        let mut p = DeltaPlanner::new(Instance::new(g, 2, 1));
        p.replan(&[set(0, 0, 0), MatrixDelta::DropSender(1)]);
        assert_eq!(p.schedule().num_steps(), 0);
        assert_eq!(p.target_matrix().total_bytes(), 0);
    }

    #[test]
    fn increase_absorbs_into_slack() {
        // Two parallel cells of different length: the shorter transfer has
        // slack up to the longer one's duration in the same step.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 10);
        g.add_edge(1, 1, 6);
        let mut p = DeltaPlanner::new(Instance::new(g, 2, 1));
        let before = p.schedule().cost();
        let out = p.replan(&[set(1, 1, 9)]);
        assert_eq!(out.level, RepairLevel::Repair);
        assert_eq!(out.cost, before, "slack absorption is cost-free");
    }

    #[test]
    fn new_cell_in_idle_ports_is_inserted() {
        // One step carries (0,0) and (1,1) at duration 10; receiver 2 is
        // idle and the step is under-width, so a joining sender's message
        // slots straight into the existing step.
        let mut g = Graph::new(2, 3);
        g.add_edge(0, 0, 10);
        g.add_edge(1, 1, 10);
        let mut p = DeltaPlanner::new(Instance::new(g, 3, 1));
        let before = p.schedule().cost();
        let out = p.replan(&[
            MatrixDelta::GrowNodes {
                senders: 1,
                receivers: 0,
            },
            set(2, 2, 8),
        ]);
        assert_eq!(out.level, RepairLevel::Repair);
        assert_eq!(out.cost, before, "idle-port insertion is cost-free");
    }

    #[test]
    fn unabsorbable_growth_repeels() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 4);
        g.add_edge(1, 1, 4);
        let mut p = DeltaPlanner::new(Instance::new(g, 2, 1));
        // Both ports of both steps busy; a big new cross cell cannot hide
        // in slack.
        let out = p.replan(&[set(0, 1, 400)]);
        assert!(matches!(out.level, RepairLevel::RePeel | RepairLevel::Cold));
        assert_eq!(p.cell(0, 1), 400);
    }

    #[test]
    fn over_budget_batches_go_cold() {
        let inst = dense_instance(8, 0xbeef, 4, 1);
        let mut p = DeltaPlanner::with_repeel_budget(inst, 0);
        let out = p.replan(&[set(0, 0, 100_000)]);
        assert_eq!(out.level, RepairLevel::Cold);
        assert_eq!(p.cell(0, 0), 100_000);
    }

    #[test]
    fn cold_fallback_matches_stateless_plan() {
        let inst = dense_instance(6, 0x5eed, 3, 1);
        let mut p = DeltaPlanner::with_repeel_budget(inst, 0);
        p.replan(&[set(1, 2, 77), set(3, 0, 0)]);
        // Reference: a stateless cold plan of the post-delta matrix.
        let t = p.target_matrix();
        let mut g = Graph::new(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                if t.get(i, j) > 0 {
                    g.add_edge(i, j, t.get(i, j));
                }
            }
        }
        let reference = oggp(&Instance::new(g, 3, 1));
        assert_eq!(p.schedule().steps, reference.steps);
    }

    #[test]
    fn generations_are_monotone_over_a_stream() {
        let inst = dense_instance(10, 0xabcd, 5, 2);
        let mut p = DeltaPlanner::new(inst);
        let mut state = 0x1234_5678_u64 | 1;
        for gen in 1..=20u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % 10) as usize;
            let j = ((state >> 8) % 10) as usize;
            let w = state % 200;
            let out = p.replan(&[set(i, j, w)]);
            assert_eq!(out.generation, gen);
            assert_eq!(p.cell(i, j), w);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_delta_panics() {
        let mut p = DeltaPlanner::new(dense_instance(4, 0x77, 2, 1));
        p.replan(&[set(9, 0, 5)]);
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn parallel_edges_rejected_at_open() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 2);
        g.add_edge(0, 0, 3);
        DeltaPlanner::new(Instance::new(g, 1, 1));
    }
}
