//! Barrier weakening — the post-processing the paper sketches in
//! Section 2.1 ("the barriers between each communication step can be
//! weakened with some post-processing").
//!
//! A synchronous schedule separates steps by global barriers: every transfer
//! of step `i+1` waits for *all* transfers of step `i`. The relaxation keeps
//! only the per-node dependencies that the 1-port model actually requires: a
//! transfer may start as soon as its own sender and receiver have finished
//! their transfers of earlier steps (and, in the k-aware variant, a backbone
//! slot is free). Each transfer then pays its own setup β instead of sharing
//! a per-step one.

use crate::schedule::Schedule;
use bipartite::{Graph, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of relaxing a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaxedCost {
    /// Completion time of the last transfer.
    pub makespan: Weight,
    /// Largest number of transfers in flight at once.
    pub peak_concurrency: usize,
}

/// Relaxed makespan ignoring the backbone (`k = ∞`): transfers start when
/// both endpoints are free. This is an optimistic bound on any barrier-free
/// execution; peak concurrency in the result tells whether the backbone
/// limit was exceeded.
pub fn relax_unbounded(schedule: &Schedule, graph: &Graph) -> RelaxedCost {
    relax(schedule, graph, usize::MAX)
}

/// Relaxed makespan with at most `k` concurrent transfers: a transfer also
/// waits for one of `k` backbone slots (greedy list scheduling in step
/// order, which preserves the original schedule's priorities).
pub fn relax_k(schedule: &Schedule, graph: &Graph, k: usize) -> RelaxedCost {
    relax(schedule, graph, k.max(1))
}

fn relax(schedule: &Schedule, graph: &Graph, k: usize) -> RelaxedCost {
    let beta = schedule.beta;
    let mut ready_left: Vec<Weight> = vec![0; graph.left_count()];
    let mut ready_right: Vec<Weight> = vec![0; graph.right_count()];
    // Min-heap of backbone slot free times (only when k is finite).
    let bounded = k != usize::MAX;
    let mut slots: BinaryHeap<Reverse<Weight>> = BinaryHeap::new();
    if bounded {
        for _ in 0..k {
            slots.push(Reverse(0));
        }
    }
    let mut makespan = 0;
    // Sweep for peak concurrency: collect (start, +1) / (end, -1) events.
    let mut events: Vec<(Weight, i32)> = Vec::new();

    for step in &schedule.steps {
        for t in &step.transfers {
            let (l, r) = (graph.left_of(t.edge), graph.right_of(t.edge));
            let mut start = ready_left[l].max(ready_right[r]);
            if bounded {
                let Reverse(slot) = slots.pop().expect("k >= 1 slots");
                start = start.max(slot);
            }
            let finish = start + beta + t.amount;
            ready_left[l] = finish;
            ready_right[r] = finish;
            if bounded {
                slots.push(Reverse(finish));
            }
            makespan = makespan.max(finish);
            events.push((start, 1));
            events.push((finish, -1));
        }
    }

    events.sort_unstable_by_key(|&(t, d)| (t, d)); // ends before starts at ties
    let mut cur = 0i32;
    let mut peak = 0i32;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    RelaxedCost {
        makespan,
        peak_concurrency: peak.max(0) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oggp::oggp;
    use crate::problem::Instance;
    use bipartite::generate::{complete_graph, random_graph, GraphParams};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn empty_schedule() {
        let g = Graph::new(2, 2);
        let s = Schedule::new(1);
        let r = relax_unbounded(&s, &g);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.peak_concurrency, 0);
    }

    #[test]
    fn relaxation_never_slower_than_synchronous() {
        let mut rng = SmallRng::seed_from_u64(12);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 15),
        };
        for _ in 0..100 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g.clone(), k, rng.gen_range(0..3));
            let s = oggp(&inst);
            // Synchronous cost charges β once per step; the per-transfer β
            // of the relaxed model is covered because within a step each
            // node runs at most one transfer.
            let r = relax_k(&s, &g, k);
            assert!(
                r.makespan <= s.cost(),
                "relaxed {} > synchronous {}",
                r.makespan,
                s.cost()
            );
            assert!(r.peak_concurrency <= k);
        }
    }

    #[test]
    fn unbounded_at_least_as_fast_as_bounded() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = complete_graph(&mut rng, 5, 5, (1, 9));
        let inst = Instance::new(g.clone(), 2, 1);
        let s = oggp(&inst);
        let unb = relax_unbounded(&s, &g);
        let b = relax_k(&s, &g, 2);
        assert!(unb.makespan <= b.makespan);
        assert!(b.peak_concurrency <= 2);
    }

    #[test]
    fn single_transfer_timing() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 10);
        let s = Schedule {
            steps: vec![crate::schedule::Step {
                transfers: vec![crate::schedule::Transfer {
                    edge: e,
                    amount: 10,
                }],
            }],
            beta: 3,
        };
        let r = relax_unbounded(&s, &g);
        assert_eq!(r.makespan, 13);
        assert_eq!(r.peak_concurrency, 1);
    }

    #[test]
    fn independent_transfers_overlap() {
        // Two steps that only conflict through the barrier: relaxation
        // overlaps them fully.
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 0, 10);
        let e1 = g.add_edge(1, 1, 10);
        let s = Schedule {
            steps: vec![
                crate::schedule::Step {
                    transfers: vec![crate::schedule::Transfer {
                        edge: e0,
                        amount: 10,
                    }],
                },
                crate::schedule::Step {
                    transfers: vec![crate::schedule::Transfer {
                        edge: e1,
                        amount: 10,
                    }],
                },
            ],
            beta: 0,
        };
        assert_eq!(relax_unbounded(&s, &g).makespan, 10);
        // With a single backbone slot they serialise again.
        assert_eq!(relax_k(&s, &g, 1).makespan, 20);
    }
}
