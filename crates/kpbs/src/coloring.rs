//! A coloring-based scheduler: the classical preemptive-bipartite-scheduling
//! approach behind the block-cyclic redistribution literature the paper
//! cites ([3, 9], and the PBS algorithms of [1, 8]).
//!
//! Pick a slot duration `d`; split every message of duration `w` into
//! `⌈w/d⌉` slots of at most `d`; edge-colour the resulting multigraph with
//! `Δ'` colours (König, so each class is a matching); each colour class
//! becomes a step, further chopped into chunks of at most `k` transfers to
//! respect the backbone. The best `d` over a candidate sweep is kept.
//!
//! This scheduler exists as an *ablation* against GGP/OGGP: it is what one
//! would build without the weight-regular peeling idea, and the benches
//! show where peeling wins (notably when `β` matters, because colouring
//! fragments steps).

use crate::problem::Instance;
use crate::schedule::{Schedule, Step, Transfer};
use bipartite::coloring::konig_coloring;
use bipartite::{EdgeId, Graph, Weight};

/// Schedules `inst` by slot-splitting + edge colouring, sweeping the slot
/// duration over the distinct edge weights (plus the maximum) and keeping
/// the cheapest feasible schedule.
pub fn coloring_schedule(inst: &Instance) -> Schedule {
    if inst.is_trivial() {
        return Schedule::new(inst.beta);
    }
    let mut candidates: Vec<Weight> = inst.graph.edges().map(|(_, _, _, w)| w).collect();
    candidates.sort_unstable();
    candidates.dedup();

    let mut best: Option<Schedule> = None;
    for &d in &candidates {
        let s = schedule_with_slot(inst, d);
        if best.as_ref().is_none_or(|b| s.cost() < b.cost()) {
            best = Some(s);
        }
    }
    best.expect("non-trivial instance yields at least one candidate")
}

/// The fixed-slot variant: every message is cut into slots of at most `d`
/// ticks and the slot multigraph is edge-coloured.
pub fn schedule_with_slot(inst: &Instance, d: Weight) -> Schedule {
    assert!(d >= 1, "slot duration must be positive");
    let k = inst.effective_k();

    // Build the slot multigraph; remember each slot's origin and amount.
    let mut multi = Graph::new(inst.graph.left_count(), inst.graph.right_count());
    let mut origin: Vec<(EdgeId, Weight)> = Vec::new();
    for (e, l, r, w) in inst.graph.edges() {
        let mut left = w;
        while left > 0 {
            let amount = left.min(d);
            multi.add_edge(l, r, amount);
            origin.push((e, amount));
            left -= amount;
        }
    }

    let coloring = konig_coloring(&multi);
    let mut schedule = Schedule::new(inst.beta);
    for c in 0..coloring.num_colors {
        let class = coloring.class(&multi, c);
        // Respect the backbone: at most k transfers per step.
        for chunk in class.chunks(k) {
            let transfers: Vec<Transfer> = chunk
                .iter()
                .map(|&slot| {
                    let (edge, amount) = origin[slot.index()];
                    Transfer { edge, amount }
                })
                .collect();
            schedule.steps.push(Step { transfers });
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::lower_bound;
    use crate::oggp::oggp;
    use bipartite::generate::{random_graph, GraphParams};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn sample(k: usize, beta: Weight) -> Instance {
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 5);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 1, 8);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 2, 4);
        Instance::new(g, k, beta)
    }

    #[test]
    fn trivial_instance() {
        let inst = Instance::new(Graph::new(2, 2), 1, 1);
        assert_eq!(coloring_schedule(&inst).num_steps(), 0);
    }

    #[test]
    fn valid_schedule() {
        let inst = sample(3, 1);
        let s = coloring_schedule(&inst);
        s.validate(&inst).unwrap();
        assert!(s.cost() >= lower_bound(&inst));
    }

    #[test]
    fn fixed_slot_valid_for_every_candidate() {
        let inst = sample(2, 1);
        for d in [1, 3, 4, 5, 8, 100] {
            let s = schedule_with_slot(&inst, d);
            s.validate(&inst)
                .unwrap_or_else(|e| panic!("slot {d}: {e}"));
        }
    }

    #[test]
    fn slot_one_is_unit_time_division() {
        // d = 1: every step transmits 1 tick per transfer.
        let inst = sample(3, 0);
        let s = schedule_with_slot(&inst, 1);
        s.validate(&inst).unwrap();
        for step in &s.steps {
            assert_eq!(step.duration(), 1);
        }
    }

    #[test]
    fn random_instances_valid() {
        let mut rng = SmallRng::seed_from_u64(31);
        let params = GraphParams {
            max_nodes_per_side: 7,
            max_edges: 30,
            weight_range: (1, 15),
        };
        for _ in 0..100 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g, k, rng.gen_range(0..3));
            let s = coloring_schedule(&inst);
            s.validate(&inst).unwrap_or_else(|e| panic!("{e}"));
            assert!(s.cost() >= lower_bound(&inst));
        }
    }

    #[test]
    fn peeling_beats_coloring_when_beta_matters() {
        // With a noticeable β, colouring fragments steps; OGGP should win
        // on aggregate.
        let mut rng = SmallRng::seed_from_u64(32);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 20),
        };
        let (mut col, mut ogg) = (0u64, 0u64);
        for _ in 0..60 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g, k, 5);
            col += coloring_schedule(&inst).cost();
            ogg += oggp(&inst).cost();
        }
        assert!(
            ogg <= col,
            "OGGP aggregate {ogg} should not exceed colouring {col}"
        );
    }
}
