//! Evaluation-ratio statistics and the simulation-campaign driver behind
//! Figures 7–9 of the paper.
//!
//! The paper generates random bipartite graphs, runs GGP and OGGP, and plots
//! the *evaluation ratio* — schedule cost divided by the Cohen–Jeannot–Padoy
//! lower bound — as average and maximum over many trials.

use crate::ggp::ggp;
use crate::lower_bound::lower_bound;
use crate::oggp::oggp;
use crate::problem::Instance;
use bipartite::generate::{random_graph, GraphParams};
use bipartite::Weight;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Streaming summary of a set of ratios.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RatioStats {
    /// Number of samples folded in.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
    /// Smallest sample.
    pub min: f64,
}

impl Default for RatioStats {
    fn default() -> Self {
        RatioStats {
            count: 0,
            mean: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
        }
    }
}

impl RatioStats {
    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
        self.max = self.max.max(x);
        self.min = self.min.min(x);
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &RatioStats) {
        if other.count == 0 {
            return;
        }
        let total = self.count + other.count;
        self.mean =
            (self.mean * self.count as f64 + other.mean * other.count as f64) / total as f64;
        self.count = total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

/// How the campaign draws `k` for each trial.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum KChoice {
    /// A fixed `k`, clamped per-trial to `min(n1, n2)` (Figures 7–8 sweep
    /// this value along the x-axis).
    Fixed(usize),
    /// Uniform in `1..=min(n1, n2)` per trial (Figure 9).
    Random,
}

/// One campaign configuration (one point of a paper figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of random graphs to draw.
    pub trials: usize,
    /// Maximum nodes per side of the random graphs.
    pub max_nodes_per_side: usize,
    /// Maximum number of edges.
    pub max_edges: usize,
    /// Inclusive edge-weight range.
    pub weight_range: (Weight, Weight),
    /// Setup delay β in ticks.
    pub beta: Weight,
    /// How `k` is chosen.
    pub k: KChoice,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
}

impl Default for CampaignConfig {
    /// Figure 7 defaults (with a tractable trial count; the paper used
    /// 100 000 per point).
    fn default() -> Self {
        CampaignConfig {
            trials: 1000,
            max_nodes_per_side: 20,
            max_edges: 400,
            weight_range: (1, 20),
            beta: 1,
            k: KChoice::Random,
            seed: 0x5EED,
        }
    }
}

/// Result of one campaign: evaluation-ratio statistics for both algorithms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignResult {
    /// GGP cost / lower bound.
    pub ggp: RatioStats,
    /// GGP with the heaviest-seeded matching (the paper leaves the matching
    /// routine open; this variant bounds how much that choice matters).
    pub ggp_seeded: RatioStats,
    /// OGGP cost / lower bound.
    pub oggp: RatioStats,
    /// GGP steps / OGGP steps (the paper reports OGGP needs ~50% fewer).
    pub step_ratio: RatioStats,
}

/// Runs a campaign: draw `trials` random graphs, schedule each with GGP and
/// OGGP, and accumulate cost/lower-bound ratios.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let params = GraphParams {
        max_nodes_per_side: cfg.max_nodes_per_side,
        max_edges: cfg.max_edges,
        weight_range: cfg.weight_range,
    };
    let mut result = CampaignResult::default();
    for _ in 0..cfg.trials {
        let g = random_graph(&mut rng, &params);
        let side_min = g.left_count().min(g.right_count());
        let k = match cfg.k {
            KChoice::Fixed(k) => k.clamp(1, side_min),
            KChoice::Random => rng.gen_range(1..=side_min),
        };
        let inst = Instance::new(g, k, cfg.beta);
        let lb = lower_bound(&inst) as f64;
        debug_assert!(lb > 0.0, "non-empty graphs have positive bounds");
        let a = ggp(&inst);
        let s = crate::ggp::ggp_seeded(&inst);
        let b = oggp(&inst);
        debug_assert!(a.validate(&inst).is_ok());
        debug_assert!(s.validate(&inst).is_ok());
        debug_assert!(b.validate(&inst).is_ok());
        result.ggp.push(a.cost() as f64 / lb);
        result.ggp_seeded.push(s.cost() as f64 / lb);
        result.oggp.push(b.cost() as f64 / lb);
        if b.num_steps() > 0 {
            result
                .step_ratio
                .push(a.num_steps() as f64 / b.num_steps() as f64);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_stats_streaming() {
        let mut s = RatioStats::default();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, 1.0);
    }

    #[test]
    fn ratio_stats_merge() {
        let mut a = RatioStats::default();
        a.push(1.0);
        a.push(3.0);
        let mut b = RatioStats::default();
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert!((a.mean - 3.0).abs() < 1e-12);
        assert_eq!(a.max, 5.0);
        let empty = RatioStats::default();
        a.merge(&empty);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn small_campaign_sane() {
        let cfg = CampaignConfig {
            trials: 40,
            max_nodes_per_side: 6,
            max_edges: 25,
            weight_range: (1, 20),
            beta: 1,
            k: KChoice::Random,
            seed: 7,
        };
        let r = run_campaign(&cfg);
        assert_eq!(r.ggp.count, 40);
        assert!(r.ggp.min >= 1.0, "cost can never beat the lower bound");
        assert!(r.oggp.min >= 1.0);
        assert!(r.oggp.mean <= r.ggp.mean + 1e-9, "OGGP at least as good");
        // The paper's simulations never exceeded 1.8; leave slack but catch
        // gross regressions.
        assert!(r.ggp.max < 2.5, "GGP ratio {} looks broken", r.ggp.max);
    }

    #[test]
    fn campaign_reproducible() {
        let cfg = CampaignConfig {
            trials: 10,
            max_nodes_per_side: 5,
            max_edges: 12,
            ..Default::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.ggp.mean, b.ggp.mean);
        assert_eq!(a.oggp.max, b.oggp.max);
    }

    #[test]
    fn fixed_k_clamped() {
        let cfg = CampaignConfig {
            trials: 15,
            max_nodes_per_side: 4,
            max_edges: 10,
            k: KChoice::Fixed(100),
            ..Default::default()
        };
        // Must not panic despite k exceeding every side.
        let r = run_campaign(&cfg);
        assert_eq!(r.ggp.count, 15);
    }

    #[test]
    fn large_weights_near_optimal() {
        // Figure 8's regime: weights up to 10000, β = 1 → ratios ≈ 1.
        let cfg = CampaignConfig {
            trials: 25,
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 10_000),
            beta: 1,
            k: KChoice::Random,
            seed: 3,
        };
        let r = run_campaign(&cfg);
        assert!(
            r.oggp.max < 1.05,
            "large-weight OGGP ratio {} should be near 1",
            r.oggp.max
        );
    }
}
