//! Parallel multi-instance planning.
//!
//! A production redistribution planner rarely sees one request at a time: a
//! campaign sweep, a `--compare` run or a traffic replay schedules dozens of
//! independent [`Instance`]s. They share no state — every scheduler in this
//! crate takes `&Instance` and builds its own graphs — so the batch is
//! embarrassingly parallel. This module provides the one fan-out primitive
//! ([`parallel_map`]) and the planner entry points built on it
//! ([`plan_many`], [`plan_many_with`]).
//!
//! # Determinism
//!
//! Results are returned in input order and each instance is scheduled by the
//! same deterministic code regardless of which worker picks it up, so the
//! output is **byte-identical for every `jobs` value** (the `redistplan
//! --jobs` CLI and `scripts/check.sh` gate on exactly that). Work is handed
//! out by an atomic index rather than pre-chunked, so stragglers never
//! serialise the tail.
//!
//! # Telemetry across threads
//!
//! Work counters are thread-local cells flushed to process totals on thread
//! exit (see [`telemetry::counters`]), which makes per-instance measurement
//! exact under parallelism: a worker snapshots its own cells around each
//! instance, and the coordinator merges the deltas with
//! [`Snapshot::sum`] after joining. The merged total is therefore
//! independent of `jobs` too. Span events land in per-thread buffers that
//! drain to the global trace on thread exit, so a `drain_all` after a batch
//! sees every worker's spans.

use crate::problem::Instance;
use crate::schedule::Schedule;
use std::sync::atomic::{AtomicUsize, Ordering};
use telemetry::counters::{self, Snapshot};

/// A scheduled batch: the plans in input order, the exact work-counter delta
/// of each instance, and the batch-wide merged delta.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One schedule per input instance, in input order.
    pub schedules: Vec<Schedule>,
    /// Per-instance work-counter deltas, in input order. All zero when
    /// counting is disabled.
    pub work: Vec<Snapshot>,
    /// Sum of `work` — the whole batch's counters, independent of `jobs`.
    pub merged: Snapshot,
}

/// Applies `f` to every item on `jobs` worker threads and returns the
/// results in input order.
///
/// `jobs == 1` (or a batch of at most one item) runs inline on the calling
/// thread — no threads are spawned, so thread-local telemetry accumulates
/// exactly as in a sequential program. `jobs == 0` is treated as 1. The
/// worker count is capped at `items.len()`.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is forwarded once the scoped
/// workers have been joined).
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    // Atomic work queue: each worker claims the next unclaimed index. The
    // item → worker assignment depends on timing, but since f is pure per
    // item and results are reordered by index below, the output does not.
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(&items[i])));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("batch worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Schedules every instance with `plan` on `jobs` threads, measuring each
/// instance's exact work-counter delta (zero if counting is disabled).
///
/// The schedules, the per-instance deltas and the merged delta are all
/// independent of `jobs` — see the module docs.
pub fn plan_many_with<F>(instances: &[Instance], jobs: usize, plan: F) -> BatchReport
where
    F: Fn(&Instance) -> Schedule + Sync,
{
    let results = parallel_map(instances, jobs, |inst| {
        // Local snapshots see only this worker's cells, so the delta is the
        // instance's own work even with siblings running concurrently.
        let before = counters::local_snapshot();
        let schedule = plan(inst);
        let work = counters::local_snapshot().delta(&before);
        (schedule, work)
    });
    let mut schedules = Vec::with_capacity(results.len());
    let mut work = Vec::with_capacity(results.len());
    for (s, w) in results {
        schedules.push(s);
        work.push(w);
    }
    let merged = Snapshot::sum(&work);
    BatchReport {
        schedules,
        work,
        merged,
    }
}

/// Schedules every instance with [OGGP](crate::oggp::oggp) — the paper's
/// best algorithm and this crate's default planner — on `jobs` threads.
/// Output is identical for every `jobs` value.
pub fn plan_many(instances: &[Instance], jobs: usize) -> Vec<Schedule> {
    plan_many_with(instances, jobs, crate::oggp::oggp).schedules
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::generate::{random_graph, GraphParams};
    use bipartite::Graph;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn campaign(count: usize, seed: u64) -> Vec<Instance> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 20),
        };
        (0..count)
            .map(|_| {
                let g = random_graph(&mut rng, &params);
                let kmax = g.left_count().min(g.right_count()).max(1);
                let k = rng.gen_range(1..=kmax);
                let beta = rng.gen_range(0..4);
                Instance::new(g, k, beta)
            })
            .collect()
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..101).collect();
        for jobs in [1, 3, 8, 200] {
            let out = parallel_map(&items, jobs, |&x| x * 2);
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
        assert_eq!(parallel_map(&[7u32], 0, |&x| x + 1), vec![8]);
    }

    #[test]
    fn plan_many_matches_sequential_oggp() {
        let instances = campaign(24, 11);
        let expect: Vec<Schedule> = instances.iter().map(crate::oggp::oggp).collect();
        for jobs in [1, 4, 8] {
            let got = plan_many(&instances, jobs);
            assert_eq!(got, expect, "jobs = {jobs} changed the schedules");
        }
        for (inst, s) in instances.iter().zip(&expect) {
            s.validate(inst).unwrap();
        }
    }

    #[test]
    fn plan_many_handles_trivial_instances() {
        let instances = vec![
            Instance::new(Graph::new(2, 2), 1, 1),
            Instance::new(Graph::new(0, 0), 1, 0),
        ];
        let out = plan_many(&instances, 4);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].num_steps(), 0);
        assert_eq!(out[1].num_steps(), 0);
    }

    #[test]
    fn merged_work_is_jobs_invariant() {
        let _guard = crate::testutil::COUNTER_LOCK.lock().unwrap();
        let instances = campaign(16, 12);
        counters::enable();
        let baseline = plan_many_with(&instances, 1, crate::oggp::oggp);
        assert!(
            !baseline.merged.is_zero(),
            "scheduling must count some work"
        );
        for jobs in [4, 8] {
            let report = plan_many_with(&instances, jobs, crate::oggp::oggp);
            assert_eq!(report.schedules, baseline.schedules);
            assert_eq!(
                report.work, baseline.work,
                "per-instance work must not depend on jobs"
            );
            assert_eq!(report.merged, baseline.merged);
        }
        counters::disable();
        assert_eq!(
            Snapshot::sum(&baseline.work),
            baseline.merged,
            "merged is the sum of the per-instance deltas"
        );
    }
}
