//! Exact optimal solver for tiny K-PBS instances, by memoised
//! branch-and-bound over residual graphs.
//!
//! The paper deliberately did not implement one ("designing such an
//! algorithm is difficult"); we provide it so that the test-suite can check
//! the 2-approximation guarantee against real optima instead of only the
//! lower bound.
//!
//! Scope and caveats:
//!
//! * The search space is schedules whose step durations are **integers**.
//!   With integral weights and β this is the natural discretisation; the
//!   returned value always upper-bounds the true (fractional-preemption)
//!   optimum and lower-bounds every integer schedule, in particular GGP's
//!   and OGGP's.
//! * Within a step of duration `d`, every matched edge transmits
//!   `min(d, remaining)` — transmitting the maximum is weakly optimal
//!   because a component-wise smaller residual never costs more.
//! * Only matchings that are *maximal within the `k` limit* are branched on,
//!   for the same dominance reason.
//!
//! Complexity is exponential; [`Limits`] aborts gracefully on anything that
//! is not tiny.

use crate::problem::Instance;
use bipartite::Weight;
use std::collections::HashMap;

/// Guard rails for the exponential search.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of edges of the instance.
    pub max_edges: usize,
    /// Maximum total weight `P(G)`.
    pub max_total_weight: Weight,
    /// Maximum number of memoised states before giving up.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_edges: 8,
            max_total_weight: 48,
            max_states: 2_000_000,
        }
    }
}

struct Ctx {
    /// (left, right, full weight) per edge, densely indexed.
    edges: Vec<(usize, usize, Weight)>,
    k: usize,
    beta: Weight,
    memo: HashMap<Vec<Weight>, Weight>,
    /// Best first move per state: (matching edge indices, duration).
    choice: HashMap<Vec<Weight>, (Vec<usize>, Weight)>,
    max_states: usize,
    aborted: bool,
}

/// Computes the optimal integer-duration K-PBS cost of `inst`, or `None`
/// when `limits` are exceeded.
///
/// ```
/// use bipartite::Graph;
/// use kpbs::{Instance, exact};
///
/// let mut g = Graph::new(2, 2);
/// g.add_edge(0, 0, 4);
/// g.add_edge(1, 1, 6);
/// let inst = Instance::new(g, 2, 1); // both fit one step of duration 6
/// assert_eq!(exact::optimal_cost(&inst, exact::Limits::default()), Some(7));
/// ```
pub fn optimal_cost(inst: &Instance, limits: Limits) -> Option<Weight> {
    if inst.graph.edge_count() == 0 {
        return Some(0);
    }
    run_with_ctx(inst, limits).map(|(c, _)| c)
}

/// Computes an optimal integer-duration schedule (cost plus the schedule
/// itself, reconstructed from the memoised first moves), or `None` when
/// `limits` are exceeded.
pub fn optimal_schedule(
    inst: &Instance,
    limits: Limits,
) -> Option<(Weight, crate::schedule::Schedule)> {
    use crate::schedule::{Schedule, Step, Transfer};
    if inst.graph.edge_count() == 0 {
        return Some((0, Schedule::new(inst.beta)));
    }
    let (cost, ctx) = run_with_ctx(inst, limits)?;
    // Map dense edge order back to instance edge ids.
    let ids: Vec<bipartite::EdgeId> = inst.graph.edge_ids().collect();
    let mut schedule = Schedule::new(inst.beta);
    let mut state: Vec<Weight> = ctx.edges.iter().map(|e| e.2).collect();
    while state.iter().any(|&w| w > 0) {
        let (matching, d) = ctx
            .choice
            .get(&state)
            .expect("every non-terminal state has a recorded move")
            .clone();
        let mut step = Step::default();
        for &e in &matching {
            let amount = d.min(state[e]);
            if amount > 0 {
                step.transfers.push(Transfer {
                    edge: ids[e],
                    amount,
                });
                state[e] -= amount;
            }
        }
        schedule.steps.push(step);
    }
    Some((cost, schedule))
}

fn run_with_ctx(inst: &Instance, limits: Limits) -> Option<(Weight, Ctx)> {
    let m = inst.graph.edge_count();
    debug_assert!(m > 0, "callers special-case the empty instance");
    if m > limits.max_edges || inst.total_weight() > limits.max_total_weight {
        return None;
    }
    let edges: Vec<(usize, usize, Weight)> =
        inst.graph.edges().map(|(_, l, r, w)| (l, r, w)).collect();
    let residual: Vec<Weight> = edges.iter().map(|e| e.2).collect();
    let mut ctx = Ctx {
        edges,
        k: inst.effective_k(),
        beta: inst.beta,
        memo: HashMap::new(),
        choice: HashMap::new(),
        max_states: limits.max_states,
        aborted: false,
    };
    let cost = solve(&mut ctx, &residual);
    if ctx.aborted {
        None
    } else {
        Some((cost, ctx))
    }
}

fn solve(ctx: &mut Ctx, residual: &[Weight]) -> Weight {
    if residual.iter().all(|&w| w == 0) {
        return 0;
    }
    if let Some(&c) = ctx.memo.get(residual) {
        return c;
    }
    if ctx.memo.len() >= ctx.max_states || ctx.aborted {
        ctx.aborted = true;
        return Weight::MAX / 4;
    }

    // Enumerate matchings over live residual edges, maximal within k.
    let live: Vec<usize> = (0..residual.len()).filter(|&i| residual[i] > 0).collect();
    let mut best = Weight::MAX / 4;
    let mut best_move: Option<(Vec<usize>, Weight)> = None;
    let mut chosen: Vec<usize> = Vec::new();
    enumerate_matchings(
        ctx,
        residual,
        &live,
        0,
        &mut chosen,
        &mut best,
        &mut best_move,
    );

    ctx.memo.insert(residual.to_vec(), best);
    if let Some(mv) = best_move {
        ctx.choice.insert(residual.to_vec(), mv);
    }
    best
}

/// Depth-first enumeration of matchings (subsets of `live` edges that are
/// pairwise non-conflicting, of size ≤ k). For each matching that is maximal
/// within the k limit, branch on every integer duration.
fn enumerate_matchings(
    ctx: &mut Ctx,
    residual: &[Weight],
    live: &[usize],
    from: usize,
    chosen: &mut Vec<usize>,
    best: &mut Weight,
    best_move: &mut Option<(Vec<usize>, Weight)>,
) {
    if ctx.aborted {
        return;
    }
    // Extend canonically (indices increase) so each matching is visited once.
    if chosen.len() < ctx.k {
        for (pos, &e) in live.iter().enumerate().skip(from) {
            let (l, r, _) = ctx.edges[e];
            let conflict = chosen
                .iter()
                .any(|&c| ctx.edges[c].0 == l || ctx.edges[c].1 == r);
            if conflict {
                continue;
            }
            chosen.push(e);
            enumerate_matchings(ctx, residual, live, pos + 1, chosen, best, best_move);
            chosen.pop();
        }
    }
    // Branch only on matchings that are maximal within the k limit: adding
    // one more compatible edge is always weakly better (it transmits
    // min(d, remaining) at no extra step cost), so non-maximal steps are
    // dominated.
    if chosen.is_empty() {
        return;
    }
    let maximal_within_k = chosen.len() == ctx.k
        || !live.iter().any(|&e| {
            let (l, r, _) = ctx.edges[e];
            !chosen.contains(&e)
                && !chosen
                    .iter()
                    .any(|&c| ctx.edges[c].0 == l || ctx.edges[c].1 == r)
        });
    if maximal_within_k {
        branch_durations(ctx, residual, chosen, best, best_move);
    }
}

fn branch_durations(
    ctx: &mut Ctx,
    residual: &[Weight],
    matching: &[usize],
    best: &mut Weight,
    best_move: &mut Option<(Vec<usize>, Weight)>,
) {
    let max_rem = matching.iter().map(|&e| residual[e]).max().unwrap();
    for d in 1..=max_rem {
        let mut next = residual.to_vec();
        for &e in matching {
            let amount = d.min(next[e]);
            next[e] -= amount;
        }
        // Admissible pruning: the branch costs at least β + d plus the
        // residual's lower bound; skip it when that cannot beat the best
        // branch already evaluated at this node (the memo stays exact —
        // we only avoid recursing into provably-dominated branches).
        if ctx.beta + d + residual_lower_bound(ctx, &next) >= *best {
            continue;
        }
        let sub = solve(ctx, &next);
        let total = ctx.beta + d + sub;
        if total < *best {
            *best = total;
            *best_move = Some((matching.to_vec(), d));
        }
    }
}

/// The Cohen–Jeannot–Padoy bound evaluated on a residual-weight vector.
fn residual_lower_bound(ctx: &Ctx, residual: &[Weight]) -> Weight {
    let k = ctx.k as Weight;
    let mut p = 0;
    let mut m = 0u64;
    // Node weights / degrees, keyed by endpoint. Node indices are small.
    let mut w_left: Vec<Weight> = Vec::new();
    let mut w_right: Vec<Weight> = Vec::new();
    let mut d_left: Vec<u64> = Vec::new();
    let mut d_right: Vec<u64> = Vec::new();
    for (i, &(l, r, _)) in ctx.edges.iter().enumerate() {
        let w = residual[i];
        if w == 0 {
            continue;
        }
        if l >= w_left.len() {
            w_left.resize(l + 1, 0);
            d_left.resize(l + 1, 0);
        }
        if r >= w_right.len() {
            w_right.resize(r + 1, 0);
            d_right.resize(r + 1, 0);
        }
        p += w;
        m += 1;
        w_left[l] += w;
        w_right[r] += w;
        d_left[l] += 1;
        d_right[r] += 1;
    }
    if m == 0 {
        return 0;
    }
    let w_max = w_left.iter().chain(&w_right).copied().max().unwrap_or(0);
    let delta = d_left.iter().chain(&d_right).copied().max().unwrap_or(0);
    w_max.max(p.div_ceil(k)) + ctx.beta * delta.max(m.div_ceil(ctx.k as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggp::ggp;
    use crate::lower_bound::lower_bound as lb;
    use crate::oggp::oggp;
    use bipartite::Graph;

    fn inst(
        edges: &[(usize, usize, Weight)],
        nl: usize,
        nr: usize,
        k: usize,
        beta: Weight,
    ) -> Instance {
        let mut g = Graph::new(nl, nr);
        for &(l, r, w) in edges {
            g.add_edge(l, r, w);
        }
        Instance::new(g, k, beta)
    }

    #[test]
    fn empty_is_zero() {
        let i = inst(&[], 1, 1, 1, 3);
        assert_eq!(optimal_cost(&i, Limits::default()), Some(0));
    }

    #[test]
    fn single_edge_exact() {
        let i = inst(&[(0, 0, 7)], 1, 1, 1, 2);
        assert_eq!(optimal_cost(&i, Limits::default()), Some(9));
    }

    #[test]
    fn two_disjoint_edges_parallel() {
        let i = inst(&[(0, 0, 4), (1, 1, 6)], 2, 2, 2, 1);
        // One step of duration 6: cost 7.
        assert_eq!(optimal_cost(&i, Limits::default()), Some(7));
    }

    #[test]
    fn two_disjoint_edges_k1() {
        let i = inst(&[(0, 0, 4), (1, 1, 6)], 2, 2, 1, 1);
        // Sequential: (1+4) + (1+6) = 12; splitting only adds setups.
        assert_eq!(optimal_cost(&i, Limits::default()), Some(12));
    }

    #[test]
    fn preemption_pays_off() {
        // Figure 2 intuition: star conflicts force serialisation; check the
        // solver handles shared endpoints. l0->r0 (2), l0->r1 (2), l1->r1 (2).
        let i = inst(&[(0, 0, 2), (0, 1, 2), (1, 1, 2)], 2, 2, 2, 1);
        // Steps: {l0r0, l1r1} d=2, then {l0r1} d=2: cost (1+2)+(1+2) = 6.
        assert_eq!(optimal_cost(&i, Limits::default()), Some(6));
    }

    #[test]
    fn respects_limits() {
        let i = inst(&[(0, 0, 100)], 1, 1, 1, 0);
        let l = Limits {
            max_total_weight: 10,
            ..Limits::default()
        };
        assert_eq!(optimal_cost(&i, l), None);
    }

    #[test]
    fn exact_between_bound_and_heuristics() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..60 {
            let nl = rng.gen_range(1..4);
            let nr = rng.gen_range(1..4);
            let m = rng.gen_range(1..=5usize.min(nl * nr));
            let mut edges = Vec::new();
            let mut used = std::collections::HashSet::new();
            while edges.len() < m {
                let l = rng.gen_range(0..nl);
                let r = rng.gen_range(0..nr);
                if used.insert((l, r)) {
                    edges.push((l, r, rng.gen_range(1..5)));
                }
            }
            let k = rng.gen_range(1..=nl.min(nr));
            let beta = rng.gen_range(0..3);
            let i = inst(&edges, nl, nr, k, beta);
            let opt = optimal_cost(&i, Limits::default()).expect("within limits");
            let bound = lb(&i);
            let g_cost = ggp(&i).cost();
            let o_cost = oggp(&i).cost();
            assert!(opt >= bound, "optimum {opt} below lower bound {bound}");
            assert!(g_cost >= opt, "GGP {g_cost} beats the optimum {opt}");
            assert!(o_cost >= opt, "OGGP {o_cost} beats the optimum {opt}");
            assert!(
                g_cost <= 2 * opt,
                "GGP {g_cost} violates 2-approximation of {opt}"
            );
            assert!(
                o_cost <= 2 * opt,
                "OGGP {o_cost} violates 2-approximation of {opt}"
            );
        }
    }

    #[test]
    fn optimal_schedule_is_feasible_and_matches_cost() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..40 {
            let nl = rng.gen_range(1..4);
            let nr = rng.gen_range(1..4);
            let m = rng.gen_range(1..=4usize.min(nl * nr));
            let mut edges = Vec::new();
            let mut used = std::collections::HashSet::new();
            while edges.len() < m {
                let l = rng.gen_range(0..nl);
                let r = rng.gen_range(0..nr);
                if used.insert((l, r)) {
                    edges.push((l, r, rng.gen_range(1..5)));
                }
            }
            let i = inst(
                &edges,
                nl,
                nr,
                rng.gen_range(1..=nl.min(nr)),
                rng.gen_range(0..3),
            );
            let (cost, schedule) = optimal_schedule(&i, Limits::default()).expect("tiny");
            schedule.validate(&i).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(schedule.cost(), cost, "reconstructed schedule cost");
            assert_eq!(Some(cost), optimal_cost(&i, Limits::default()));
        }
    }

    #[test]
    fn optimal_schedule_empty_instance() {
        let i = inst(&[], 2, 2, 1, 3);
        let (cost, s) = optimal_schedule(&i, Limits::default()).unwrap();
        assert_eq!(cost, 0);
        assert_eq!(s.num_steps(), 0);
    }

    #[test]
    fn lower_bound_is_tight_sometimes() {
        // 2x2 regular: lb = W + β·Δ = 5 + 2 = 7 and exact matches.
        let i = inst(&[(0, 0, 3), (0, 1, 2), (1, 0, 2), (1, 1, 3)], 2, 2, 2, 1);
        let opt = optimal_cost(&i, Limits::default()).unwrap();
        assert_eq!(opt, lb(&i));
    }
}
