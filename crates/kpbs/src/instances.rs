//! A corpus of named stress instances for regression and worst-case
//! analysis. The paper notes that "a set of suboptimal examples reaching
//! the approximation ratio of 2 may be found in \[19\]" (the INRIA tech
//! report); this module reconstructs adversarial *families* in that spirit,
//! plus structured workloads a redistribution scheduler meets in practice.

use crate::problem::Instance;
use crate::topo::{BackboneSpec, NodeSpec, Topology};
use crate::traffic::TrafficMatrix;
use bipartite::{Graph, Weight};
use rand::Rng;

/// The β-trap family: `n` unit messages forming a perfect matching plus one
/// heavy diagonal message, with β equal to the heavy weight. Peeling
/// algorithms are tempted into many short steps whose setups pile up —
/// the family that pushes GGP's ratio towards its worst observed values.
pub fn beta_trap(n: usize, heavy: Weight) -> Instance {
    assert!(n >= 2);
    let mut g = Graph::new(n, n);
    for i in 0..n {
        g.add_edge(i, i, 1);
    }
    g.add_edge(0, 1, heavy);
    Instance::new(g, n, heavy)
}

/// A hoarding sender: node 0 sends `per_msg` ticks to each of the `n`
/// receivers while every other sender is idle. `W(G)` dominates everything;
/// the schedule is forced sequential no matter what `k` allows.
pub fn hoarding_sender(n: usize, per_msg: Weight) -> Instance {
    assert!(n >= 1);
    let mut g = Graph::new(n, n);
    for j in 0..n {
        g.add_edge(0, j, per_msg);
    }
    Instance::new(g, n, 1)
}

/// Uniform all-to-all: every pair communicates the same volume — the
/// friendliest possible pattern (weight-regular from the start).
pub fn uniform_all_to_all(n: usize, per_msg: Weight, k: usize, beta: Weight) -> Instance {
    let mut g = Graph::new(n, n);
    for i in 0..n {
        for j in 0..n {
            g.add_edge(i, j, per_msg);
        }
    }
    Instance::new(g, k, beta)
}

/// Power-law message sizes: a few huge transfers and a long tail of small
/// ones (the shape of real coupled-application traffic). Sizes are
/// `max_w / rank`, truncated at 1.
pub fn power_law<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    messages: usize,
    max_w: Weight,
    k: usize,
    beta: Weight,
) -> Instance {
    assert!(n >= 1 && messages >= 1);
    let mut g = Graph::new(n, n);
    for rank in 1..=messages {
        let w = (max_w / rank as Weight).max(1);
        g.add_edge(rng.gen_range(0..n), rng.gen_range(0..n), w);
    }
    Instance::new(g, k, beta)
}

/// Sparse power-law instance: `messages` edges whose endpoints are drawn
/// with Zipf-like preference (node `i` proportional to `1/(i+1)`) and whose
/// sizes follow the same `max_w / rank` decay as [`power_law`]. A few hub
/// senders/receivers carry most of the traffic — the shape of real
/// aggregated backbone matrices — while the edge count stays `O(messages)`,
/// so `n = 4096` is representable without an `n²` dense matrix.
///
/// Duplicate endpoint draws create parallel edges (the [`Graph`] is a
/// multigraph), which is exactly what repeated messages between one pair
/// look like.
pub fn sparse_power_law<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    messages: usize,
    max_w: Weight,
    k: usize,
    beta: Weight,
) -> Instance {
    assert!(n >= 1 && messages >= 1);
    let mut g = Graph::new(n, n);
    for rank in 1..=messages {
        let w = (max_w / rank as Weight).max(1);
        g.add_edge(zipf(rng, n), zipf(rng, n), w);
    }
    Instance::new(g, k, beta)
}

/// Draws a node index with Zipf-like preference: index `i` with probability
/// proportional to `1/(i+1)`. Inverse-CDF on the harmonic series via a
/// float draw — `O(log n)` per sample through the analytic approximation.
fn zipf<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    // H(x) ≈ ln(x + 1); invert u·H(n) to x = exp(u·ln(n+1)) - 1.
    let u: f64 = rng.gen_range(0.0..1.0);
    let x = ((n as f64 + 1.0).ln() * u).exp() - 1.0;
    (x as usize).min(n - 1)
}

/// Sparse clustered instance: block-diagonal-plus-noise. Nodes are split
/// into `clusters` equal groups; each node sends `per_node` messages, each
/// of which stays inside its own cluster with probability `1 - noise` and
/// goes to a uniformly random receiver otherwise. Weights are uniform in
/// `1..=max_w`. This is the family hierarchical planning is built for: a
/// good partition captures the `1 - noise` fraction of the traffic on the
/// block diagonal.
///
/// `noise` is clamped to `[0, 1]`. Cluster labels are *not* contiguous in
/// node order: cluster `c` owns the nodes `{i : i mod clusters == c}`, so
/// the partition pass has real relabeling work to do.
#[allow(clippy::too_many_arguments)]
pub fn sparse_clustered<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    clusters: usize,
    per_node: usize,
    noise: f64,
    max_w: Weight,
    k: usize,
    beta: Weight,
) -> Instance {
    assert!(n >= 1 && clusters >= 1 && clusters <= n && per_node >= 1);
    let noise = noise.clamp(0.0, 1.0);
    let mut g = Graph::new(n, n);
    for l in 0..n {
        let c = l % clusters;
        for _ in 0..per_node {
            let r = if rng.gen_range(0.0..1.0) < noise {
                rng.gen_range(0..n)
            } else {
                // A uniformly random member of cluster c (the nodes whose
                // index is ≡ c mod clusters).
                let members = (n - c).div_ceil(clusters);
                c + clusters * rng.gen_range(0..members)
            };
            g.add_edge(l, r, rng.gen_range(1..=max_w.max(1)));
        }
    }
    Instance::new(g, k, beta)
}

/// Sparse uniform instance: `degree` messages per sender, receivers drawn
/// uniformly, weights uniform in `1..=max_w`. The unstructured baseline —
/// no hubs, no clusters — where hierarchy pays its worst evaluation-ratio
/// price.
pub fn sparse_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    degree: usize,
    max_w: Weight,
    k: usize,
    beta: Weight,
) -> Instance {
    assert!(n >= 1 && degree >= 1);
    let mut g = Graph::new(n, n);
    for l in 0..n {
        for _ in 0..degree {
            g.add_edge(l, rng.gen_range(0..n), rng.gen_range(1..=max_w.max(1)));
        }
    }
    Instance::new(g, k, beta)
}

/// The staircase family: message `i` has weight `2^i`, all sharing one
/// receiver. Exercises the normalisation and the preemption bookkeeping
/// across widely mixed scales.
pub fn staircase(levels: usize, beta: Weight) -> Instance {
    assert!((1..60).contains(&levels));
    let mut g = Graph::new(levels, 1);
    for i in 0..levels {
        g.add_edge(i, 0, 1u64 << i);
    }
    Instance::new(g, 1, beta)
}

/// A star topology (Marchal et al.) with per-node NIC speeds drawn
/// uniformly from `lo_mbps..=hi_mbps`: `n1` senders, `n2` receivers, one
/// shared backbone of `backbone_mbps`. The heterogeneous counterpart of
/// [`Platform::testbed`](crate::platform::Platform::testbed).
pub fn star_topology<R: Rng + ?Sized>(
    rng: &mut R,
    n1: usize,
    n2: usize,
    lo_mbps: f64,
    hi_mbps: f64,
    backbone_mbps: f64,
) -> Topology {
    assert!(n1 >= 1 && n2 >= 1);
    assert!(lo_mbps > 0.0 && lo_mbps <= hi_mbps);
    let draw = |rng: &mut R| {
        if lo_mbps == hi_mbps {
            lo_mbps
        } else {
            rng.gen_range(lo_mbps..=hi_mbps)
        }
    };
    let out: Vec<f64> = (0..n1).map(|_| draw(rng)).collect();
    let inn: Vec<f64> = (0..n2).map(|_| draw(rng)).collect();
    Topology::star(&out, &inn, backbone_mbps)
}

/// A multi-level cluster-of-clusters topology. Sender clusters are given as
/// `(node_count, nic_mbps)` pairs and numbered `0..S`; receiver clusters
/// likewise, numbered `S..S+R`. Each link `(s, r, capacity_mbps)` joins
/// sender cluster `s` to receiver cluster `r` (indices into the respective
/// slices).
pub fn multi_level_topology(
    sender_clusters: &[(usize, f64)],
    receiver_clusters: &[(usize, f64)],
    links: &[(usize, usize, f64)],
) -> Topology {
    let mut nodes = Vec::new();
    for (c, &(count, speed)) in sender_clusters.iter().enumerate() {
        for _ in 0..count {
            nodes.push(NodeSpec {
                nic_out: speed,
                nic_in: speed,
                cluster: c,
            });
        }
    }
    let base = sender_clusters.len();
    for (c, &(count, speed)) in receiver_clusters.iter().enumerate() {
        for _ in 0..count {
            nodes.push(NodeSpec {
                nic_out: speed,
                nic_in: speed,
                cluster: base + c,
            });
        }
    }
    let links = links
        .iter()
        .map(|&(s, r, capacity)| BackboneSpec {
            capacity,
            connects: (s, base + r),
        })
        .collect();
    Topology { nodes, links }
}

/// Two independent backbones: fast sender cluster → fast receiver cluster
/// over `cap_fast_mbps`, slow pair over `cap_slow_mbps`, `per_cluster`
/// nodes everywhere. The smallest topology where per-bottleneck `k_b`
/// diverges from any single global `k` and disjoint links zip in parallel.
pub fn two_backbone_topology(
    per_cluster: usize,
    fast_mbps: f64,
    slow_mbps: f64,
    cap_fast_mbps: f64,
    cap_slow_mbps: f64,
) -> Topology {
    multi_level_topology(
        &[(per_cluster, fast_mbps), (per_cluster, slow_mbps)],
        &[(per_cluster, fast_mbps), (per_cluster, slow_mbps)],
        &[(0, 0, cap_fast_mbps), (1, 1, cap_slow_mbps)],
    )
}

/// A traffic matrix for `topo` with volume only on routable pairs: each
/// sender→receiver pair served by some backbone gets `0..=max_mb` MB,
/// unreachable pairs stay zero. The workload generator every heterogeneous
/// campaign and proptest uses.
pub fn routable_traffic<R: Rng + ?Sized>(
    rng: &mut R,
    topo: &Topology,
    max_mb: u64,
) -> TrafficMatrix {
    let (n1, n2) = (topo.senders(), topo.receivers());
    let mut m = TrafficMatrix::zeros(n1, n2);
    for i in 0..n1 {
        for j in 0..n2 {
            if topo.route(i, j).is_some() {
                m.set(i, j, rng.gen_range(0..=max_mb) * 1_000_000);
            }
        }
    }
    m
}

/// Every named family at a small, fast size — the regression corpus the
/// test-suites sweep.
pub fn regression_corpus() -> Vec<(&'static str, Instance)> {
    use rand::{rngs::SmallRng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    vec![
        ("beta_trap_6", beta_trap(6, 8)),
        ("beta_trap_10", beta_trap(10, 20)),
        ("hoarding_8", hoarding_sender(8, 5)),
        ("uniform_6", uniform_all_to_all(6, 7, 3, 1)),
        ("power_law_8", power_law(&mut rng, 8, 24, 256, 4, 2)),
        ("staircase_12", staircase(12, 3)),
        ("sparse_pl_12", sparse_power_law(&mut rng, 12, 30, 64, 4, 1)),
        (
            "sparse_cluster_12",
            sparse_clustered(&mut rng, 12, 3, 3, 0.2, 20, 4, 1),
        ),
        (
            "sparse_uniform_12",
            sparse_uniform(&mut rng, 12, 2, 16, 4, 1),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{optimal_cost, Limits};
    use crate::lower_bound::lower_bound;
    use crate::{ggp, oggp};

    #[test]
    fn corpus_is_schedulable_and_bounded() {
        for (name, inst) in regression_corpus() {
            let g = ggp(&inst);
            let o = oggp(&inst);
            g.validate(&inst).unwrap_or_else(|e| panic!("{name}: {e}"));
            o.validate(&inst).unwrap_or_else(|e| panic!("{name}: {e}"));
            let lb = lower_bound(&inst);
            assert!(g.cost() >= lb, "{name}");
            assert!(o.cost() <= g.cost() + inst.beta, "{name}: OGGP much worse");
            assert!(
                g.cost() <= 2 * lb + 2 * inst.beta * inst.graph.edge_count() as Weight,
                "{name}: ratio blow-up ({} vs bound {lb})",
                g.cost()
            );
        }
    }

    #[test]
    fn hoarding_forces_sequential() {
        let inst = hoarding_sender(6, 5);
        let s = oggp(&inst);
        s.validate(&inst).unwrap();
        // One sender, one port: 6 steps regardless of k = 6.
        assert_eq!(s.num_steps(), 6);
        assert_eq!(s.cost(), lower_bound(&inst));
    }

    #[test]
    fn uniform_all_to_all_is_easy() {
        let inst = uniform_all_to_all(5, 4, 5, 1);
        let s = oggp(&inst);
        s.validate(&inst).unwrap();
        // Perfectly regular: exactly n steps of full width, cost = bound.
        assert_eq!(s.num_steps(), 5);
        assert_eq!(s.cost(), lower_bound(&inst));
    }

    #[test]
    fn staircase_never_splits_below_beta() {
        let inst = staircase(10, 4);
        let s = oggp(&inst);
        s.validate(&inst).unwrap();
        for step in &s.steps {
            for t in &step.transfers {
                // Slices are never shorter than β unless they finish an edge.
                let finishes = inst.graph.weight(t.edge) % inst.beta == t.amount % inst.beta;
                assert!(t.amount >= inst.beta || finishes);
            }
        }
    }

    #[test]
    fn sparse_families_scale_without_density() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(41);
        let n = 512;
        let pl = sparse_power_law(&mut rng, n, 4 * n, 1000, 16, 1);
        let cl = sparse_clustered(&mut rng, n, 16, 4, 0.1, 50, 16, 1);
        let un = sparse_uniform(&mut rng, n, 3, 50, 16, 1);
        for (name, inst) in [("pl", &pl), ("cl", &cl), ("un", &un)] {
            let m = inst.graph.edge_count();
            assert!(m >= n, "{name}: too few edges ({m})");
            assert!(m <= 8 * n, "{name}: density blow-up ({m} edges)");
        }
        // Power-law: hub node 0 should carry far more traffic than the tail.
        let hub_edges = pl.graph.edges_of_left(0).count();
        let tail_edges = pl.graph.edges_of_left(n - 1).count();
        assert!(
            hub_edges > tail_edges,
            "no hub: {hub_edges} vs {tail_edges}"
        );
    }

    #[test]
    fn sparse_clustered_noise_zero_stays_in_cluster() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let clusters = 4;
        let inst = sparse_clustered(&mut rng, 32, clusters, 5, 0.0, 10, 8, 1);
        for (_, l, r, _) in inst.graph.edges() {
            assert_eq!(l % clusters, r % clusters, "edge {l}->{r} left cluster");
        }
    }

    #[test]
    fn topology_generators_validate_and_plan() {
        use crate::topo::{plan_topology, TopoAlgo};
        use crate::traffic::TickScale;
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let star = star_topology(&mut rng, 5, 4, 10.0, 100.0, 200.0);
        let twob = two_backbone_topology(3, 100.0, 10.0, 300.0, 40.0);
        for topo in [&star, &twob] {
            topo.validate().unwrap();
            let m = routable_traffic(&mut rng, topo, 8);
            let plan = plan_topology(&m, topo, 0.05, TickScale::MILLIS, TopoAlgo::Oggp).unwrap();
            plan.schedule.validate(&plan.instance).unwrap();
            assert!(plan.schedule.cost() >= plan.lower_bound);
        }
        // Unroutable pairs stay zero: cluster-crossed cells of the
        // two-backbone matrix carry no traffic.
        let m = routable_traffic(&mut rng, &twob, 8);
        for i in 0..3 {
            for j in 3..6 {
                assert_eq!(m.get(i, j), 0);
                assert_eq!(m.get(j - 3 + 3, j - 3), 0);
            }
        }
    }

    #[test]
    fn beta_trap_ratio_measured() {
        // The adversarial family: document the worst ratio it achieves and
        // pin it as a regression (stays within the 2x guarantee on exactly
        // solvable sizes).
        let inst = beta_trap(3, 4);
        let opt = optimal_cost(&inst, Limits::default()).expect("tiny");
        let g = ggp(&inst).cost();
        assert!(g <= 2 * opt, "GGP {g} vs optimum {opt}");
    }
}
