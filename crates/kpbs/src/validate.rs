//! Schedule validation: the feasibility conditions of Section 2.2.

use crate::problem::Instance;
use crate::schedule::Schedule;
use bipartite::Weight;
use std::fmt;

/// Why a schedule is infeasible for an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A step contains no transfers (steps must carry work; an empty step
    /// would still cost β).
    EmptyStep {
        /// Index of the offending step.
        step: usize,
    },
    /// A step has more than `effective_k` transfers (backbone constraint).
    TooWide {
        /// Index of the offending step.
        step: usize,
        /// Number of transfers in the step.
        width: usize,
        /// The limit that was exceeded.
        k: usize,
    },
    /// Two transfers of one step share a sender or receiver (1-port).
    PortConflict {
        /// Index of the offending step.
        step: usize,
        /// The shared node (left index if `left` is true, else right index).
        node: usize,
        /// Whether the conflict is on the sender side.
        left: bool,
    },
    /// A transfer references an edge that is not in the instance graph.
    UnknownEdge {
        /// Index of the offending step.
        step: usize,
    },
    /// A transfer has zero duration.
    ZeroAmount {
        /// Index of the offending step.
        step: usize,
    },
    /// The summed slices of an edge do not equal its weight.
    CoverageMismatch {
        /// The edge id in the instance graph.
        edge: u32,
        /// Weight the instance requires.
        expected: Weight,
        /// Total amount the schedule carries.
        got: Weight,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyStep { step } => write!(f, "step {step} is empty"),
            ValidationError::TooWide { step, width, k } => {
                write!(f, "step {step} has {width} transfers, exceeding k = {k}")
            }
            ValidationError::PortConflict { step, node, left } => {
                let side = if *left { "sender" } else { "receiver" };
                write!(f, "step {step} uses {side} {node} more than once")
            }
            ValidationError::UnknownEdge { step } => {
                write!(f, "step {step} references an unknown edge")
            }
            ValidationError::ZeroAmount { step } => {
                write!(f, "step {step} contains a zero-duration transfer")
            }
            ValidationError::CoverageMismatch {
                edge,
                expected,
                got,
            } => write!(
                f,
                "edge {edge} transfers {got} ticks in total but weighs {expected}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks that `schedule` is a feasible K-PBS solution for `inst`:
///
/// 1. every step is non-empty, has at most `effective_k` transfers, and is a
///    matching (1-port on both sides);
/// 2. every transfer has positive duration and references a live edge;
/// 3. the slices of each edge sum to exactly its weight, and every edge is
///    covered (`∪ M_i = G`).
pub fn validate(inst: &Instance, schedule: &Schedule) -> Result<(), ValidationError> {
    let g = &inst.graph;
    let k = inst.effective_k();
    let mut carried: Vec<Weight> = vec![0; g.edge_ids().map(|e| e.index() + 1).max().unwrap_or(0)];

    for (si, step) in schedule.steps.iter().enumerate() {
        if step.transfers.is_empty() {
            return Err(ValidationError::EmptyStep { step: si });
        }
        if step.transfers.len() > k {
            return Err(ValidationError::TooWide {
                step: si,
                width: step.transfers.len(),
                k,
            });
        }
        let mut left_used = vec![false; g.left_count()];
        let mut right_used = vec![false; g.right_count()];
        for t in &step.transfers {
            if t.amount == 0 {
                return Err(ValidationError::ZeroAmount { step: si });
            }
            if t.edge.index() >= carried.len() || !g.is_alive(t.edge) {
                return Err(ValidationError::UnknownEdge { step: si });
            }
            let (l, r) = (g.left_of(t.edge), g.right_of(t.edge));
            if left_used[l] {
                return Err(ValidationError::PortConflict {
                    step: si,
                    node: l,
                    left: true,
                });
            }
            if right_used[r] {
                return Err(ValidationError::PortConflict {
                    step: si,
                    node: r,
                    left: false,
                });
            }
            left_used[l] = true;
            right_used[r] = true;
            carried[t.edge.index()] += t.amount;
        }
    }

    for e in g.edge_ids() {
        let expected = g.weight(e);
        let got = carried[e.index()];
        if expected != got {
            return Err(ValidationError::CoverageMismatch {
                edge: e.0,
                expected,
                got,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Step, Transfer};
    use bipartite::{EdgeId, Graph};

    fn small_instance() -> (Instance, Vec<EdgeId>) {
        let mut g = Graph::new(2, 2);
        let es = vec![g.add_edge(0, 0, 3), g.add_edge(1, 1, 2)];
        (Instance::new(g, 2, 1), es)
    }

    fn transfer(e: EdgeId, amount: Weight) -> Transfer {
        Transfer { edge: e, amount }
    }

    #[test]
    fn valid_one_step_schedule() {
        let (inst, es) = small_instance();
        let s = Schedule {
            steps: vec![Step {
                transfers: vec![transfer(es[0], 3), transfer(es[1], 2)],
            }],
            beta: 1,
        };
        assert!(validate(&inst, &s).is_ok());
    }

    #[test]
    fn valid_preempted_schedule() {
        let (inst, es) = small_instance();
        let s = Schedule {
            steps: vec![
                Step {
                    transfers: vec![transfer(es[0], 1), transfer(es[1], 2)],
                },
                Step {
                    transfers: vec![transfer(es[0], 2)],
                },
            ],
            beta: 1,
        };
        assert!(validate(&inst, &s).is_ok());
    }

    #[test]
    fn empty_step_rejected() {
        let (inst, es) = small_instance();
        let s = Schedule {
            steps: vec![
                Step { transfers: vec![] },
                Step {
                    transfers: vec![transfer(es[0], 3), transfer(es[1], 2)],
                },
            ],
            beta: 1,
        };
        assert_eq!(
            validate(&inst, &s),
            Err(ValidationError::EmptyStep { step: 0 })
        );
    }

    #[test]
    fn too_wide_rejected() {
        let (mut g, _) = (Graph::new(2, 2), ());
        let e0 = g.add_edge(0, 0, 1);
        let e1 = g.add_edge(1, 1, 1);
        let inst = Instance::new(g, 1, 0); // k = 1
        let s = Schedule {
            steps: vec![Step {
                transfers: vec![transfer(e0, 1), transfer(e1, 1)],
            }],
            beta: 0,
        };
        assert!(matches!(
            validate(&inst, &s),
            Err(ValidationError::TooWide { width: 2, k: 1, .. })
        ));
    }

    #[test]
    fn port_conflict_rejected() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 0, 1);
        let e1 = g.add_edge(0, 1, 1);
        let inst = Instance::new(g, 2, 0);
        let s = Schedule {
            steps: vec![Step {
                transfers: vec![transfer(e0, 1), transfer(e1, 1)],
            }],
            beta: 0,
        };
        assert!(matches!(
            validate(&inst, &s),
            Err(ValidationError::PortConflict { left: true, .. })
        ));
    }

    #[test]
    fn undercoverage_rejected() {
        let (inst, es) = small_instance();
        let s = Schedule {
            steps: vec![Step {
                transfers: vec![transfer(es[0], 2), transfer(es[1], 2)],
            }],
            beta: 1,
        };
        assert!(matches!(
            validate(&inst, &s),
            Err(ValidationError::CoverageMismatch {
                expected: 3,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn overcoverage_rejected() {
        let (inst, es) = small_instance();
        let s = Schedule {
            steps: vec![
                Step {
                    transfers: vec![transfer(es[0], 3), transfer(es[1], 2)],
                },
                Step {
                    transfers: vec![transfer(es[0], 1)],
                },
            ],
            beta: 1,
        };
        assert!(matches!(
            validate(&inst, &s),
            Err(ValidationError::CoverageMismatch { .. })
        ));
    }

    #[test]
    fn zero_amount_rejected() {
        let (inst, es) = small_instance();
        let s = Schedule {
            steps: vec![Step {
                transfers: vec![transfer(es[0], 0)],
            }],
            beta: 1,
        };
        assert_eq!(
            validate(&inst, &s),
            Err(ValidationError::ZeroAmount { step: 0 })
        );
    }

    #[test]
    fn missing_edge_coverage_rejected() {
        let (inst, es) = small_instance();
        let s = Schedule {
            steps: vec![Step {
                transfers: vec![transfer(es[0], 3)],
            }],
            beta: 1,
        };
        // es[1] never transferred.
        assert!(matches!(
            validate(&inst, &s),
            Err(ValidationError::CoverageMismatch { got: 0, .. })
        ));
        let _ = es;
    }

    #[test]
    fn empty_schedule_valid_for_trivial_instance() {
        let inst = Instance::new(Graph::new(2, 2), 1, 1);
        let s = Schedule::new(1);
        assert!(validate(&inst, &s).is_ok());
    }
}
