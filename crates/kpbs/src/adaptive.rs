//! Adaptive re-planning when the backbone throughput varies — one of the
//! paper's stated future-work directions (Section 6: "study the problem when
//! the throughput of the backbone varies dynamically"). The multi-step
//! structure makes this natural: after each synchronised step the scheduler
//! observes the current `k` and re-plans the residual graph.

use crate::oggp::oggp;
use crate::problem::Instance;
use crate::schedule::{Schedule, Step};
use bipartite::{Graph, Weight};

/// Supplies the parallelism budget `k` in force when step number `step`
/// (0-based) starts. Typically derived from a backbone-throughput forecast.
pub trait KProfile {
    /// `k` for the given step index; must be ≥ 1.
    fn k_at(&self, step: usize) -> usize;
}

/// A constant `k` (degenerates to plain OGGP).
#[derive(Debug, Clone, Copy)]
pub struct ConstantK(pub usize);

impl KProfile for ConstantK {
    fn k_at(&self, _step: usize) -> usize {
        self.0
    }
}

/// A cyclic sequence of `k` values (e.g. alternating congestion phases).
#[derive(Debug, Clone)]
pub struct CyclicK(pub Vec<usize>);

impl KProfile for CyclicK {
    fn k_at(&self, step: usize) -> usize {
        self.0[step % self.0.len()]
    }
}

/// Schedules `graph` with setup delay `beta` under a time-varying `k`:
/// at each step, re-plan the residual graph with OGGP under the current
/// `k` and execute only the first step of that plan.
///
/// The result satisfies, for every step `i`, the width bound `k_at(i)`
/// (clamped to the side sizes), covers the whole graph, and respects the
/// 1-port model — verify with [`validate_adaptive`].
pub fn adaptive_schedule<P: KProfile>(graph: &Graph, beta: Weight, profile: &P) -> Schedule {
    let mut residual = graph.clone();
    let mut out = Schedule::new(beta);
    let mut step_idx = 0usize;
    while !residual.is_empty() {
        let k = profile
            .k_at(step_idx)
            .clamp(1, residual.left_count().min(residual.right_count()));
        let inst = Instance::new(residual.clone(), k, beta);
        let plan = oggp(&inst);
        let first = plan
            .steps
            .into_iter()
            .next()
            .expect("non-empty residual yields at least one step");
        for t in &first.transfers {
            residual.decrease_weight(t.edge, t.amount);
        }
        out.steps.push(first);
        step_idx += 1;
    }
    out
}

/// Checks an adaptive schedule: per-step width within `k_at(i)`, 1-port, and
/// exact coverage of `graph`.
pub fn validate_adaptive<P: KProfile>(
    graph: &Graph,
    schedule: &Schedule,
    profile: &P,
) -> Result<(), String> {
    let mut carried: Vec<Weight> =
        vec![0; graph.edge_ids().map(|e| e.index() + 1).max().unwrap_or(0)];
    for (i, step) in schedule.steps.iter().enumerate() {
        let k = profile
            .k_at(i)
            .clamp(1, graph.left_count().min(graph.right_count()));
        if step.transfers.is_empty() {
            return Err(format!("step {i} empty"));
        }
        if step.transfers.len() > k {
            return Err(format!(
                "step {i} width {} exceeds k = {k}",
                step.transfers.len()
            ));
        }
        let mut lu = vec![false; graph.left_count()];
        let mut ru = vec![false; graph.right_count()];
        for t in &step.transfers {
            let (l, r) = (graph.left_of(t.edge), graph.right_of(t.edge));
            if lu[l] || ru[r] {
                return Err(format!("step {i} violates 1-port"));
            }
            lu[l] = true;
            ru[r] = true;
            carried[t.edge.index()] += t.amount;
        }
    }
    for e in graph.edge_ids() {
        if carried[e.index()] != graph.weight(e) {
            return Err(format!(
                "edge {} carried {} of {}",
                e.0,
                carried[e.index()],
                graph.weight(e)
            ));
        }
    }
    Ok(())
}

/// Cost of ignoring the variation: plan once with the *initial* `k` and pay
/// every step at the profile's width bound anyway (steps wider than the
/// momentary `k` are split greedily). Used by the `dynamic_backbone` example
/// to show the benefit of re-planning.
pub fn oblivious_schedule<P: KProfile>(graph: &Graph, beta: Weight, profile: &P) -> Schedule {
    let k0 = profile
        .k_at(0)
        .clamp(1, graph.left_count().min(graph.right_count()));
    let inst = Instance::new(graph.clone(), k0, beta);
    let plan = oggp(&inst);
    // Split any step wider than the momentary k into chunks.
    let mut out = Schedule::new(beta);
    let mut idx = 0usize;
    for step in plan.steps {
        let mut rest = step.transfers.as_slice();
        while !rest.is_empty() {
            let k = profile
                .k_at(idx)
                .clamp(1, graph.left_count().min(graph.right_count()));
            let take = rest.len().min(k);
            out.steps.push(Step {
                transfers: rest[..take].to_vec(),
            });
            rest = &rest[take..];
            idx += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::generate::{complete_graph, random_graph, GraphParams};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn constant_profile_matches_oggp_validity() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = complete_graph(&mut rng, 4, 4, (1, 9));
        let s = adaptive_schedule(&g, 1, &ConstantK(2));
        validate_adaptive(&g, &s, &ConstantK(2)).unwrap();
    }

    #[test]
    fn cyclic_profile_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = complete_graph(&mut rng, 5, 5, (1, 6));
        let profile = CyclicK(vec![1, 3, 2]);
        let s = adaptive_schedule(&g, 1, &profile);
        validate_adaptive(&g, &s, &profile).unwrap();
        // Step widths actually vary with the profile.
        for (i, st) in s.steps.iter().enumerate() {
            assert!(st.width() <= profile.k_at(i));
        }
    }

    #[test]
    fn adaptive_beats_or_ties_oblivious_under_shrinkage() {
        // k drops from 4 to 1 after the first step: the oblivious plan
        // built for k = 4 fragments badly.
        let mut rng = SmallRng::seed_from_u64(11);
        let g = complete_graph(&mut rng, 4, 4, (3, 9));
        let profile = CyclicK(vec![4, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2]);
        let adaptive = adaptive_schedule(&g, 1, &profile);
        let oblivious = oblivious_schedule(&g, 1, &profile);
        validate_adaptive(&g, &adaptive, &profile).unwrap();
        validate_adaptive(&g, &oblivious, &profile).unwrap();
        assert!(adaptive.cost() <= oblivious.cost());
    }

    #[test]
    fn random_graphs_adaptive_valid() {
        let mut rng = SmallRng::seed_from_u64(11);
        let params = GraphParams {
            max_nodes_per_side: 6,
            max_edges: 20,
            weight_range: (1, 10),
        };
        for seed in 0..30 {
            let g = random_graph(&mut rng, &params);
            let profile = CyclicK(vec![1 + seed % 3, 2, 1]);
            let s = adaptive_schedule(&g, 1, &profile);
            validate_adaptive(&g, &s, &profile).unwrap();
        }
    }
}
