//! Hierarchical block-decomposed planning — sub-quadratic scheduling for
//! large instances.
//!
//! GGP/OGGP peel perfect matchings over the *whole* bipartite instance:
//! quadratic-plus work that tops out around a few dozen nodes. The
//! hierarchical planner trades a bounded amount of schedule quality for
//! asymptotics, following the Dynamic Hierarchical Birkhoff–von-Neumann
//! decomposition recipe: decompose the traffic matrix at block granularity,
//! recurse inside blocks, and compose. Concretely:
//!
//! 1. **Partition** (`hier_partition`): group the `n1` senders and `n2`
//!    receivers into `b` blocks each with
//!    [`bipartite::partition_affinity`] — a cheap, deterministic affinity
//!    clustering that relabels nodes so blocks capture most of the traffic
//!    (the COSTA pre-pass, at block granularity).
//! 2. **Coarse plan**: build the `b × b` block-level instance (one edge per
//!    active block pair, weight = the pair's total traffic, scaled into a
//!    small range) and schedule it with [`oggp()`](crate::oggp::oggp). Each
//!    coarse step is a matching of blocks; the step at which a block pair
//!    *first* appears assigns it to a macro-step of mutually node-disjoint
//!    pairs.
//! 3. **Block plans** (`hier_block_plans`): every active pair's
//!    sub-instance (its nodes and edges only, `k` split evenly across the
//!    pairs sharing a macro-step) is planned independently with OGGP
//!    through the [`crate::batch`] parallel discipline — the flat-CSR
//!    `MatchingEngine` runs per block, on instances of block size rather
//!    than `n`.
//! 4. **Compose** (`hier_compose`): within a macro-step the active pairs
//!    touch disjoint node sets, so their sub-schedules zip together step
//!    by step — the union of matchings over disjoint blocks is a matching,
//!    and the width budget `Σ k_pair ≤ k` holds by construction. Macro-steps
//!    are emitted in coarse-schedule order.
//!
//! The composed schedule is a feasible K-PBS solution for the original
//! instance ([`crate::validate`] accepts it; the differential proptests in
//! `tests/hier.rs` pin that plus exact delivery). With `blocks = 1` the
//! pipeline degenerates to flat OGGP and reproduces its schedule
//! byte-for-byte. The price of hierarchy is cost, not correctness: blocks
//! cannot share steps across macro-step boundaries, so the evaluation
//! ratio rises — `BENCH_scale.json` tracks both the ratio paid and the
//! (empirically sub-quadratic) planning-time scaling bought.

use crate::batch::plan_many_with;
use crate::oggp::oggp;
use crate::problem::Instance;
use crate::schedule::{Schedule, Step, Transfer};
use bipartite::{partition_affinity, Bipartition, EdgeId, Graph, Weight};
use telemetry::counters::{self, Counter};

/// Coarse edge weights are scaled into `1..=COARSE_SCALE` so the coarse
/// OGGP peels by traffic magnitude (heavy pairs grouped with heavy pairs)
/// without inheriting the raw tick sums, which would make the coarse
/// peeling itself expensive.
const COARSE_SCALE: Weight = 8;

/// Configuration of the hierarchical planner.
#[derive(Debug, Clone, Copy)]
pub struct HierConfig {
    /// Number of blocks per side (clamped to `min(n1, n2)`; `1` reproduces
    /// flat OGGP byte-for-byte).
    pub blocks: usize,
    /// Affinity-refinement sweeps of the partition pass.
    pub sweeps: usize,
    /// Worker threads for the per-block planning fan-out. The composed
    /// schedule is identical for every value (see [`crate::batch`]).
    pub jobs: usize,
}

impl HierConfig {
    /// A config with `blocks` blocks, the default 2 refinement sweeps and
    /// sequential block planning.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks >= 1, "blocks must be at least 1");
        HierConfig {
            blocks,
            sweeps: 2,
            jobs: 1,
        }
    }

    /// Overrides the worker-thread count for block planning.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

/// The block count [`hier`] defaults to for an `n × n` instance: `⌈√n⌉`
/// balances coarse work (`b²`) against block work (`(n/b)²` per block),
/// clamped to `[1, 64]` so the coarse instance itself stays small.
pub fn default_blocks(n: usize) -> usize {
    ((n as f64).sqrt().ceil() as usize).clamp(1, 64)
}

/// What the hierarchical planner did, alongside the schedule itself.
#[derive(Debug, Clone)]
pub struct HierReport {
    /// The composed schedule.
    pub schedule: Schedule,
    /// Blocks per side actually used (after clamping).
    pub blocks: usize,
    /// Block pairs with non-zero traffic (each planned independently).
    pub active_pairs: usize,
    /// Macro-steps the coarse OGGP plan grouped the pairs into.
    pub macro_steps: usize,
    /// Fraction of the total traffic captured on the block diagonal by the
    /// partition (diagnostic; 1.0 means perfectly clustered).
    pub diagonal_fraction: f64,
}

/// Schedules `inst` hierarchically; see the module docs for the pipeline.
pub fn hier(inst: &Instance, cfg: &HierConfig) -> Schedule {
    hier_report(inst, cfg).schedule
}

/// [`hier`], returning the decomposition diagnostics too.
pub fn hier_report(inst: &Instance, cfg: &HierConfig) -> HierReport {
    let _s = telemetry::span("kpbs.hier");
    if inst.is_trivial() {
        return HierReport {
            schedule: Schedule::new(inst.beta),
            blocks: cfg.blocks.max(1),
            active_pairs: 0,
            macro_steps: 0,
            diagonal_fraction: 1.0,
        };
    }

    // Phase 1: block partition.
    let part = {
        let _s = telemetry::span("kpbs.hier_partition");
        partition_affinity(&inst.graph, cfg.blocks, cfg.sweeps)
    };
    let b = part.blocks;

    // Group the instance's edges by block pair, in edge-id order. Pair
    // indices are assigned in first-appearance order, which is
    // deterministic for a given graph and partition.
    let mut pair_index: Vec<usize> = vec![usize::MAX; b * b];
    let mut pairs: Vec<PairBuild> = Vec::new();
    for (e, l, r, w) in inst.graph.edges() {
        let key = part.left_block[l] * b + part.right_block[r];
        let p = if pair_index[key] == usize::MAX {
            pair_index[key] = pairs.len();
            pairs.push(PairBuild {
                left_block: part.left_block[l],
                right_block: part.right_block[r],
                edges: Vec::new(),
                total: 0,
            });
            pairs.len() - 1
        } else {
            pair_index[key]
        };
        pairs[p].edges.push(e);
        pairs[p].total += w;
    }

    // Phase 2: coarse plan over the block matrix. Coarse edge id == pair
    // index; a pair joins the macro-step where it first appears (later
    // slices of a preempted coarse edge are no-ops — within one coarse
    // step the first-appearing pairs are a subset of a block matching,
    // hence node-disjoint).
    let macro_groups: Vec<Vec<usize>> = {
        let _s = telemetry::span("kpbs.hier_coarse");
        coarse_groups(b, &pairs)
    };

    // Phase 3: per-pair sub-instances, k split across the pairs sharing a
    // macro-step (chunked so every pair still gets at least one channel).
    let k = inst.effective_k();
    let node_maps = NodeMaps::build(&part, inst.graph.left_count(), inst.graph.right_count());
    let mut chunks: Vec<Vec<usize>> = Vec::new();
    for group in &macro_groups {
        for chunk in group.chunks(k) {
            chunks.push(chunk.to_vec());
        }
    }
    let sub_instances: Vec<Instance> = {
        let _s = telemetry::span("kpbs.hier_block_plans");
        chunks
            .iter()
            .flat_map(|chunk| {
                let k_pair = (k / chunk.len()).max(1);
                chunk.iter().map(move |&p| (p, k_pair)).collect::<Vec<_>>()
            })
            .map(|(p, k_pair)| sub_instance(inst, &pairs[p], &node_maps, k_pair))
            .collect()
    };
    counters::add(Counter::HierBlockPlans, sub_instances.len() as u64);
    let sub_schedules = {
        let _s = telemetry::span("kpbs.hier_block_plans");
        plan_many_with(&sub_instances, cfg.jobs, oggp).schedules
    };

    // Phase 4: compose. Pairs of one chunk are node-disjoint, so zipping
    // their sub-schedules step-by-step keeps every composed step a
    // matching; chunk budgets keep widths within k.
    let _s = telemetry::span("kpbs.hier_compose");
    let mut out = Schedule::new(inst.beta);
    let mut cursor = 0usize;
    for chunk in &chunks {
        let subs = &sub_schedules[cursor..cursor + chunk.len()];
        let longest = subs.iter().map(|s| s.steps.len()).max().unwrap_or(0);
        for j in 0..longest {
            let mut step = Step::default();
            for (slot, sub) in subs.iter().enumerate() {
                let Some(sub_step) = sub.steps.get(j) else {
                    continue;
                };
                let back = &pairs[chunk[slot]].edges;
                step.transfers
                    .extend(sub_step.transfers.iter().map(|t| Transfer {
                        edge: back[t.edge.index()],
                        amount: t.amount,
                    }));
            }
            if !step.transfers.is_empty() {
                out.steps.push(step);
            }
        }
        cursor += chunk.len();
    }
    counters::add(Counter::HierComposeSteps, out.steps.len() as u64);

    let total: Weight = pairs.iter().map(|p| p.total).sum();
    let diagonal_fraction = if total == 0 {
        1.0
    } else {
        part.diagonal_weight(&inst.graph) as f64 / total as f64
    };
    debug_assert!(out.validate(inst).is_ok());
    HierReport {
        schedule: out,
        blocks: b,
        active_pairs: pairs.len(),
        macro_steps: macro_groups.len(),
        diagonal_fraction,
    }
}

/// A block pair under construction: its edges (in instance edge-id order —
/// the local→original back-mapping of the sub-instance) and total traffic.
struct PairBuild {
    left_block: usize,
    right_block: usize,
    edges: Vec<EdgeId>,
    total: Weight,
}

/// Per-side local node numbering: original node → rank within its block.
struct NodeMaps {
    left_local: Vec<usize>,
    left_size: Vec<usize>,
    right_local: Vec<usize>,
    right_size: Vec<usize>,
}

impl NodeMaps {
    fn build(part: &Bipartition, n1: usize, n2: usize) -> NodeMaps {
        let (left_local, left_size) = side_ranks(&part.left_block, part.blocks, n1);
        let (right_local, right_size) = side_ranks(&part.right_block, part.blocks, n2);
        NodeMaps {
            left_local,
            left_size,
            right_local,
            right_size,
        }
    }
}

/// Ranks each node within its block (ascending node order) and counts the
/// block sizes.
fn side_ranks(block_of: &[usize], blocks: usize, n: usize) -> (Vec<usize>, Vec<usize>) {
    let mut size = vec![0usize; blocks];
    let mut local = vec![0usize; n];
    for (node, &blk) in block_of.iter().enumerate() {
        local[node] = size[blk];
        size[blk] += 1;
    }
    (local, size)
}

/// Builds the sub-instance of one block pair: the pair's nodes renumbered
/// locally, its edges added in instance edge-id order (so local edge id
/// `i` corresponds to `pair.edges[i]`), the shared β and the pair's `k`.
fn sub_instance(inst: &Instance, pair: &PairBuild, maps: &NodeMaps, k_pair: usize) -> Instance {
    let mut g = Graph::new(
        maps.left_size[pair.left_block],
        maps.right_size[pair.right_block],
    );
    for &e in &pair.edges {
        g.add_edge(
            maps.left_local[inst.graph.left_of(e)],
            maps.right_local[inst.graph.right_of(e)],
            inst.graph.weight(e),
        );
    }
    Instance::new(g, k_pair, inst.beta)
}

/// Plans the coarse block-level instance with OGGP and groups the active
/// pairs into macro-steps by first appearance.
fn coarse_groups(b: usize, pairs: &[PairBuild]) -> Vec<Vec<usize>> {
    if pairs.is_empty() {
        return Vec::new();
    }
    let max_total = pairs.iter().map(|p| p.total).max().unwrap_or(1).max(1);
    let mut coarse = Graph::new(b, b);
    for p in pairs {
        // Scale totals into 1..=COARSE_SCALE; coarse edge id == pair index.
        let w = 1 + p.total * (COARSE_SCALE - 1) / max_total;
        coarse.add_edge(p.left_block, p.right_block, w);
    }
    let coarse_inst = Instance::new(coarse, b, 1);
    let coarse_schedule = oggp(&coarse_inst);
    debug_assert!(coarse_schedule.validate(&coarse_inst).is_ok());

    let mut seen = vec![false; pairs.len()];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for step in &coarse_schedule.steps {
        let mut group: Vec<usize> = Vec::new();
        for t in &step.transfers {
            let p = t.edge.index();
            if !seen[p] {
                seen[p] = true;
                group.push(p);
            }
        }
        if !group.is_empty() {
            groups.push(group);
        }
    }
    // Defensive: OGGP covers every coarse edge, so nothing should be left;
    // if anything ever were, singleton groups keep the schedule valid.
    for (p, s) in seen.iter().enumerate() {
        if !s {
            groups.push(vec![p]);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;
    use crate::lower_bound::lower_bound;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn trivial_instance_empty_schedule() {
        let inst = Instance::new(Graph::new(4, 4), 2, 1);
        let r = hier_report(&inst, &HierConfig::new(2));
        assert_eq!(r.schedule.num_steps(), 0);
        assert_eq!(r.active_pairs, 0);
    }

    #[test]
    fn blocks_one_is_flat_oggp() {
        let mut rng = SmallRng::seed_from_u64(9);
        let inst = instances::sparse_uniform(&mut rng, 20, 4, 50, 8, 2);
        let flat = oggp(&inst);
        let h = hier(&inst, &HierConfig::new(1));
        assert_eq!(h, flat, "blocks=1 must reproduce flat OGGP");
    }

    #[test]
    fn valid_on_clustered_instances() {
        let mut rng = SmallRng::seed_from_u64(21);
        for n in [16usize, 32, 48] {
            let inst = instances::sparse_clustered(&mut rng, n, 4, 5, 0.1, 100, n / 4, 1);
            for blocks in [2usize, 4, 7] {
                let r = hier_report(&inst, &HierConfig::new(blocks));
                r.schedule
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("n={n} b={blocks}: {e}"));
                assert!(r.schedule.cost() >= lower_bound(&inst));
                assert!(r.blocks <= blocks);
                assert!(r.active_pairs >= 1);
            }
        }
    }

    #[test]
    fn jobs_invariant_schedules() {
        let mut rng = SmallRng::seed_from_u64(5);
        let inst = instances::sparse_clustered(&mut rng, 32, 4, 6, 0.2, 80, 8, 1);
        let base = hier(&inst, &HierConfig::new(4));
        for jobs in [2usize, 8] {
            assert_eq!(
                hier(&inst, &HierConfig::new(4).with_jobs(jobs)),
                base,
                "jobs={jobs} changed the schedule"
            );
        }
    }

    #[test]
    fn width_respects_k() {
        let mut rng = SmallRng::seed_from_u64(3);
        // k = 3 smaller than the number of blocks: chunking must keep every
        // composed step within the backbone budget.
        let inst = instances::sparse_uniform(&mut rng, 24, 5, 30, 3, 1);
        let s = hier(&inst, &HierConfig::new(6));
        s.validate(&inst).unwrap();
        assert!(s.max_width() <= 3);
    }

    #[test]
    fn default_blocks_scales_as_sqrt() {
        assert_eq!(default_blocks(1), 1);
        assert_eq!(default_blocks(16), 4);
        assert_eq!(default_blocks(256), 16);
        assert_eq!(default_blocks(1024), 32);
        assert_eq!(default_blocks(4096), 64);
        assert_eq!(default_blocks(1 << 20), 64, "clamped");
    }

    #[test]
    fn diagonal_fraction_high_on_block_diagonal_traffic() {
        let mut rng = SmallRng::seed_from_u64(77);
        let inst = instances::sparse_clustered(&mut rng, 32, 4, 6, 0.0, 100, 8, 1);
        let r = hier_report(&inst, &HierConfig::new(4));
        // Clusters are mod-interleaved, so the contiguous seeding starts
        // fully misaligned; the greedy sweeps won't always reach the perfect
        // partition, but they must land far above the 1/b = 0.25 random
        // baseline.
        assert!(
            r.diagonal_fraction > 0.5,
            "block-diagonal traffic poorly captured: {}",
            r.diagonal_fraction
        );
    }
}
