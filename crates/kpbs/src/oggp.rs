//! OGGP — the Optimised Generic Graph Peeling algorithm (Section 4.3).
//!
//! Identical to GGP except for the matching extracted at each peel: OGGP
//! picks the perfect matching whose *minimum* edge weight is maximal
//! (Figure 6), so each step is as long as possible and fewer steps (hence
//! fewer β setups) are paid. Still a 2-approximation — any OGGP solution is
//! also a GGP solution — but empirically much closer to the lower bound
//! (Figures 7–9 of the paper).

use crate::ggp::{schedule_with, schedule_with_mut};
use crate::problem::Instance;
use crate::schedule::Schedule;
use crate::wrgp::{IncrementalMaxMin, MaxMinPerfect};

/// Schedules `inst` with the Optimised Generic Graph Peeling algorithm.
///
/// Runs on the incremental peeling engine, which produces the exact same
/// schedule as the from-scratch [`oggp_reference`] (the per-peel bottleneck
/// matching is computed by the same canonical filtered solve) while reusing
/// the cardinality witness, threshold bound and scratch buffers across
/// peels.
pub fn oggp(inst: &Instance) -> Schedule {
    let _s = telemetry::span("kpbs.oggp");
    schedule_with_mut(inst, &mut IncrementalMaxMin::new())
}

/// The from-scratch OGGP pipeline: one cold bottleneck matching per peel.
/// Kept as the reference oracle for differential tests and benches; agrees
/// with [`oggp`] schedule-for-schedule.
pub fn oggp_reference(inst: &Instance) -> Schedule {
    let _s = telemetry::span("kpbs.oggp_reference");
    schedule_with(inst, &MaxMinPerfect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggp::ggp;
    use crate::lower_bound::lower_bound;
    use bipartite::generate::{random_graph, GraphParams};
    use bipartite::Graph;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn valid_on_figure2_graph() {
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 5);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 1, 8);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 2, 4);
        let inst = Instance::new(g, 3, 1);
        let s = oggp(&inst);
        s.validate(&inst).unwrap();
        let lb = lower_bound(&inst);
        assert!(s.cost() >= lb && s.cost() <= 2 * lb);
    }

    #[test]
    fn oggp_never_more_steps_than_ggp_on_regular_inputs() {
        // On weight-regular inputs with k = n the peeling is pure; the
        // bottleneck matching can only lengthen quanta, reducing peels.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.gen_range(2..7);
            let mut g = Graph::new(n, n);
            for layer in 0..3 {
                let w = rng.gen_range(1..8) + layer;
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                for (l, &r) in perm.iter().enumerate() {
                    g.add_edge(l, r, w);
                }
            }
            let inst = Instance::new(g, n, 1);
            let a = ggp(&inst);
            let b = oggp(&inst);
            a.validate(&inst).unwrap();
            b.validate(&inst).unwrap();
            assert!(
                b.num_steps() <= a.num_steps() + 1,
                "OGGP used {} steps, GGP {}",
                b.num_steps(),
                a.num_steps()
            );
        }
    }

    #[test]
    fn oggp_cost_not_worse_on_random_instances() {
        // Across a random campaign OGGP's mean cost must not exceed GGP's
        // (Figure 7): check the aggregate, not each single instance.
        let mut rng = SmallRng::seed_from_u64(11);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 20),
        };
        let (mut total_ggp, mut total_oggp) = (0u64, 0u64);
        for _ in 0..150 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g, k, 1);
            let a = ggp(&inst);
            let b = oggp(&inst);
            a.validate(&inst).unwrap();
            b.validate(&inst).unwrap();
            total_ggp += a.cost();
            total_oggp += b.cost();
        }
        assert!(
            total_oggp <= total_ggp,
            "OGGP total {total_oggp} worse than GGP total {total_ggp}"
        );
    }

    #[test]
    fn oggp_prefers_long_steps() {
        // Two disjoint heavy edges plus a light one sharing a node: the
        // bottleneck matching transmits the heavy pair at full length first.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 10);
        g.add_edge(1, 1, 10);
        g.add_edge(0, 1, 1);
        let inst = Instance::new(g, 2, 1);
        let s = oggp(&inst);
        s.validate(&inst).unwrap();
        let lb = lower_bound(&inst);
        // W(G) = 11, Δ = 2 → lb = 11 + 2 = 13; OGGP should reach it.
        assert_eq!(lb, 13);
        assert_eq!(s.cost(), lb, "OGGP finds the optimal 2-step schedule");
    }
}
