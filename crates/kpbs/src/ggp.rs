//! GGP — the Generic Graph Peeling algorithm (Section 4.2, Figure 5).
//!
//! Pipeline: β-normalise the weights, embed into a weight-regular graph
//! (Section 4.2.2), peel it with WRGP, keep the real slices of each peel,
//! and map quanta back to real ticks. GGP is a 2-approximation of K-PBS
//! (Theorem 1) with complexity `O((m+n)²·sqrt(n))`.

use crate::normalize::{denormalize, normalize};
use crate::problem::Instance;
use crate::regularize::{regularize, EdgeKind};
use crate::schedule::{Schedule, Step, Transfer};
use crate::wrgp::{
    peel_all, peel_all_incremental, IncrementalAnyPerfect, IncrementalGreedySeeded,
    MatchingStrategy, MatchingStrategyMut, Peel,
};

/// Schedules `inst` with the Generic Graph Peeling algorithm.
///
/// The result is always feasible (see [`crate::validate`]) and costs at most
/// twice the optimum. Runs on the incremental peeling engine: each peel's
/// matching is grown from the survivors of the previous one.
pub fn ggp(inst: &Instance) -> Schedule {
    let _s = telemetry::span("kpbs.ggp");
    schedule_with_mut(inst, &mut IncrementalAnyPerfect::new())
}

/// GGP with a heaviest-first-seeded matching: the same algorithm (and
/// guarantee), but with the open matching choice biased towards heavy
/// edges. Sits between plain GGP and OGGP in practice — see the `ablation`
/// bench and EXPERIMENTS.md.
pub fn ggp_seeded(inst: &Instance) -> Schedule {
    let _s = telemetry::span("kpbs.ggp_seeded");
    schedule_with_mut(inst, &mut IncrementalGreedySeeded::new())
}

/// The shared GGP/OGGP pipeline over a stateless, from-scratch matching
/// strategy. This is the reference oracle the differential tests compare
/// the incremental engine against; the production entry points go through
/// [`schedule_with_mut`].
pub fn schedule_with<S: MatchingStrategy>(inst: &Instance, strategy: &S) -> Schedule {
    if inst.is_trivial() {
        return Schedule::new(inst.beta);
    }
    let norm = {
        let _s = telemetry::span("kpbs.normalize");
        normalize(inst)
    };
    let reg = {
        let _s = telemetry::span("kpbs.regularize");
        regularize(&norm.graph, inst.effective_k())
    };
    // Peeling consumes the regular graph in place (extraction only needs the
    // edge kinds), so the embedding is never cloned.
    let mut work = reg.graph;
    let peels = {
        let _s = telemetry::span("kpbs.peel");
        peel_all(&mut work, strategy)
    };
    let _s = telemetry::span("kpbs.extract");
    extract(inst, &reg.kinds, peels)
}

/// The shared GGP/OGGP pipeline, parameterised by a stateful per-peel
/// matching strategy (Fig. 5 steps 1–4). Used by [`ggp`], [`ggp_seeded`],
/// [`crate::oggp::oggp`] and the ablation benches.
pub fn schedule_with_mut<S: MatchingStrategyMut>(inst: &Instance, strategy: &mut S) -> Schedule {
    if inst.is_trivial() {
        return Schedule::new(inst.beta);
    }
    // Step 1 (Fig. 5): normalise weights by β, rounding up.
    let norm = {
        let _s = telemetry::span("kpbs.normalize");
        normalize(inst)
    };
    // Step 2: add nodes and edges to build a weight-regular graph J.
    let reg = {
        let _s = telemetry::span("kpbs.regularize");
        regularize(&norm.graph, inst.effective_k())
    };
    // Step 3: peel J with WRGP, consuming it in place (extraction only needs
    // the edge kinds, so the embedding is never cloned).
    let mut work = reg.graph;
    let peels = {
        let _s = telemetry::span("kpbs.peel");
        peel_all_incremental(&mut work, strategy)
    };
    let _s = telemetry::span("kpbs.extract");
    extract(inst, &reg.kinds, peels)
}

/// Step 4 of Fig. 5: extract R — keep only the slices of real edges (steps
/// made only of synthetic edges carry no communication and are dropped),
/// then map normalised quanta back to real ticks. Only the edge kinds of the
/// embedding are needed here, which is what lets the callers feed the regular
/// graph itself to the peeling loop by move.
fn extract(inst: &Instance, kinds: &[EdgeKind], peels: Vec<Peel>) -> Schedule {
    let mut normalised = Schedule::new(1);
    for peel in peels {
        let transfers: Vec<Transfer> = peel
            .edges
            .iter()
            .filter_map(|&e| match kinds[e.index()] {
                EdgeKind::Real(o) => Some(o),
                _ => None,
            })
            .map(|origin| Transfer {
                edge: origin,
                amount: peel.quantum,
            })
            .collect();
        if !transfers.is_empty() {
            normalised.steps.push(Step { transfers });
        }
    }
    denormalize(&normalised, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::lower_bound;
    use bipartite::{Graph, Weight};

    fn cost_of(g: Graph, k: usize, beta: Weight) -> (Weight, Weight) {
        let inst = Instance::new(g, k, beta);
        let s = ggp(&inst);
        s.validate(&inst).unwrap_or_else(|e| panic!("invalid: {e}"));
        (s.cost(), lower_bound(&inst))
    }

    #[test]
    fn trivial_instance_empty_schedule() {
        let inst = Instance::new(Graph::new(3, 3), 2, 1);
        let s = ggp(&inst);
        assert_eq!(s.num_steps(), 0);
        assert_eq!(s.cost(), 0);
    }

    #[test]
    fn single_edge_one_step() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 10);
        let inst = Instance::new(g, 1, 2);
        let s = ggp(&inst);
        s.validate(&inst).unwrap();
        assert_eq!(s.num_steps(), 1);
        assert_eq!(s.cost(), 12);
    }

    #[test]
    fn k_one_sequential() {
        // With k = 1 every edge goes alone; an optimal schedule never splits
        // (splitting only adds setups), so cost = Σ(β + w).
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 4);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 1, 3);
        let (cost, lb) = cost_of(g, 1, 1);
        assert_eq!(lb, 4 + 2 + 3 + 3);
        assert!(cost >= lb);
        assert!(cost <= 2 * lb);
    }

    #[test]
    fn parallel_friendly_instance() {
        // Disjoint pairs: everything fits one step when k allows.
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 5);
        g.add_edge(1, 1, 5);
        g.add_edge(2, 2, 5);
        let inst = Instance::new(g, 3, 1);
        let s = ggp(&inst);
        s.validate(&inst).unwrap();
        assert_eq!(s.num_steps(), 1, "perfectly parallel instance: one step");
        assert_eq!(s.cost(), 6);
    }

    #[test]
    fn figure2_graph_within_bounds() {
        // The graph of Figure 2: edges (weights) between 3 senders and 3
        // receivers; k = 3, β = 1. The paper's hand solution costs 15.
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 5);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 1, 8);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 2, 4);
        let inst = Instance::new(g, 3, 1);
        let s = ggp(&inst);
        s.validate(&inst).unwrap();
        let lb = lower_bound(&inst);
        assert!(s.cost() >= lb);
        assert!(
            s.cost() <= 2 * lb,
            "cost {} exceeds twice the bound {}",
            s.cost(),
            lb
        );
    }

    #[test]
    fn respects_k_width() {
        let mut g = Graph::new(4, 4);
        for i in 0..4 {
            g.add_edge(i, i, 7);
        }
        let inst = Instance::new(g, 2, 1);
        let s = ggp(&inst);
        s.validate(&inst).unwrap();
        assert!(s.max_width() <= 2);
    }

    #[test]
    fn beta_zero_supported() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 0, 2);
        let inst = Instance::new(g, 2, 0);
        let s = ggp(&inst);
        s.validate(&inst).unwrap();
        assert!(s.cost() >= lower_bound(&inst));
    }

    #[test]
    fn large_beta_discourages_splitting() {
        // β much larger than any weight: normalisation maps every weight to
        // 1 unit, so no edge is ever split.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 1, 2);
        let inst = Instance::new(g, 2, 100);
        let s = ggp(&inst);
        s.validate(&inst).unwrap();
        // Each edge appears in exactly one step.
        let slices: usize = s.steps.iter().map(|st| st.transfers.len()).sum();
        assert_eq!(slices, 3, "no preemption when β dominates");
    }

    #[test]
    fn random_instances_valid_and_bounded() {
        use bipartite::generate::{random_graph, GraphParams};
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        let params = GraphParams {
            max_nodes_per_side: 10,
            max_edges: 60,
            weight_range: (1, 20),
        };
        for _ in 0..200 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let beta = rng.gen_range(0..4);
            let inst = Instance::new(g, k, beta);
            let s = ggp(&inst);
            s.validate(&inst).unwrap_or_else(|e| panic!("invalid: {e}"));
            assert!(s.cost() >= lower_bound(&inst));
        }
    }
}
