//! Heterogeneous multi-backbone topologies and per-bottleneck planning.
//!
//! The paper's platform is two *homogeneous* clusters joined by one
//! backbone; [`Platform`] captures exactly that. Real fleets are neither
//! uniform nor flat: per-node NIC speeds differ (the star model of
//! Marchal–Rehn–Robert–Vivien) and clusters of clusters hang off several
//! backbones. This module generalises the model declaratively:
//!
//! * a [`Topology`] is a list of [`NodeSpec`]s (per-node NIC speeds, cluster
//!   membership) plus a list of [`BackboneSpec`]s (capacity, which ordered
//!   cluster pair the link carries);
//! * every backbone derives its **own** preemption bound
//!   [`Topology::link_k`] — `k_b = ⌊T_b / t_max_b⌋` where `t_max_b` is the
//!   fastest pair speed the link can see — instead of the global
//!   [`Platform::k`];
//! * [`plan_topology`] routes each traffic-matrix cell to its governing
//!   backbone, plans every backbone's sub-instance independently (GGP, OGGP
//!   or the hierarchical planner) under that backbone's `k_b`, and composes
//!   the per-backbone schedules — zipping backbones that touch disjoint
//!   clusters, concatenating the rest — into one [`Schedule`] validated
//!   against the global instance;
//! * [`topo_lower_bound`] replaces the uniform-speed Cohen–Jeannot–Padoy
//!   bound: node busy times use per-pair speeds and the volume/step terms
//!   are taken per backbone under its `k_b`.
//!
//! The homogeneous two-cluster topology is the *oracle*: it reduces exactly
//! to [`Platform`] ([`Topology::as_platform`]) and produces byte-identical
//! instances and schedules — the differential proptests in `tests/topo.rs`
//! pin that reduction.

use crate::hier::{hier, HierConfig};
use crate::platform::Platform;
use crate::problem::Instance;
use crate::schedule::{Schedule, Step, Transfer};
use crate::traffic::{TickScale, TrafficMatrix};
use crate::validate::ValidationError;
use crate::{ggp, lower_bound, oggp};
use bipartite::{properties, EdgeId, Graph, Weight};
use serde::{Deserialize, Serialize};
use telemetry::counters::{self, Counter};

/// One endpoint node: its NIC speeds (Mbit/s) and the cluster it lives in.
///
/// Whether `nic_out` or `nic_in` matters depends on the node's role, which
/// follows from its cluster: nodes of clusters that appear as the *source*
/// of a [`BackboneSpec`] are senders, nodes of destination clusters are
/// receivers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Egress NIC throughput, Mbit/s.
    pub nic_out: f64,
    /// Ingress NIC throughput, Mbit/s.
    pub nic_in: f64,
    /// Cluster this node belongs to.
    pub cluster: usize,
}

/// A backbone link: its capacity (Mbit/s) and the ordered cluster pair
/// whose traffic it carries (`connects.0` → `connects.1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackboneSpec {
    /// Link throughput `T_b`, Mbit/s.
    pub capacity: f64,
    /// `(source cluster, destination cluster)`.
    pub connects: (usize, usize),
}

/// A declarative platform description: star platforms, per-node NIC speeds
/// and multi-level cluster-of-clusters with several backbones.
///
/// Senders are the nodes of source clusters in `nodes` order; receivers the
/// nodes of destination clusters likewise. The traffic matrix a topology
/// plans is indexed by those *ranks*, exactly as [`Platform`] indexes its
/// `n1 × n2` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Every node of the platform.
    pub nodes: Vec<NodeSpec>,
    /// Every backbone link.
    pub links: Vec<BackboneSpec>,
}

/// Failures of topology-aware planning.
#[derive(Debug)]
pub enum TopoError {
    /// The topology failed [`Topology::validate`].
    Invalid(String),
    /// Traffic matrix and topology dimensions disagree.
    DimensionMismatch(String),
    /// A non-zero traffic cell has no backbone connecting its clusters.
    Unroutable {
        /// Sender rank of the unroutable cell.
        sender: usize,
        /// Receiver rank of the unroutable cell.
        receiver: usize,
    },
    /// The composed schedule failed validation (a planner bug, surfaced
    /// rather than silently returned).
    InvalidSchedule(ValidationError),
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoError::Invalid(m) => write!(f, "invalid topology: {m}"),
            TopoError::DimensionMismatch(m) => write!(f, "dimension mismatch: {m}"),
            TopoError::Unroutable { sender, receiver } => write!(
                f,
                "no backbone connects sender {sender} to receiver {receiver}"
            ),
            TopoError::InvalidSchedule(e) => write!(f, "composed schedule invalid: {e}"),
        }
    }
}

impl std::error::Error for TopoError {}

impl Topology {
    /// The paper's two-cluster platform as a topology: `n1` senders at `t1`
    /// Mbit/s, `n2` receivers at `t2`, one backbone of `backbone` Mbit/s.
    /// This is the homogeneous oracle — see [`Topology::as_platform`].
    pub fn two_cluster(n1: usize, n2: usize, t1: f64, t2: f64, backbone: f64) -> Topology {
        let mut nodes = Vec::with_capacity(n1 + n2);
        nodes.extend(std::iter::repeat_n(
            NodeSpec {
                nic_out: t1,
                nic_in: t1,
                cluster: 0,
            },
            n1,
        ));
        nodes.extend(std::iter::repeat_n(
            NodeSpec {
                nic_out: t2,
                nic_in: t2,
                cluster: 1,
            },
            n2,
        ));
        Topology {
            nodes,
            links: vec![BackboneSpec {
                capacity: backbone,
                connects: (0, 1),
            }],
        }
    }

    /// The topology corresponding to a [`Platform`].
    pub fn from_platform(p: &Platform) -> Topology {
        Topology::two_cluster(p.n1, p.n2, p.t1, p.t2, p.backbone)
    }

    /// A star platform (Marchal et al.): every node has its own NIC speed,
    /// all transfers cross one shared backbone.
    ///
    /// # Panics
    ///
    /// Panics if either side is empty.
    pub fn star(nic_out: &[f64], nic_in: &[f64], backbone: f64) -> Topology {
        assert!(
            !nic_out.is_empty() && !nic_in.is_empty(),
            "star needs nodes on both sides"
        );
        let mut nodes = Vec::with_capacity(nic_out.len() + nic_in.len());
        for &t in nic_out {
            nodes.push(NodeSpec {
                nic_out: t,
                nic_in: t,
                cluster: 0,
            });
        }
        for &t in nic_in {
            nodes.push(NodeSpec {
                nic_out: t,
                nic_in: t,
                cluster: 1,
            });
        }
        Topology {
            nodes,
            links: vec![BackboneSpec {
                capacity: backbone,
                connects: (0, 1),
            }],
        }
    }

    /// Checks the topology: non-empty, finite positive NIC speeds and
    /// capacities, links joining distinct clusters with consistent roles
    /// (no cluster is both a source and a destination), no duplicate
    /// cluster pair, every linked cluster populated and every node's
    /// cluster linked.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("topology has no nodes".into());
        }
        if self.links.is_empty() {
            return Err("topology has no backbone links".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !(n.nic_out.is_finite() && n.nic_out > 0.0) {
                return Err(format!("node {i}: nic_out must be positive and finite"));
            }
            if !(n.nic_in.is_finite() && n.nic_in > 0.0) {
                return Err(format!("node {i}: nic_in must be positive and finite"));
            }
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (b, l) in self.links.iter().enumerate() {
            if !(l.capacity.is_finite() && l.capacity > 0.0) {
                return Err(format!("link {b}: capacity must be positive and finite"));
            }
            let (src, dst) = l.connects;
            if src == dst {
                return Err(format!("link {b}: connects cluster {src} to itself"));
            }
            if pairs.contains(&(src, dst)) {
                return Err(format!("link {b}: duplicate link for clusters {src}→{dst}"));
            }
            pairs.push((src, dst));
        }
        for &(src, _) in &pairs {
            if pairs.iter().any(|&(_, d)| d == src) {
                return Err(format!(
                    "cluster {src} is both a source and a destination of backbone links"
                ));
            }
        }
        for &(src, dst) in &pairs {
            for c in [src, dst] {
                if !self.nodes.iter().any(|n| n.cluster == c) {
                    return Err(format!("cluster {c} is linked but has no nodes"));
                }
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !pairs.iter().any(|&(s, d)| s == n.cluster || d == n.cluster) {
                return Err(format!(
                    "node {i}: cluster {} is not connected by any backbone",
                    n.cluster
                ));
            }
        }
        Ok(())
    }

    /// True when `cluster` appears as the source of some link.
    fn is_sender_cluster(&self, cluster: usize) -> bool {
        self.links.iter().any(|l| l.connects.0 == cluster)
    }

    /// Node indices of all senders, in `nodes` order (rank = position).
    pub fn sender_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.is_sender_cluster(self.nodes[i].cluster))
            .collect()
    }

    /// Node indices of all receivers, in `nodes` order (rank = position).
    pub fn receiver_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| {
                self.links
                    .iter()
                    .any(|l| l.connects.1 == self.nodes[i].cluster)
            })
            .collect()
    }

    /// Number of sender nodes (the traffic matrix's row count).
    pub fn senders(&self) -> usize {
        self.sender_nodes().len()
    }

    /// Number of receiver nodes (the traffic matrix's column count).
    pub fn receivers(&self) -> usize {
        self.receiver_nodes().len()
    }

    /// Egress NIC speeds of the senders, in rank order (Mbit/s).
    pub fn sender_speeds(&self) -> Vec<f64> {
        self.sender_nodes()
            .iter()
            .map(|&i| self.nodes[i].nic_out)
            .collect()
    }

    /// Ingress NIC speeds of the receivers, in rank order (Mbit/s).
    pub fn receiver_speeds(&self) -> Vec<f64> {
        self.receiver_nodes()
            .iter()
            .map(|&i| self.nodes[i].nic_in)
            .collect()
    }

    /// The link carrying traffic from sender rank `i` to receiver rank `j`,
    /// if any (`None` means the pair is unroutable).
    pub fn route(&self, i: usize, j: usize) -> Option<usize> {
        let cs = self.nodes[*self.sender_nodes().get(i)?].cluster;
        let cd = self.nodes[*self.receiver_nodes().get(j)?].cluster;
        self.links.iter().position(|l| l.connects == (cs, cd))
    }

    /// The per-bottleneck preemption bound `k_b` of link `b`.
    ///
    /// Generalises [`Platform::k`]: a transfer on link `b` moves at its pair
    /// speed `min(nic_out_i, nic_in_j) ≤ t_max_b`, where `t_max_b =
    /// min(max_i nic_out_i, max_j nic_in_j)` over the link's endpoints, so
    /// `⌊T_b / t_max_b⌋` concurrent transfers never congest the link;
    /// clamped to `[1, min(n_senders, n_receivers)]` like the uniform bound
    /// (the same `1e-9` epsilon absorbs exact-multiple float noise). On the
    /// homogeneous two-cluster topology this is exactly [`Platform::k`].
    pub fn link_k(&self, b: usize) -> usize {
        let link = &self.links[b];
        let out_max = self
            .nodes
            .iter()
            .filter(|n| n.cluster == link.connects.0)
            .map(|n| n.nic_out)
            .fold(f64::NEG_INFINITY, f64::max);
        let in_max = self
            .nodes
            .iter()
            .filter(|n| n.cluster == link.connects.1)
            .map(|n| n.nic_in)
            .fold(f64::NEG_INFINITY, f64::max);
        let ns = self
            .nodes
            .iter()
            .filter(|n| n.cluster == link.connects.0)
            .count();
        let nr = self
            .nodes
            .iter()
            .filter(|n| n.cluster == link.connects.1)
            .count();
        let t_max = out_max.min(in_max);
        let by_backbone = (link.capacity / t_max + 1e-9).floor() as usize;
        by_backbone.clamp(1, ns.min(nr).max(1))
    }

    /// All per-bottleneck bounds, one per link (counted as
    /// [`Counter::TopoDeriveK`] work).
    pub fn link_ks(&self) -> Vec<usize> {
        counters::add(Counter::TopoDeriveK, self.links.len() as u64);
        (0..self.links.len()).map(|b| self.link_k(b)).collect()
    }

    /// The [`Platform`] this topology reduces to, when it is exactly the
    /// paper's shape: two clusters, one backbone, uniform sender egress and
    /// uniform receiver ingress speeds. The oracle check: planning through
    /// the topology path and through the platform path must then produce
    /// byte-identical schedules.
    pub fn as_platform(&self) -> Option<Platform> {
        if self.links.len() != 1 || self.validate().is_err() {
            return None;
        }
        let out = self.sender_speeds();
        let inn = self.receiver_speeds();
        let (&t1, &t2) = (out.first()?, inn.first()?);
        if out.iter().any(|&t| t != t1) || inn.iter().any(|&t| t != t2) {
            return None;
        }
        Some(Platform::new(
            out.len(),
            inn.len(),
            t1,
            t2,
            self.links[0].capacity,
        ))
    }

    /// Parses the simple text format the `--topo FILE` CLI flag accepts:
    ///
    /// ```text
    /// # comment
    /// node OUT_MBPS IN_MBPS CLUSTER [COUNT]
    /// link CAPACITY_MBPS SRC_CLUSTER DST_CLUSTER
    /// ```
    ///
    /// `node` lines append `COUNT` (default 1) identical nodes; `link`
    /// lines append one backbone. The parsed topology is validated — this
    /// is the wire-decoding choke point.
    pub fn parse(text: &str) -> Result<Topology, String> {
        let mut topo = Topology {
            nodes: Vec::new(),
            links: Vec::new(),
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let ctx = |m: &str| format!("line {}: {m}", lineno + 1);
            match fields[0] {
                "node" => {
                    if !(4..=5).contains(&fields.len()) {
                        return Err(ctx("want: node OUT IN CLUSTER [COUNT]"));
                    }
                    let nic_out: f64 = fields[1].parse().map_err(|_| ctx("bad OUT"))?;
                    let nic_in: f64 = fields[2].parse().map_err(|_| ctx("bad IN"))?;
                    let cluster: usize = fields[3].parse().map_err(|_| ctx("bad CLUSTER"))?;
                    let count: usize = match fields.get(4) {
                        Some(c) => c.parse().map_err(|_| ctx("bad COUNT"))?,
                        None => 1,
                    };
                    topo.nodes.extend(std::iter::repeat_n(
                        NodeSpec {
                            nic_out,
                            nic_in,
                            cluster,
                        },
                        count,
                    ));
                }
                "link" => {
                    if fields.len() != 4 {
                        return Err(ctx("want: link CAPACITY SRC DST"));
                    }
                    let capacity: f64 = fields[1].parse().map_err(|_| ctx("bad CAPACITY"))?;
                    let src: usize = fields[2].parse().map_err(|_| ctx("bad SRC"))?;
                    let dst: usize = fields[3].parse().map_err(|_| ctx("bad DST"))?;
                    topo.links.push(BackboneSpec {
                        capacity,
                        connects: (src, dst),
                    });
                }
                other => return Err(ctx(&format!("unknown directive '{other}'"))),
            }
        }
        topo.validate()?;
        Ok(topo)
    }

    /// Renders the topology in the [`Topology::parse`] text format
    /// (consecutive identical nodes collapsed into one `COUNT` line).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut i = 0;
        while i < self.nodes.len() {
            let n = self.nodes[i];
            let mut count = 1;
            while i + count < self.nodes.len() && self.nodes[i + count] == n {
                count += 1;
            }
            let _ = writeln!(
                out,
                "node {} {} {} {}",
                n.nic_out, n.nic_in, n.cluster, count
            );
            i += count;
        }
        for l in &self.links {
            let _ = writeln!(out, "link {} {} {}", l.capacity, l.connects.0, l.connects.1);
        }
        out
    }
}

/// Which scheduler plans each backbone's sub-instance.
#[derive(Debug, Clone, Copy)]
pub enum TopoAlgo {
    /// Optimised Generic Graph Peeling (the default).
    Oggp,
    /// Generic Graph Peeling.
    Ggp,
    /// The hierarchical block-decomposed planner.
    Hier(HierConfig),
}

impl TopoAlgo {
    fn plan(&self, inst: &Instance) -> Schedule {
        match self {
            TopoAlgo::Oggp => oggp(inst),
            TopoAlgo::Ggp => ggp(inst),
            TopoAlgo::Hier(cfg) => hier(inst, cfg),
        }
    }
}

/// What one backbone's sub-plan looked like.
#[derive(Debug, Clone)]
pub struct LinkPlan {
    /// Link index into [`Topology::links`].
    pub link: usize,
    /// Per-bottleneck preemption bound the sub-plan ran under.
    pub k: usize,
    /// Messages routed over this link.
    pub messages: usize,
    /// Ticks of transfer volume routed over this link.
    pub volume_ticks: Weight,
    /// Cost of the link's sub-schedule, in ticks (0 when idle).
    pub cost: Weight,
    /// Cohen–Jeannot–Padoy bound of the link's sub-instance, in ticks.
    pub lower_bound: Weight,
}

/// A topology-aware plan: the global heterogeneous instance, the composed
/// validated schedule, and the per-backbone breakdown.
#[derive(Debug, Clone)]
pub struct TopoPlan {
    /// Global instance: every message as an edge weighted by its duration
    /// at the *pair* speed `min(nic_out_i, nic_in_j)`; `k` is the widest
    /// concurrent budget the composition uses.
    pub instance: Instance,
    /// `(sender rank, receiver rank)` behind each dense edge id.
    pub endpoints: Vec<(usize, usize)>,
    /// Byte volume behind each dense edge id.
    pub bytes: Vec<u64>,
    /// The composed schedule, validated against `instance`.
    pub schedule: Schedule,
    /// Per-backbone sub-plan summaries, one per topology link.
    pub link_plans: Vec<LinkPlan>,
    /// The heterogeneity-aware lower bound ([`topo_lower_bound`]), ticks.
    pub lower_bound: Weight,
}

impl TopoPlan {
    /// `cost / lower_bound` — the paper's evaluation ratio under the
    /// heterogeneity-aware bound (1.0 for an empty plan).
    pub fn evaluation_ratio(&self) -> f64 {
        let lb = self.lower_bound;
        if lb == 0 {
            return 1.0;
        }
        self.schedule.cost() as f64 / lb as f64
    }
}

/// Per-link routing of a traffic matrix: the global graph, endpoints,
/// bytes, and each link's edges in global edge-id order.
struct Routing {
    graph: Graph,
    endpoints: Vec<(usize, usize)>,
    bytes: Vec<u64>,
    /// Global edge ids routed to each link (link-local edge id `i` of link
    /// `b` is `link_edges[b][i]` — the composition back-map).
    link_edges: Vec<Vec<EdgeId>>,
}

/// Routes every non-zero cell to its governing backbone, converting bytes
/// to ticks at the pair speed. The single choke point both the planner and
/// the standalone lower bound share.
fn route(traffic: &TrafficMatrix, topo: &Topology, scale: TickScale) -> Result<Routing, TopoError> {
    topo.validate().map_err(TopoError::Invalid)?;
    let senders = topo.sender_nodes();
    let receivers = topo.receiver_nodes();
    if traffic.senders() != senders.len() || traffic.receivers() != receivers.len() {
        return Err(TopoError::DimensionMismatch(format!(
            "traffic {}×{} vs topology {}×{}",
            traffic.senders(),
            traffic.receivers(),
            senders.len(),
            receivers.len()
        )));
    }
    // Cluster pair → link index.
    let link_of = |cs: usize, cd: usize| topo.links.iter().position(|l| l.connects == (cs, cd));
    let mut graph = Graph::new(senders.len(), receivers.len());
    let mut endpoints = Vec::with_capacity(traffic.message_count());
    let mut bytes = Vec::with_capacity(traffic.message_count());
    let mut link_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); topo.links.len()];
    for (i, &si) in senders.iter().enumerate() {
        for (j, &rj) in receivers.iter().enumerate() {
            let b = traffic.get(i, j);
            if b == 0 {
                continue;
            }
            let Some(link) = link_of(topo.nodes[si].cluster, topo.nodes[rj].cluster) else {
                return Err(TopoError::Unroutable {
                    sender: i,
                    receiver: j,
                });
            };
            // The exact per-cell conversion of `TrafficMatrix::to_instance`,
            // at the pair speed instead of the platform-wide minimum.
            let speed = topo.nodes[si].nic_out.min(topo.nodes[rj].nic_in);
            let speed_bytes_per_s = speed * 1e6 / 8.0;
            let w = scale.to_ticks(b as f64 / speed_bytes_per_s);
            let e = graph.add_edge(i, j, w);
            endpoints.push((i, j));
            bytes.push(b);
            link_edges[link].push(e);
        }
    }
    counters::add(Counter::TopoRouteMessages, endpoints.len() as u64);
    Ok(Routing {
        graph,
        endpoints,
        bytes,
        link_edges,
    })
}

/// Groups link indices so that links within a group touch pairwise-disjoint
/// clusters (their schedules may run in parallel); greedy first-fit in link
/// order, deterministic for a given topology.
fn disjoint_groups(topo: &Topology, active: &[usize]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (links, clusters)
    for &b in active {
        let (s, d) = topo.links[b].connects;
        match groups
            .iter_mut()
            .find(|(_, cl)| !cl.contains(&s) && !cl.contains(&d))
        {
            Some((links, clusters)) => {
                links.push(b);
                clusters.extend([s, d]);
            }
            None => groups.push((vec![b], vec![s, d])),
        }
    }
    groups.into_iter().map(|(links, _)| links).collect()
}

/// Plans `traffic` over `topo`: routes every message to its backbone,
/// plans each backbone's sub-instance under its own `k_b` with `algo`, and
/// composes the sub-schedules into one validated [`Schedule`].
///
/// On the homogeneous two-cluster topology the result is byte-identical to
/// planning `traffic.to_instance(&platform, …)` with the same algorithm —
/// the oracle reduction.
pub fn plan_topology(
    traffic: &TrafficMatrix,
    topo: &Topology,
    beta_seconds: f64,
    scale: TickScale,
    algo: TopoAlgo,
) -> Result<TopoPlan, TopoError> {
    let _s = telemetry::span("kpbs.topo_plan");
    let routing = route(traffic, topo, scale)?;
    let beta = scale.to_ticks(beta_seconds);
    let ks = topo.link_ks();
    let senders = topo.sender_nodes();
    let receivers = topo.receiver_nodes();

    // Per-link sub-instances: the link's clusters renumbered locally (all
    // their nodes, mirroring `to_instance` which keeps idle nodes), edges
    // in global edge-id order so local edge id i maps back through
    // `link_edges[b][i]`.
    let mut link_plans: Vec<LinkPlan> = Vec::with_capacity(topo.links.len());
    let mut sub_schedules: Vec<Option<Schedule>> = Vec::with_capacity(topo.links.len());
    for (b, edges) in routing.link_edges.iter().enumerate() {
        if edges.is_empty() {
            link_plans.push(LinkPlan {
                link: b,
                k: ks[b],
                messages: 0,
                volume_ticks: 0,
                cost: 0,
                lower_bound: 0,
            });
            sub_schedules.push(None);
            continue;
        }
        let (cs, cd) = topo.links[b].connects;
        let mut left_local = vec![usize::MAX; senders.len()];
        let mut right_local = vec![usize::MAX; receivers.len()];
        let mut nl = 0;
        for (rank, &node) in senders.iter().enumerate() {
            if topo.nodes[node].cluster == cs {
                left_local[rank] = nl;
                nl += 1;
            }
        }
        let mut nr = 0;
        for (rank, &node) in receivers.iter().enumerate() {
            if topo.nodes[node].cluster == cd {
                right_local[rank] = nr;
                nr += 1;
            }
        }
        let mut g = Graph::new(nl, nr);
        for &e in edges {
            g.add_edge(
                left_local[routing.graph.left_of(e)],
                right_local[routing.graph.right_of(e)],
                routing.graph.weight(e),
            );
        }
        let sub = Instance::new(g, ks[b], beta);
        let schedule = algo.plan(&sub);
        debug_assert!(schedule.validate(&sub).is_ok());
        link_plans.push(LinkPlan {
            link: b,
            k: ks[b],
            messages: edges.len(),
            volume_ticks: sub.total_weight(),
            cost: schedule.cost(),
            lower_bound: lower_bound(&sub),
        });
        sub_schedules.push(Some(schedule));
    }

    // Compose: links over disjoint clusters zip step-by-step (the union of
    // matchings over disjoint node sets is a matching); conflicting links
    // run in consecutive groups.
    let active: Vec<usize> = (0..topo.links.len())
        .filter(|&b| sub_schedules[b].is_some())
        .collect();
    let groups = disjoint_groups(topo, &active);
    let mut out = Schedule::new(beta);
    let mut k_global = 1usize;
    for group in &groups {
        k_global = k_global.max(group.iter().map(|&b| ks[b]).sum());
        let longest = group
            .iter()
            .map(|&b| sub_schedules[b].as_ref().map_or(0, |s| s.steps.len()))
            .max()
            .unwrap_or(0);
        for j in 0..longest {
            let mut step = Step::default();
            for &b in group {
                let Some(sub_step) = sub_schedules[b].as_ref().and_then(|s| s.steps.get(j)) else {
                    continue;
                };
                let back = &routing.link_edges[b];
                step.transfers
                    .extend(sub_step.transfers.iter().map(|t| Transfer {
                        edge: back[t.edge.index()],
                        amount: t.amount,
                    }));
            }
            if !step.transfers.is_empty() {
                out.steps.push(step);
            }
        }
    }
    counters::add(Counter::TopoComposeSteps, out.steps.len() as u64);

    let lb = bound_from(&routing.graph, &routing.link_edges, &ks, beta);
    let instance = Instance::new(routing.graph, k_global, beta);
    out.validate(&instance)
        .map_err(TopoError::InvalidSchedule)?;
    Ok(TopoPlan {
        instance,
        endpoints: routing.endpoints,
        bytes: routing.bytes,
        schedule: out,
        link_plans,
        lower_bound: lb,
    })
}

/// The heterogeneity-aware lower bound over an already-routed instance.
fn bound_from(graph: &Graph, link_edges: &[Vec<EdgeId>], ks: &[usize], beta: Weight) -> Weight {
    if graph.is_empty() {
        return 0;
    }
    let w = properties::max_node_weight(graph);
    let delta = properties::max_degree(graph) as u64;
    let mut volume_term: Weight = 0;
    let mut steps_term: u64 = 0;
    for (b, edges) in link_edges.iter().enumerate() {
        if edges.is_empty() {
            continue;
        }
        let k = ks[b] as Weight;
        let p: Weight = edges.iter().map(|&e| graph.weight(e)).sum();
        volume_term = volume_term.max(p.div_ceil(k));
        steps_term = steps_term.max((edges.len() as u64).div_ceil(ks[b] as u64));
    }
    w.max(volume_term) + beta * steps_term.max(delta)
}

/// The heterogeneity-aware lower bound on any feasible schedule of
/// `traffic` over `topo`, in ticks:
///
/// * **transmission** — `max(W, max_b ⌈P_b / k_b⌉)`: the busiest node keeps
///   its single port busy for its total pair-speed duration `W`, and link
///   `b` carries at most `k_b` of its own slices per step;
/// * **setup** — `β · max(Δ, max_b ⌈m_b / k_b⌉)`: 1-port forces a node's
///   `Δ` transfers into distinct steps and each step covers at most `k_b`
///   of link `b`'s edges.
///
/// On the homogeneous two-cluster topology this is exactly
/// [`lower_bound()`](crate::lower_bound::lower_bound) of the platform
/// instance.
pub fn topo_lower_bound(
    traffic: &TrafficMatrix,
    topo: &Topology,
    beta_seconds: f64,
    scale: TickScale,
) -> Result<Weight, TopoError> {
    let routing = route(traffic, topo, scale)?;
    let ks = topo.link_ks();
    Ok(bound_from(
        &routing.graph,
        &routing.link_edges,
        &ks,
        scale.to_ticks(beta_seconds),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_traffic(n1: usize, n2: usize) -> TrafficMatrix {
        let mut m = TrafficMatrix::zeros(n1, n2);
        for i in 0..n1 {
            for j in 0..n2 {
                m.set(i, j, 1_000_000 * (1 + ((i * n2 + j) % 7)) as u64);
            }
        }
        m
    }

    #[test]
    fn two_cluster_reduces_to_platform() {
        let p = Platform::new(5, 3, 10.0, 100.0, 50.0);
        let t = Topology::from_platform(&p);
        assert!(t.validate().is_ok());
        assert_eq!(t.senders(), 5);
        assert_eq!(t.receivers(), 3);
        assert_eq!(t.as_platform(), Some(p));
        assert_eq!(t.link_k(0), p.k());
    }

    #[test]
    fn link_k_matches_platform_k_across_shapes() {
        for (n1, n2, t1, t2, bb) in [
            (200, 100, 10.0, 100.0, 1000.0),
            (10, 10, 100.0, 100.0, 300.0),
            (4, 4, 100.0, 100.0, 10.0),
            (2, 8, 10.0, 10.0, 1000.0),
            (10, 10, 100.0 / 7.0, 100.0 / 7.0, 100.0),
        ] {
            let p = Platform::new(n1, n2, t1, t2, bb);
            assert_eq!(
                Topology::from_platform(&p).link_k(0),
                p.k(),
                "{n1}x{n2} {t1}/{t2}/{bb}"
            );
        }
    }

    #[test]
    fn invalid_topologies_rejected() {
        let ok = Topology::two_cluster(2, 2, 100.0, 100.0, 100.0);
        assert!(ok.validate().is_ok());

        let mut t = ok.clone();
        t.nodes[0].nic_out = 0.0;
        assert!(t.validate().is_err(), "zero NIC");
        let mut t = ok.clone();
        t.nodes[1].nic_in = f64::NAN;
        assert!(t.validate().is_err(), "NaN NIC");
        let mut t = ok.clone();
        t.links[0].capacity = f64::INFINITY;
        assert!(t.validate().is_err(), "infinite capacity");
        let mut t = ok.clone();
        t.links[0].capacity = -5.0;
        assert!(t.validate().is_err(), "negative capacity");
        let mut t = ok.clone();
        t.links[0].connects = (0, 0);
        assert!(t.validate().is_err(), "self link");
        let mut t = ok.clone();
        t.links.push(t.links[0]);
        assert!(t.validate().is_err(), "duplicate link");
        let mut t = ok.clone();
        t.links.push(BackboneSpec {
            capacity: 10.0,
            connects: (1, 0),
        });
        assert!(t.validate().is_err(), "cluster both source and destination");
        let mut t = ok.clone();
        t.nodes.push(NodeSpec {
            nic_out: 1.0,
            nic_in: 1.0,
            cluster: 9,
        });
        assert!(t.validate().is_err(), "unlinked cluster");
        let mut t = ok.clone();
        t.links[0].connects = (0, 7);
        assert!(t.validate().is_err(), "linked cluster without nodes");
        assert!(Topology {
            nodes: vec![],
            links: vec![]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn homogeneous_plan_is_byte_identical_to_platform_plan() {
        let p = Platform::new(6, 4, 40.0, 100.0, 120.0);
        let topo = Topology::from_platform(&p);
        let m = demo_traffic(6, 4);
        let (inst, endpoints) = m.to_instance(&p, 0.05, TickScale::MILLIS);
        let plan = plan_topology(&m, &topo, 0.05, TickScale::MILLIS, TopoAlgo::Oggp).unwrap();
        assert_eq!(plan.instance.k, inst.k);
        assert_eq!(plan.instance.beta, inst.beta);
        assert_eq!(plan.endpoints, endpoints);
        assert_eq!(plan.schedule, oggp(&inst), "oracle schedule diverged");
        assert_eq!(plan.lower_bound, lower_bound(&inst));
    }

    #[test]
    fn star_plan_validates_and_beats_nothing() {
        let topo = Topology::star(&[10.0, 40.0, 100.0], &[100.0, 20.0], 80.0);
        let m = demo_traffic(3, 2);
        let plan = plan_topology(&m, &topo, 0.05, TickScale::MILLIS, TopoAlgo::Oggp).unwrap();
        plan.schedule.validate(&plan.instance).unwrap();
        assert!(plan.schedule.cost() >= plan.lower_bound);
        assert!(plan.evaluation_ratio() >= 1.0);
        // Pair speeds differ, so edge weights are no longer uniform per MB.
        let ws: Vec<Weight> = plan
            .instance
            .graph
            .edge_ids()
            .map(|e| plan.instance.graph.weight(e))
            .collect();
        assert!(ws.iter().any(|&w| w != ws[0]));
    }

    #[test]
    fn two_backbone_plan_routes_and_composes() {
        // Clusters 0,1 send; 2,3 receive; disjoint backbones A: 0→2, B: 1→3.
        let mut nodes = Vec::new();
        for c in [0usize, 1, 2, 3] {
            for _ in 0..2 {
                nodes.push(NodeSpec {
                    nic_out: 100.0,
                    nic_in: 100.0,
                    cluster: c,
                });
            }
        }
        let topo = Topology {
            nodes,
            links: vec![
                BackboneSpec {
                    capacity: 200.0,
                    connects: (0, 2),
                },
                BackboneSpec {
                    capacity: 100.0,
                    connects: (1, 3),
                },
            ],
        };
        assert!(topo.validate().is_ok());
        assert_eq!(topo.senders(), 4);
        assert_eq!(topo.receivers(), 4);
        assert_eq!(topo.link_k(0), 2);
        assert_eq!(topo.link_k(1), 1);

        // Traffic only on routable pairs: senders 0,1 (cluster 0) → receivers
        // 0,1 (cluster 2); senders 2,3 (cluster 1) → receivers 2,3 (cluster 3).
        let mut m = TrafficMatrix::zeros(4, 4);
        for i in 0..2 {
            for j in 0..2 {
                m.set(i, j, 4_000_000);
                m.set(2 + i, 2 + j, 6_000_000);
            }
        }
        let plan = plan_topology(&m, &topo, 0.05, TickScale::MILLIS, TopoAlgo::Oggp).unwrap();
        plan.schedule.validate(&plan.instance).unwrap();
        assert!(plan.schedule.cost() >= plan.lower_bound);
        assert_eq!(plan.link_plans[0].messages, 4);
        assert_eq!(plan.link_plans[1].messages, 4);
        // Disjoint backbones zip: the composed schedule is as long as the
        // slower of the two sub-schedules, not their concatenation.
        let s0 = plan.link_plans[0].cost;
        let s1 = plan.link_plans[1].cost;
        assert!(plan.schedule.cost() <= s0 + s1);
        assert!(plan.schedule.cost() >= s0.max(s1));

        // An unroutable cell errors.
        let mut bad = m.clone();
        bad.set(0, 3, 1);
        match plan_topology(&bad, &topo, 0.05, TickScale::MILLIS, TopoAlgo::Oggp) {
            Err(TopoError::Unroutable {
                sender: 0,
                receiver: 3,
            }) => {}
            other => panic!("expected Unroutable, got {other:?}"),
        }
    }

    #[test]
    fn parse_round_trip() {
        let text = "# demo\nnode 100 100 0 3\nnode 10 20 1 2\nlink 250 0 1\n";
        let topo = Topology::parse(text).unwrap();
        assert_eq!(topo.senders(), 3);
        assert_eq!(topo.receivers(), 2);
        assert_eq!(topo.links[0].capacity, 250.0);
        let again = Topology::parse(&topo.to_text()).unwrap();
        assert_eq!(topo, again);
    }

    #[test]
    fn parse_rejects_garbage_and_invalid() {
        assert!(Topology::parse("nope 1 2 3").is_err());
        assert!(Topology::parse("node 1 2").is_err());
        assert!(Topology::parse("node x 2 0\nlink 1 0 1").is_err());
        // Well-formed but invalid (zero capacity) fails the validate choke.
        assert!(Topology::parse("node 1 1 0\nnode 1 1 1\nlink 0 0 1").is_err());
        // No links at all.
        assert!(Topology::parse("node 1 1 0").is_err());
    }

    #[test]
    fn dimension_mismatch_and_empty_matrix() {
        let topo = Topology::two_cluster(2, 2, 100.0, 100.0, 100.0);
        let m = TrafficMatrix::zeros(3, 2);
        assert!(matches!(
            plan_topology(&m, &topo, 0.0, TickScale::MILLIS, TopoAlgo::Oggp),
            Err(TopoError::DimensionMismatch(_))
        ));
        let empty = TrafficMatrix::zeros(2, 2);
        let plan = plan_topology(&empty, &topo, 0.0, TickScale::MILLIS, TopoAlgo::Oggp).unwrap();
        assert_eq!(plan.schedule.num_steps(), 0);
        assert_eq!(plan.lower_bound, 0);
        assert_eq!(plan.evaluation_ratio(), 1.0);
        assert_eq!(
            topo_lower_bound(&empty, &topo, 0.0, TickScale::MILLIS).unwrap(),
            0
        );
    }

    #[test]
    fn hier_and_ggp_algos_compose_validly() {
        let topo = Topology::star(&[50.0, 100.0, 25.0, 80.0], &[100.0, 60.0, 40.0], 150.0);
        let m = demo_traffic(4, 3);
        for algo in [
            TopoAlgo::Ggp,
            TopoAlgo::Hier(crate::hier::HierConfig::new(2)),
        ] {
            let plan = plan_topology(&m, &topo, 0.05, TickScale::MILLIS, algo).unwrap();
            plan.schedule.validate(&plan.instance).unwrap();
            assert!(plan.schedule.cost() >= plan.lower_bound);
        }
    }
}
