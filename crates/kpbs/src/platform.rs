//! The platform model of Section 2.1: two clusters, NIC throughputs, a
//! backbone, and the derivation of `k` and the per-transfer speed `t`.

use serde::{Deserialize, Serialize};

/// A two-cluster platform interconnected by a backbone.
///
/// Throughputs are in Mbit/s. The paper's example: `n1 = 200`, `n2 = 100`,
/// `t1 = 10`, `t2 = 100`, `T = 1000` gives `k = 100` transfers of
/// `t = 10` Mbit/s each.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Nodes in the sending cluster `C1`.
    pub n1: usize,
    /// Nodes in the receiving cluster `C2`.
    pub n2: usize,
    /// Effective NIC throughput of each `C1` node, Mbit/s.
    pub t1: f64,
    /// Effective NIC throughput of each `C2` node, Mbit/s.
    pub t2: f64,
    /// Backbone throughput `T`, Mbit/s.
    pub backbone: f64,
}

impl Platform {
    /// Creates a platform, validating positivity of all parameters.
    pub fn new(n1: usize, n2: usize, t1: f64, t2: f64, backbone: f64) -> Self {
        assert!(n1 >= 1 && n2 >= 1, "clusters must be non-empty");
        assert!(
            t1 > 0.0 && t2 > 0.0 && backbone > 0.0,
            "throughputs must be positive"
        );
        Platform {
            n1,
            n2,
            t1,
            t2,
            backbone,
        }
    }

    /// The speed of one point-to-point transfer: the slower of the two NICs
    /// (a sender at `t1` cannot be received faster, and vice versa).
    pub fn transfer_speed(&self) -> f64 {
        self.t1.min(self.t2)
    }

    /// The maximum number of simultaneous transfers `k`.
    ///
    /// Each transfer moves at [`Platform::transfer_speed`] `t`, so the
    /// backbone sustains `⌊T/t⌋` of them without congestion, further capped
    /// by the cluster sizes (1-port). Note: the paper's constraint list
    /// (`k·t1 ≤ T` *and* `k·t2 ≤ T`) contradicts its own worked example
    /// (`k = 100` with `t2 = 100`, `T = 1000`); the example is consistent
    /// with the per-transfer speed being `t = min(t1, t2)`, which is what we
    /// implement.
    pub fn k(&self) -> usize {
        // Small epsilon absorbs float noise when T is an exact multiple of t
        // (e.g. the shaped testbed where t = 100/k).
        let by_backbone = (self.backbone / self.transfer_speed() + 1e-9).floor() as usize;
        by_backbone.clamp(1, self.n1.min(self.n2))
    }

    /// True when the backbone is *not* a bottleneck (`k = min(n1, n2)`,
    /// Section 2.4 — the local-redistribution regime).
    pub fn backbone_unconstrained(&self) -> bool {
        self.k() == self.n1.min(self.n2)
    }

    /// The testbed of Section 5.2: two 10-node clusters of 100 Mbit/s NICs
    /// shaped down to `100/k` Mbit/s with a 100 Mbit/s interconnect, so that
    /// exactly `k` transfers fit.
    pub fn testbed(k: usize) -> Self {
        assert!(k >= 1);
        let shaped = 100.0 / k as f64;
        Platform::new(10, 10, shaped, shaped, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        let p = Platform::new(200, 100, 10.0, 100.0, 1000.0);
        assert_eq!(p.transfer_speed(), 10.0);
        assert_eq!(p.k(), 100);
        assert!(p.backbone_unconstrained()); // k = min(n1, n2) = 100
    }

    #[test]
    fn backbone_bottleneck() {
        let p = Platform::new(10, 10, 100.0, 100.0, 300.0);
        assert_eq!(p.k(), 3);
        assert!(!p.backbone_unconstrained());
    }

    #[test]
    fn k_at_least_one() {
        // Backbone slower than one NIC still allows one (slowed) transfer.
        let p = Platform::new(4, 4, 100.0, 100.0, 10.0);
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn k_capped_by_cluster_size() {
        let p = Platform::new(2, 8, 10.0, 10.0, 1000.0);
        assert_eq!(p.k(), 2);
    }

    #[test]
    fn testbed_platforms() {
        for k in [3, 5, 7] {
            let p = Platform::testbed(k);
            assert_eq!(p.k(), k, "shaped testbed must admit exactly k flows");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_throughput_rejected() {
        Platform::new(1, 1, 0.0, 1.0, 1.0);
    }
}
