//! Residual traffic extraction — the re-planning primitive of fault-aware
//! execution.
//!
//! A runtime that drives a [`Schedule`](crate::Schedule) to completion over
//! an unreliable medium needs to answer "what is left to move?" whenever a
//! transfer fails permanently or a node drops out mid-schedule. The answer
//! is a *residual* traffic matrix: the original demand minus the bytes
//! already delivered, restricted to the nodes still alive. Re-planning that
//! residual through GGP/OGGP yields a fresh schedule whose steps can be
//! spliced into the running one (the discipline of Marchal et al.'s
//! dynamic redistribution and of residual-demand coflow rescheduling).
//!
//! The functions here are pure matrix arithmetic, kept in `kpbs` so every
//! consumer (the `redistexec` runtime, the adaptive flowsim executor,
//! future online planners) shares one definition of "residual".

use crate::traffic::TrafficMatrix;

/// The bytes of `original` not yet covered by `delivered`, cell by cell
/// (saturating: over-delivery clamps to zero rather than underflowing).
///
/// # Panics
///
/// Panics if the two matrices have different dimensions.
pub fn residual_matrix(original: &TrafficMatrix, delivered: &TrafficMatrix) -> TrafficMatrix {
    assert_eq!(original.senders(), delivered.senders(), "sender mismatch");
    assert_eq!(
        original.receivers(),
        delivered.receivers(),
        "receiver mismatch"
    );
    let mut out = TrafficMatrix::zeros(original.senders(), original.receivers());
    for i in 0..original.senders() {
        for j in 0..original.receivers() {
            out.set(i, j, original.get(i, j).saturating_sub(delivered.get(i, j)));
        }
    }
    out
}

/// A copy of `m` with every row of a dead sender and every column of a dead
/// receiver zeroed: the demand that can still be served. `senders_alive[i]`
/// / `receivers_alive[j]` flag the surviving nodes.
///
/// # Panics
///
/// Panics if the liveness slices do not match the matrix dimensions.
pub fn restrict_matrix(
    m: &TrafficMatrix,
    senders_alive: &[bool],
    receivers_alive: &[bool],
) -> TrafficMatrix {
    assert_eq!(senders_alive.len(), m.senders(), "sender flag mismatch");
    assert_eq!(
        receivers_alive.len(),
        m.receivers(),
        "receiver flag mismatch"
    );
    let mut out = TrafficMatrix::zeros(m.senders(), m.receivers());
    for (i, &sender_ok) in senders_alive.iter().enumerate() {
        if !sender_ok {
            continue;
        }
        for (j, &receiver_ok) in receivers_alive.iter().enumerate() {
            if receiver_ok {
                out.set(i, j, m.get(i, j));
            }
        }
    }
    out
}

/// [`residual_matrix`] restricted to surviving nodes in one pass — the
/// exact matrix a fault-tolerant runtime re-plans after a failure.
pub fn surviving_residual(
    original: &TrafficMatrix,
    delivered: &TrafficMatrix,
    senders_alive: &[bool],
    receivers_alive: &[bool],
) -> TrafficMatrix {
    restrict_matrix(
        &residual_matrix(original, delivered),
        senders_alive,
        receivers_alive,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n1: usize, n2: usize, cells: &[(usize, usize, u64)]) -> TrafficMatrix {
        let mut m = TrafficMatrix::zeros(n1, n2);
        for &(i, j, b) in cells {
            m.set(i, j, b);
        }
        m
    }

    #[test]
    fn residual_subtracts_per_cell() {
        let orig = matrix(2, 2, &[(0, 0, 10), (0, 1, 5), (1, 1, 7)]);
        let done = matrix(2, 2, &[(0, 0, 4), (1, 1, 7)]);
        let r = residual_matrix(&orig, &done);
        assert_eq!(r.get(0, 0), 6);
        assert_eq!(r.get(0, 1), 5);
        assert_eq!(r.get(1, 1), 0);
        assert_eq!(r.total_bytes(), 11);
    }

    #[test]
    fn residual_saturates_on_overdelivery() {
        let orig = matrix(1, 1, &[(0, 0, 3)]);
        let done = matrix(1, 1, &[(0, 0, 5)]);
        assert_eq!(residual_matrix(&orig, &done).get(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "sender mismatch")]
    fn residual_rejects_dimension_mismatch() {
        residual_matrix(&TrafficMatrix::zeros(2, 2), &TrafficMatrix::zeros(3, 2));
    }

    #[test]
    fn restrict_zeroes_dead_rows_and_columns() {
        let m = matrix(2, 3, &[(0, 0, 1), (0, 2, 2), (1, 0, 3), (1, 1, 4)]);
        let r = restrict_matrix(&m, &[true, false], &[true, true, false]);
        assert_eq!(r.get(0, 0), 1);
        assert_eq!(r.get(0, 2), 0, "dead receiver column zeroed");
        assert_eq!(r.get(1, 0), 0, "dead sender row zeroed");
        assert_eq!(r.get(1, 1), 0);
        assert_eq!(r.total_bytes(), 1);
    }

    #[test]
    fn surviving_residual_composes() {
        let orig = matrix(2, 2, &[(0, 0, 10), (0, 1, 6), (1, 0, 8)]);
        let done = matrix(2, 2, &[(0, 0, 10), (0, 1, 2)]);
        let r = surviving_residual(&orig, &done, &[true, false], &[true, true]);
        assert_eq!(r.get(0, 0), 0);
        assert_eq!(r.get(0, 1), 4);
        assert_eq!(r.get(1, 0), 0, "dead sender's backlog excluded");
    }

    #[test]
    fn all_dead_means_empty_residual() {
        let orig = matrix(2, 2, &[(0, 0, 10)]);
        let done = TrafficMatrix::zeros(2, 2);
        let r = surviving_residual(&orig, &done, &[false, false], &[false, false]);
        assert_eq!(r.total_bytes(), 0);
    }
}
