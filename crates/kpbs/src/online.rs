//! Online K-PBS — the paper's second future-work direction (Section 6):
//! "study the problem … when the redistribution pattern is not fully known
//! in advance. We think that our multi-step approach could be useful for
//! these dynamic cases."
//!
//! Messages arrive while the redistribution is running. The online
//! scheduler keeps a residual graph; each time the runtime asks for the
//! next step it re-plans the *currently known* residual with OGGP and emits
//! that plan's first step. Arrivals between steps are folded into the
//! residual, so a late message rides along with whatever is left.
//!
//! The regret of this policy is measured against the clairvoyant offline
//! schedule (OGGP on the union of all messages) by
//! [`online_vs_offline`]; tests pin the competitive behaviour on batched
//! arrival patterns.

use crate::oggp::oggp;
use crate::problem::Instance;
use crate::schedule::{Schedule, Step};
use bipartite::{EdgeId, Graph, Weight};

/// An arriving message: known only from `release` (a step index in this
/// simplified time model: the message becomes visible when the scheduler
/// plans its `release`-th step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivingMessage {
    /// Step index at which the message becomes known (0 = known upfront).
    pub release: usize,
    /// Sender node.
    pub src: usize,
    /// Receiver node.
    pub dst: usize,
    /// Duration in ticks.
    pub ticks: Weight,
}

/// The incremental scheduler.
///
/// ```
/// use kpbs::online::OnlineScheduler;
///
/// let mut s = OnlineScheduler::new(2, 2, 2, 1);
/// s.add_message(0, 0, 0, 5);
/// s.add_message(1, 1, 1, 3);
/// let step = s.next_step().unwrap();           // both fit one step
/// assert_eq!(step.len(), 2);
/// s.add_message(2, 0, 1, 2);                   // arrives mid-transfer
/// while s.next_step().is_some() {}
/// assert_eq!(s.pending(), 0);
/// ```
pub struct OnlineScheduler {
    residual: Graph,
    k: usize,
    beta: Weight,
    /// Original message behind each residual edge.
    origin: Vec<usize>,
    emitted: Vec<Step>,
}

impl OnlineScheduler {
    /// Creates a scheduler for clusters of `n1 × n2` nodes.
    pub fn new(n1: usize, n2: usize, k: usize, beta: Weight) -> Self {
        assert!(k >= 1);
        OnlineScheduler {
            residual: Graph::new(n1, n2),
            k,
            beta,
            origin: Vec::new(),
            emitted: Vec::new(),
        }
    }

    /// Registers a newly revealed message; returns its internal edge id.
    /// `message_index` is the caller's identifier echoed in the output.
    pub fn add_message(
        &mut self,
        message_index: usize,
        src: usize,
        dst: usize,
        ticks: Weight,
    ) -> EdgeId {
        assert!(ticks > 0);
        let e = self.residual.add_edge(src, dst, ticks);
        debug_assert_eq!(e.index(), self.origin.len());
        self.origin.push(message_index);
        e
    }

    /// Ticks still unscheduled.
    pub fn pending(&self) -> Weight {
        bipartite::properties::total_weight(&self.residual)
    }

    /// Plans and commits the next step over the currently known residual,
    /// or `None` when nothing is pending. The returned transfers reference
    /// the caller's message indices.
    pub fn next_step(&mut self) -> Option<Vec<(usize, Weight)>> {
        if self.residual.is_empty() {
            return None;
        }
        let k = self
            .k
            .min(self.residual.left_count())
            .min(self.residual.right_count());
        let inst = Instance::new(self.residual.clone(), k, self.beta);
        let plan = oggp(&inst);
        let first = plan.steps.into_iter().next().expect("non-empty residual");
        for t in &first.transfers {
            self.residual.decrease_weight(t.edge, t.amount);
        }
        let out = first
            .transfers
            .iter()
            .map(|t| (self.origin[t.edge.index()], t.amount))
            .collect();
        self.emitted.push(first);
        Some(out)
    }

    /// The steps committed so far, as a [`Schedule`] over the *internal*
    /// edge ids (useful for cost accounting; `Σ (β + duration)`).
    pub fn committed(&self) -> Schedule {
        Schedule {
            steps: self.emitted.clone(),
            beta: self.beta,
        }
    }
}

/// Outcome of an online-vs-offline comparison.
#[derive(Debug, Clone, Copy)]
pub struct OnlineReport {
    /// Cost of the online execution.
    pub online_cost: Weight,
    /// Cost of the clairvoyant OGGP schedule over all messages.
    pub offline_cost: Weight,
}

impl OnlineReport {
    /// `online / offline` — 1.0 means the arrivals cost nothing.
    pub fn regret(&self) -> f64 {
        self.online_cost as f64 / self.offline_cost as f64
    }
}

/// Runs the online policy over `messages` on an `n1 × n2` platform and
/// compares with the clairvoyant schedule. Messages with `release = r`
/// become visible just before the scheduler plans its `r`-th step (messages
/// releasing after the schedule drained are appended as they come).
pub fn online_vs_offline(
    n1: usize,
    n2: usize,
    k: usize,
    beta: Weight,
    messages: &[ArrivingMessage],
) -> OnlineReport {
    let mut sched = OnlineScheduler::new(n1, n2, k, beta);
    let mut pending: Vec<(usize, &ArrivingMessage)> = messages.iter().enumerate().collect();
    pending.sort_by_key(|(_, m)| m.release);
    let mut next_arrival = 0usize;
    let mut step_idx = 0usize;
    loop {
        while next_arrival < pending.len() && pending[next_arrival].1.release <= step_idx {
            let (idx, m) = pending[next_arrival];
            sched.add_message(idx, m.src, m.dst, m.ticks);
            next_arrival += 1;
        }
        if sched.next_step().is_none() {
            if next_arrival >= pending.len() {
                break;
            }
            // Idle until the next release (no cost charged while idle in
            // this step-counting model).
            step_idx = pending[next_arrival].1.release;
            continue;
        }
        step_idx += 1;
    }
    let online_cost = sched.committed().cost();

    // Clairvoyant offline plan.
    let mut g = Graph::new(n1, n2);
    for m in messages {
        g.add_edge(m.src, m.dst, m.ticks);
    }
    let inst = Instance::new(g, k, beta);
    let offline = oggp(&inst);
    OnlineReport {
        online_cost,
        offline_cost: offline.cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn empty_scheduler_yields_nothing() {
        let mut s = OnlineScheduler::new(2, 2, 2, 1);
        assert!(s.next_step().is_none());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn upfront_messages_match_offline_cost_class() {
        // Everything released at 0: online = repeated first-step extraction
        // of OGGP re-plans; the costs stay within a small factor of the
        // one-shot plan.
        let messages = [
            ArrivingMessage {
                release: 0,
                src: 0,
                dst: 0,
                ticks: 9,
            },
            ArrivingMessage {
                release: 0,
                src: 0,
                dst: 1,
                ticks: 4,
            },
            ArrivingMessage {
                release: 0,
                src: 1,
                dst: 1,
                ticks: 7,
            },
            ArrivingMessage {
                release: 0,
                src: 2,
                dst: 2,
                ticks: 5,
            },
        ];
        let r = online_vs_offline(3, 3, 2, 1, &messages);
        assert!(r.online_cost >= r.offline_cost);
        assert!(r.regret() < 1.8, "regret {}", r.regret());
    }

    #[test]
    fn coverage_is_exact() {
        let mut s = OnlineScheduler::new(2, 2, 2, 1);
        s.add_message(0, 0, 0, 5);
        s.add_message(1, 1, 1, 3);
        let mut carried = [0u64; 2];
        while let Some(step) = s.next_step() {
            for (msg, amount) in step {
                carried[msg] += amount;
            }
        }
        assert_eq!(carried, [5, 3]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn late_arrivals_ride_along() {
        // A big message known upfront, small ones trickling in: they must
        // all complete, and the online cost must stay bounded.
        let messages = [
            ArrivingMessage {
                release: 0,
                src: 0,
                dst: 0,
                ticks: 20,
            },
            ArrivingMessage {
                release: 1,
                src: 1,
                dst: 1,
                ticks: 3,
            },
            ArrivingMessage {
                release: 2,
                src: 1,
                dst: 0,
                ticks: 2,
            },
            ArrivingMessage {
                release: 3,
                src: 0,
                dst: 1,
                ticks: 4,
            },
        ];
        let r = online_vs_offline(2, 2, 2, 1, &messages);
        assert!(r.online_cost >= r.offline_cost);
        assert!(r.regret() < 2.5, "regret {}", r.regret());
    }

    #[test]
    fn arrivals_after_drain_are_served() {
        let messages = [
            ArrivingMessage {
                release: 0,
                src: 0,
                dst: 0,
                ticks: 2,
            },
            ArrivingMessage {
                release: 10,
                src: 1,
                dst: 1,
                ticks: 2,
            },
        ];
        let r = online_vs_offline(2, 2, 2, 1, &messages);
        // Online pays two steps (one per burst); offline packs both in one.
        assert_eq!(r.online_cost, 2 * (1 + 2));
        assert_eq!(r.offline_cost, 1 + 2);
    }

    #[test]
    fn random_streams_complete_with_bounded_regret() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..30 {
            let n = rng.gen_range(2..6);
            let count = rng.gen_range(1..15);
            let messages: Vec<ArrivingMessage> = (0..count)
                .map(|_| ArrivingMessage {
                    release: rng.gen_range(0..6),
                    src: rng.gen_range(0..n),
                    dst: rng.gen_range(0..n),
                    ticks: rng.gen_range(1..15),
                })
                .collect();
            let k = rng.gen_range(1..=n);
            let r = online_vs_offline(n, n, k, 1, &messages);
            assert!(r.online_cost >= r.offline_cost);
            assert!(
                r.regret() < 4.0,
                "regret {} too large for {messages:?}",
                r.regret()
            );
        }
    }
}
