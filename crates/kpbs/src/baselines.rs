//! Baseline schedulers the paper compares against (or that bracket the
//! design space in the ablation benches).
//!
//! The *TCP brute-force* baseline of Section 5.2 is not a K-PBS schedule at
//! all (it violates the 1-port and `k` constraints on purpose) — it lives in
//! the `flowsim` crate. The baselines here are feasible schedules:
//!
//! * [`sequential`] — one message per step, no preemption (what `k = 1`
//!   forces; also the trivially correct strawman),
//! * [`nonpreemptive_list`] — list scheduling of whole messages, heaviest
//!   first, at most `k` per step (the classic SS/TDMA-style heuristic \[18\]),
//! * [`preemptive_greedy`] — GGP's peeling applied directly to the raw graph
//!   without the weight-regular embedding: greedy maximal matchings capped
//!   at `k` edges, quantum = minimum weight. An ablation of how much the
//!   regularisation actually buys.

use crate::problem::Instance;
use crate::schedule::{Schedule, Step, Transfer};
use bipartite::{greedy, EdgeId, Weight};

/// One message per step, in edge-id order, no preemption.
pub fn sequential(inst: &Instance) -> Schedule {
    let mut s = Schedule::new(inst.beta);
    for (e, _, _, w) in inst.graph.edges() {
        s.steps.push(Step {
            transfers: vec![Transfer { edge: e, amount: w }],
        });
    }
    s
}

/// Non-preemptive list scheduling: repeatedly build a maximal matching by
/// decreasing weight, truncate to the `k` heaviest edges, transmit each
/// selected message entirely (the step lasts as long as its heaviest
/// message), remove them, repeat.
pub fn nonpreemptive_list(inst: &Instance) -> Schedule {
    let k = inst.effective_k();
    let mut g = inst.graph.clone();
    let mut s = Schedule::new(inst.beta);
    while !g.is_empty() {
        let mut edges = greedy::maximal_matching_heaviest_first(&g).into_edges();
        edges.truncate(k);
        let transfers: Vec<Transfer> = edges
            .iter()
            .map(|&e| Transfer {
                edge: e,
                amount: g.weight(e),
            })
            .collect();
        for &e in &edges {
            g.remove_edge(e);
        }
        s.steps.push(Step { transfers });
    }
    s
}

/// Preemptive greedy peeling without the weight-regular embedding: each step
/// takes a heaviest-first maximal matching truncated to `k` edges and
/// transmits the *minimum* remaining weight of the selection on all of them.
pub fn preemptive_greedy(inst: &Instance) -> Schedule {
    let k = inst.effective_k();
    let mut g = inst.graph.clone();
    let mut s = Schedule::new(inst.beta);
    while !g.is_empty() {
        let mut edges: Vec<EdgeId> = greedy::maximal_matching_heaviest_first(&g).into_edges();
        edges.truncate(k);
        let quantum: Weight = edges.iter().map(|&e| g.weight(e)).min().unwrap();
        let transfers: Vec<Transfer> = edges
            .iter()
            .map(|&e| Transfer {
                edge: e,
                amount: quantum,
            })
            .collect();
        for &e in &edges {
            g.decrease_weight(e, quantum);
        }
        s.steps.push(Step { transfers });
    }
    s
}

/// Convenience: all baselines by name, for benches and examples.
pub fn by_name(name: &str, inst: &Instance) -> Option<Schedule> {
    match name {
        "sequential" => Some(sequential(inst)),
        "list" => Some(nonpreemptive_list(inst)),
        "greedy" => Some(preemptive_greedy(inst)),
        "ggp" => Some(crate::ggp::ggp(inst)),
        "oggp" => Some(crate::oggp::oggp(inst)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::lower_bound;
    use bipartite::generate::{random_graph, GraphParams};
    use bipartite::Graph;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn sample() -> Instance {
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 5);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 1, 8);
        g.add_edge(2, 1, 4);
        g.add_edge(2, 2, 4);
        Instance::new(g, 3, 1)
    }

    #[test]
    fn sequential_is_valid_and_costs_sum() {
        let inst = sample();
        let s = sequential(&inst);
        s.validate(&inst).unwrap();
        assert_eq!(s.cost(), (1 + 5) + (1 + 3) + (1 + 8) + (1 + 4) + (1 + 4));
    }

    #[test]
    fn list_scheduling_valid_and_respects_k() {
        let inst = sample();
        let s = nonpreemptive_list(&inst);
        s.validate(&inst).unwrap();
        assert!(s.max_width() <= 3);
        // Non-preemptive: every edge appears exactly once.
        let slices: usize = s.steps.iter().map(|st| st.transfers.len()).sum();
        assert_eq!(slices, 5);
    }

    #[test]
    fn preemptive_greedy_valid() {
        let inst = sample();
        let s = preemptive_greedy(&inst);
        s.validate(&inst).unwrap();
        assert!(s.cost() >= lower_bound(&inst));
    }

    #[test]
    fn baselines_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(5);
        let params = GraphParams {
            max_nodes_per_side: 7,
            max_edges: 30,
            weight_range: (1, 12),
        };
        for _ in 0..100 {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g, k, rng.gen_range(0..3));
            for name in ["sequential", "list", "greedy"] {
                let s = by_name(name, &inst).unwrap();
                s.validate(&inst)
                    .unwrap_or_else(|e| panic!("{name} invalid: {e}"));
            }
        }
    }

    #[test]
    fn by_name_unknown_is_none() {
        let inst = sample();
        assert!(by_name("nope", &inst).is_none());
        assert!(by_name("ggp", &inst).is_some());
        assert!(by_name("oggp", &inst).is_some());
    }
}
