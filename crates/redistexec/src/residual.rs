//! Node liveness and residual-demand extraction.
//!
//! The matrix arithmetic (subtract delivered, zero dead rows/columns) lives
//! in [`kpbs::residual`] so every planner shares one definition of
//! "residual"; this module adds the runtime-side bookkeeping: which nodes a
//! fault plan has permanently dropped, and the glue that turns a transport's
//! delivery ledger into the matrix the next replan schedules.

use crate::faults::NodeRef;
use crate::transport::Transport;
use kpbs::TrafficMatrix;

/// Which nodes of the two clusters are still alive.
#[derive(Debug, Clone)]
pub struct Liveness {
    senders: Vec<bool>,
    receivers: Vec<bool>,
}

impl Liveness {
    /// All nodes of an `n1 × n2` platform alive.
    pub fn all_alive(n1: usize, n2: usize) -> Self {
        Liveness {
            senders: vec![true; n1],
            receivers: vec![true; n2],
        }
    }

    /// Marks `node` dead. Returns `true` if it was alive (i.e. this call
    /// changed state), `false` for a repeated drop.
    pub fn kill(&mut self, node: NodeRef) -> bool {
        let flag = match node {
            NodeRef::Sender(i) => &mut self.senders[i],
            NodeRef::Receiver(j) => &mut self.receivers[j],
        };
        std::mem::replace(flag, false)
    }

    /// True when both endpoints of a `(sender, receiver)` pair are alive.
    pub fn pair_alive(&self, src: usize, dst: usize) -> bool {
        self.senders[src] && self.receivers[dst]
    }

    /// Per-sender liveness flags.
    pub fn senders(&self) -> &[bool] {
        &self.senders
    }

    /// Per-receiver liveness flags.
    pub fn receivers(&self) -> &[bool] {
        &self.receivers
    }

    /// True when no node has been dropped.
    pub fn intact(&self) -> bool {
        self.senders.iter().chain(&self.receivers).all(|&a| a)
    }
}

/// The demand still owed after what `transport` has delivered, restricted
/// to the nodes `liveness` reports alive — exactly the matrix a residual
/// replan schedules.
pub fn outstanding(
    original: &TrafficMatrix,
    transport: &dyn Transport,
    liveness: &Liveness,
) -> TrafficMatrix {
    kpbs::surviving_residual(
        original,
        transport.delivered(),
        liveness.senders(),
        liveness.receivers(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LoopbackTransport, TransferOp};

    #[test]
    fn kill_is_idempotent() {
        let mut l = Liveness::all_alive(2, 2);
        assert!(l.intact());
        assert!(l.kill(NodeRef::Sender(1)), "first drop changes state");
        assert!(!l.kill(NodeRef::Sender(1)), "second drop is a no-op");
        assert!(!l.intact());
        assert!(!l.pair_alive(1, 0));
        assert!(l.pair_alive(0, 0));
        assert_eq!(l.senders(), &[true, false]);
        assert_eq!(l.receivers(), &[true, true]);
    }

    #[test]
    fn outstanding_subtracts_ledger_and_dead_nodes() {
        let mut m = TrafficMatrix::zeros(2, 2);
        m.set(0, 0, 100);
        m.set(0, 1, 50);
        m.set(1, 0, 30);
        let mut t = LoopbackTransport::new(2, 2, 1e6);
        t.deliver(
            &[TransferOp {
                src: 0,
                dst: 0,
                bytes: 40,
            }],
            1.0,
        );
        let mut l = Liveness::all_alive(2, 2);
        l.kill(NodeRef::Receiver(1));
        let r = outstanding(&m, &t, &l);
        assert_eq!(r.get(0, 0), 60, "delivered bytes subtracted");
        assert_eq!(r.get(0, 1), 0, "dead receiver excluded");
        assert_eq!(r.get(1, 0), 30);
    }
}
