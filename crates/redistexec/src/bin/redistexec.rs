//! Fault-injected schedule execution from the command line.
//!
//! Usage: redistexec [--n 8] [--t1 100] [--t2 100] [--backbone 400]
//!            [--beta 0.05] [--lo-mb 5] [--hi-mb 30] [--seed 1]
//!            [--algo oggp|ggp] [--transport loopback|sim]
//!            [--faults SEED] [--timeout SECS] [--trace out.json]
//!            [--rid N] [--metrics out.prom]
//!        redistexec --topo topo.txt [--beta 0.05] [--lo-mb 5] [--hi-mb 30]
//!            [--seed 1] [--algo oggp|ggp] [--faults SEED] [--timeout SECS]
//!        redistexec --bench [--seeds 40] [--out BENCH_exec.json]
//!
//! `--topo FILE` executes over a heterogeneous topology instead of the
//! uniform platform: the file holds `node OUT IN CLUSTER [COUNT]` and
//! `link CAP SRC DST` lines (`#` comments allowed). The workload fills
//! only routable pairs, planning runs per backbone under its own
//! preemption bound `k_b`, execution goes through the flowsim transport
//! lowered from the topology, and fault plans may include per-node NIC
//! slowdowns and per-link degradations.
//!
//! Plans a deterministic uniform workload, then executes it under the fault
//! plan generated from `--faults` (omit for a fault-free run). `--trace`
//! records step/retry/backoff/replan spans — every one labelled with the
//! owning request id (`--rid`, default: the workload `--seed`), the
//! execution slot, and for retries the failing transfer's `src`/`dst` —
//! and writes Chrome trace-event JSON (open in
//! <https://ui.perfetto.dev>). `--metrics` publishes the per-step
//! `redistexec_*` counters into a registry and writes its Prometheus text
//! exposition after the run.
//!
//! `--bench` runs the fixed regression campaign behind `BENCH_exec.json`
//! in `scripts/check.sh`: one zero-fault run (checked byte-identical to
//! plain execution) plus one run per fault seed, all verified against the
//! delivery invariant, with retry/replan/fault/splice counter totals.

use kpbs::traffic::TickScale;
use kpbs::{Platform, Topology, TrafficMatrix};
use redistexec::{
    plan_and_execute_observed, plan_and_execute_topo, ExecConfig, ExecMetrics, ExecReport,
    FaultPlan, FaultSpec, LoopbackTransport, PlanRecord, ReplanAlgo, SimTransport, Transport,
};
use telemetry::counters::{self, Counter};
use telemetry::metrics::Registry;
use telemetry::{export, spans};

/// xorshift64* workload generator (mirrors the `redistload` driver).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn uniform_matrix(seed: u64, n: usize, lo_mb: u64, hi_mb: u64) -> TrafficMatrix {
    let mut rng = Rng::new(seed);
    let mut m = TrafficMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mb = lo_mb + rng.next() % (hi_mb - lo_mb + 1);
            m.set(i, j, mb * 1_000_000);
        }
    }
    m
}

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
                eprintln!("redistexec: bad value for --{name}");
                std::process::exit(2);
            }
        }
    }
    default
}

fn arg_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

#[allow(clippy::too_many_arguments)]
fn run<T: Transport>(
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta: f64,
    transport: T,
    faults: FaultPlan,
    config: ExecConfig,
    metrics: Option<ExecMetrics>,
    rid: u64,
) -> (PlanRecord, ExecReport) {
    match plan_and_execute_observed(
        traffic,
        platform,
        beta,
        TickScale::MILLIS,
        transport,
        faults,
        config,
        metrics,
        rid,
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("redistexec: execution failed: {e}");
            std::process::exit(1);
        }
    }
}

fn bench(seeds: u64, out_path: &str) {
    counters::enable();
    let n = 8;
    let beta = 0.05;
    let platform = Platform::new(n, n, 100.0, 100.0, 400.0);
    let traffic = uniform_matrix(1, n, 5, 30);
    let spec = FaultSpec::default();
    // Tight enough that an ×8 slowdown on a large step breaches it (the
    // largest fault-free step runs ~2.4 s), loose enough that unslowed
    // steps never do — so the campaign exercises the abort path too.
    let config = ExecConfig {
        step_timeout_seconds: 15.0,
        ..ExecConfig::default()
    };

    // Baseline: a fault-free run must be byte-identical to the plain
    // byte_slices expansion of the plan.
    let (initial, base) = run(
        &traffic,
        &platform,
        beta,
        LoopbackTransport::for_platform(&platform),
        FaultPlan::none(),
        config.clone(),
        None,
        0,
    );
    base.verify_against(&traffic).expect("zero-fault invariant");
    let plain = initial.step_ops();
    assert_eq!(base.steps.len(), plain.len(), "zero-fault step count");
    for (got, want) in base.steps.iter().zip(&plain) {
        assert_eq!(&got.ops, want, "zero-fault run diverged from plan");
    }

    let mut retries = 0u64;
    let mut replans = 0u64;
    let mut faults_injected = 0u64;
    let mut spliced = 0u64;
    let mut timeouts = 0u64;
    let mut steps = 0u64;
    let mut overhead_sum = 0.0;
    for seed in 1..=seeds {
        let faults = FaultPlan::generate(seed, n, n, &spec);
        let (_, report) = run(
            &traffic,
            &platform,
            beta,
            LoopbackTransport::for_platform(&platform),
            faults,
            config.clone(),
            None,
            0,
        );
        report
            .verify_against(&traffic)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for rec in &report.plans {
            rec.schedule
                .validate(&rec.instance)
                .unwrap_or_else(|e| panic!("seed {seed}: spliced schedule invalid: {e}"));
        }
        retries += report.retries;
        replans += report.replans;
        faults_injected += report.faults_injected;
        spliced += report.steps_spliced;
        timeouts += report.timeouts;
        steps += report.steps.len() as u64;
        overhead_sum += report.total_seconds / base.total_seconds;
    }

    // The work counters must agree with the per-report sums.
    let snap = counters::global_snapshot();
    assert_eq!(snap.get(Counter::ExecRetries), retries);
    assert_eq!(snap.get(Counter::ExecReplans), replans);
    assert_eq!(snap.get(Counter::ExecFaultsInjected), faults_injected);
    assert_eq!(snap.get(Counter::ExecStepsSpliced), spliced);

    let json = format!(
        "{{\n  \"seeds\": {seeds},\n  \"n\": {n},\n  \"k\": {k},\n  \
         \"beta_seconds\": {beta:.4},\n  \"zero_fault_steps\": {zf},\n  \
         \"zero_fault_seconds\": {zs:.6},\n  \"total_steps_executed\": {steps},\n  \
         \"total_retries\": {retries},\n  \"total_replans\": {replans},\n  \
         \"total_faults_injected\": {faults_injected},\n  \
         \"total_steps_spliced\": {spliced},\n  \"total_timeouts\": {timeouts},\n  \
         \"mean_overhead_ratio\": {overhead:.6}\n}}\n",
        k = platform.k(),
        zf = base.steps.len(),
        zs = base.total_seconds,
        overhead = overhead_sum / seeds as f64,
    );
    std::fs::write(out_path, &json).expect("write BENCH_exec.json");
    eprintln!(
        "redistexec: {seeds} fault seeds verified; {retries} retries, {replans} replans, \
         {spliced} steps spliced -> {out_path}"
    );
    print!("{json}");
}

/// A seeded workload on `topo`'s routable pairs only (unreachable pairs
/// carry no demand — the planner would reject them).
fn routable_matrix(seed: u64, topo: &Topology, lo_mb: u64, hi_mb: u64) -> TrafficMatrix {
    let mut rng = Rng::new(seed);
    let mut m = TrafficMatrix::zeros(topo.senders(), topo.receivers());
    for i in 0..topo.senders() {
        for j in 0..topo.receivers() {
            if topo.route(i, j).is_some() {
                let mb = lo_mb + rng.next() % (hi_mb - lo_mb + 1);
                m.set(i, j, mb * 1_000_000);
            }
        }
    }
    m
}

fn run_topo(topo_path: &str) {
    let text = std::fs::read_to_string(topo_path).unwrap_or_else(|e| {
        eprintln!("redistexec: cannot read {topo_path}: {e}");
        std::process::exit(2);
    });
    let topo = Topology::parse(&text).unwrap_or_else(|e| {
        eprintln!("redistexec: {topo_path}: {e}");
        std::process::exit(2);
    });
    let beta: f64 = arg("beta", 0.05);
    let lo_mb: u64 = arg("lo-mb", 5);
    let hi_mb: u64 = arg("hi-mb", 30);
    let seed: u64 = arg("seed", 1);
    let timeout: f64 = arg("timeout", 3_600.0);
    let algo = match arg("algo", "oggp".to_string()).as_str() {
        "oggp" => ReplanAlgo::Oggp,
        "ggp" => ReplanAlgo::Ggp,
        other => {
            eprintln!("redistexec: unknown --algo {other} (want oggp|ggp)");
            std::process::exit(2);
        }
    };
    if lo_mb == 0 || lo_mb > hi_mb {
        eprintln!("redistexec: need 1 <= --lo-mb <= --hi-mb");
        std::process::exit(2);
    }
    let (n1, n2) = (topo.senders(), topo.receivers());
    let traffic = routable_matrix(seed, &topo, lo_mb, hi_mb);
    let faults = match arg_str("faults") {
        Some(s) => {
            let fseed: u64 = s.parse().unwrap_or_else(|_| {
                eprintln!("redistexec: bad value for --faults");
                std::process::exit(2);
            });
            let spec = FaultSpec {
                nic_slowdowns: 2,
                link_degradations: 2,
                links: topo.links.len(),
                ..FaultSpec::default()
            };
            FaultPlan::generate(fseed, n1, n2, &spec)
        }
        None => FaultPlan::none(),
    };
    let fault_events = faults.event_count();
    let config = ExecConfig {
        algo,
        step_timeout_seconds: timeout,
        ..ExecConfig::default()
    };
    let transport = SimTransport::for_topology(&topo).unwrap_or_else(|e| {
        eprintln!("redistexec: {topo_path}: {e}");
        std::process::exit(2);
    });
    let (initial, report) = match plan_and_execute_topo(
        &traffic,
        &topo,
        beta,
        TickScale::MILLIS,
        transport,
        faults,
        config,
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("redistexec: execution failed: {e}");
            std::process::exit(1);
        }
    };
    match report.verify_against(&traffic) {
        Ok(()) => println!("delivery invariant: OK"),
        Err(e) => {
            eprintln!("redistexec: delivery invariant VIOLATED: {e}");
            std::process::exit(1);
        }
    }
    let ks: Vec<String> = (0..topo.links.len())
        .map(|b| format!("k_{b}={}", topo.link_k(b)))
        .collect();
    println!(
        "topology: {n1}x{n2} over {} backbones ({}), beta={beta}s, transport=sim",
        topo.links.len(),
        ks.join(", ")
    );
    println!(
        "plan: {} steps, cost {} ticks; fault plan: {fault_events} events",
        initial.schedule.num_steps(),
        initial.schedule.cost()
    );
    println!(
        "executed {} steps in {:.3}s virtual time; faults: {} injected; \
         {} retries, {} timeouts, {} replans splicing {} steps",
        report.steps.len(),
        report.total_seconds,
        report.faults_injected,
        report.retries,
        report.timeouts,
        report.replans,
        report.steps_spliced
    );
    println!(
        "delivered {} of {} bytes",
        report.delivered.total_bytes(),
        traffic.total_bytes()
    );
}

fn main() {
    if flag("bench") {
        let seeds: u64 = arg("seeds", 40);
        let out: String = arg("out", "BENCH_exec.json".to_string());
        bench(seeds.max(1), &out);
        return;
    }
    if let Some(path) = arg_str("topo") {
        run_topo(&path);
        return;
    }

    let n: usize = arg("n", 8);
    let t1: f64 = arg("t1", 100.0);
    let t2: f64 = arg("t2", 100.0);
    let backbone: f64 = arg("backbone", 400.0);
    let beta: f64 = arg("beta", 0.05);
    let lo_mb: u64 = arg("lo-mb", 5);
    let hi_mb: u64 = arg("hi-mb", 30);
    let seed: u64 = arg("seed", 1);
    let timeout: f64 = arg("timeout", 3_600.0);
    let algo = match arg("algo", "oggp".to_string()).as_str() {
        "oggp" => ReplanAlgo::Oggp,
        "ggp" => ReplanAlgo::Ggp,
        other => {
            eprintln!("redistexec: unknown --algo {other} (want oggp|ggp)");
            std::process::exit(2);
        }
    };
    if n == 0 || lo_mb == 0 || lo_mb > hi_mb {
        eprintln!("redistexec: need --n >= 1 and 1 <= --lo-mb <= --hi-mb");
        std::process::exit(2);
    }

    let trace_path = arg_str("trace");
    if trace_path.is_some() {
        spans::enable();
    }
    // Spans are labelled with the owning request id; a standalone run's
    // "request" is the workload itself, so the seed doubles as the default.
    let rid: u64 = arg("rid", seed);
    let metrics_path = arg_str("metrics");
    let registry = Registry::default();
    let metrics = metrics_path
        .as_ref()
        .map(|_| ExecMetrics::register(&registry));

    let platform = Platform::new(n, n, t1, t2, backbone);
    let traffic = uniform_matrix(seed, n, lo_mb, hi_mb);
    let faults = match arg_str("faults") {
        Some(s) => {
            let fseed: u64 = s.parse().unwrap_or_else(|_| {
                eprintln!("redistexec: bad value for --faults");
                std::process::exit(2);
            });
            FaultPlan::generate(fseed, n, n, &FaultSpec::default())
        }
        None => FaultPlan::none(),
    };
    let fault_events = faults.event_count();
    let config = ExecConfig {
        algo,
        step_timeout_seconds: timeout,
        ..ExecConfig::default()
    };

    let transport_kind = arg("transport", "loopback".to_string());
    let (initial, report) = match transport_kind.as_str() {
        "loopback" => run(
            &traffic,
            &platform,
            beta,
            LoopbackTransport::for_platform(&platform),
            faults,
            config,
            metrics,
            rid,
        ),
        "sim" => run(
            &traffic,
            &platform,
            beta,
            SimTransport::for_platform(&platform),
            faults,
            config,
            metrics,
            rid,
        ),
        other => {
            eprintln!("redistexec: unknown --transport {other} (want loopback|sim)");
            std::process::exit(2);
        }
    };

    match report.verify_against(&traffic) {
        Ok(()) => println!("delivery invariant: OK"),
        Err(e) => {
            eprintln!("redistexec: delivery invariant VIOLATED: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "platform: {n}x{n}, k={}, beta={beta}s, transport={transport_kind}",
        platform.k()
    );
    println!(
        "plan: {} steps, cost {} ticks; fault plan: {fault_events} events",
        initial.schedule.num_steps(),
        initial.schedule.cost()
    );
    println!(
        "executed {} steps in {:.3}s virtual time ({} survivors of {} nodes)",
        report.steps.len(),
        report.total_seconds,
        report
            .senders_alive
            .iter()
            .chain(&report.receivers_alive)
            .filter(|&&a| a)
            .count(),
        2 * n
    );
    println!(
        "faults: {} injected; {} retries, {} timeouts, {} replans splicing {} steps",
        report.faults_injected,
        report.retries,
        report.timeouts,
        report.replans,
        report.steps_spliced
    );
    println!(
        "delivered {} of {} bytes",
        report.delivered.total_bytes(),
        traffic.total_bytes()
    );

    if let Some(path) = trace_path {
        spans::disable();
        let events = spans::drain_all();
        let json = export::chrome_trace(&events);
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "trace: {} events written to {path} (open in https://ui.perfetto.dev)",
            events.len()
        );
    }

    if let Some(path) = metrics_path {
        let text = registry.render();
        std::fs::write(&path, &text).expect("write metrics file");
        println!("metrics: exposition written to {path}");
    }
}
