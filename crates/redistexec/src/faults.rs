//! Deterministic fault plans.
//!
//! Fault injection here is *plan-driven*, not probabilistic-at-runtime: a
//! [`FaultPlan`] is a finite, explicit list of events generated once from a
//! seed, and execution merely looks events up by position. Two runs with the
//! same seed therefore inject byte-identical fault sequences — the property
//! the 200-case campaign proptest and `BENCH_exec.json` regression lean on —
//! and a plan's finiteness is what guarantees the runtime terminates (every
//! replan is triggered by the consumption of at least one event).
//!
//! Events are keyed by the *execution slot*: a monotone counter of steps the
//! runtime has started, which keeps counting across residual re-planning
//! splices. A fault scheduled at slot 7 therefore hits whatever step is
//! seventh to execute, whether it came from the original schedule or was
//! spliced in by a replan.

use std::collections::BTreeMap;

/// A node of one of the two clusters, as fault-injection target.
///
/// `Ord` gives events a canonical storage order (senders before receivers,
/// then by index) so a plan's behaviour never depends on the order its
/// events were pushed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeRef {
    /// Sender `i` of cluster `C1`.
    Sender(usize),
    /// Receiver `j` of cluster `C2`.
    Receiver(usize),
}

/// Knobs for [`FaultPlan::generate`]: how many events of each kind to place
/// within the first `horizon` execution slots.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Number of transient transfer-failure events.
    pub transients: usize,
    /// Consecutive failures per transient event are drawn from
    /// `1..=max_consecutive` (crossing a runtime's `max_attempts` turns the
    /// event into a permanent failure).
    pub max_consecutive: u32,
    /// Number of permanent node-drop events.
    pub node_drops: usize,
    /// Number of per-step slowdown events.
    pub slowdowns: usize,
    /// Execution-slot horizon events are placed in (`0..horizon`).
    pub horizon: u64,
    /// Number of per-node NIC slowdown events (persistent: a hit NIC stays
    /// degraded from its slot onward).
    pub nic_slowdowns: usize,
    /// Number of per-backbone degradation events (persistent, like NIC
    /// slowdowns).
    pub link_degradations: usize,
    /// Backbone link count degradation events target (`0..links`); 1 for
    /// the paper's single-backbone platform.
    pub links: usize,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            transients: 6,
            max_consecutive: 3,
            node_drops: 1,
            slowdowns: 2,
            horizon: 32,
            nic_slowdowns: 0,
            link_degradations: 0,
            links: 1,
        }
    }
}

/// A finite, fully deterministic fault schedule.
///
/// Every event collection is kept in a *canonical* order (maps, or vectors
/// sorted by their full event key) and same-key events compose
/// commutatively, so two plans holding the same event multiset behave
/// identically regardless of the order the events were pushed in — the
/// slot, never the event-list position, decides what happens.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `(slot, op_index) → consecutive transient failures` for the op at
    /// that position of the step executed at that slot.
    transients: BTreeMap<(u64, usize), u32>,
    /// Permanent node drops, sorted by `(slot, node)`; a drop at slot `s`
    /// takes effect just before the step at slot `s` executes. Applied once
    /// (the runtime walks this list with a cursor).
    drops: Vec<(u64, NodeRef)>,
    /// `slot → slowdown factor` (> 1.0) applied to the whole step.
    slowdowns: BTreeMap<u64, f64>,
    /// Persistent per-node NIC slowdowns, sorted by the full event key:
    /// from slot `s` onward the node's NIC runs `factor×` slower. Multiple
    /// events for one node compose multiplicatively.
    nic_slowdowns: Vec<(u64, NodeRef, f64)>,
    /// Persistent per-backbone degradations, sorted by the full event key:
    /// from slot `s` onward link `l` runs `factor×` slower.
    link_degradations: Vec<(u64, usize, f64)>,
}

/// Minimal xorshift64* generator — keeps the crate std-only while matching
/// the deterministic-workload idiom of the `redistload` driver.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

impl FaultPlan {
    /// The empty plan: no faults, execution degenerates to plain schedule
    /// execution.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generates a plan from `seed` for a `n1 × n2` platform. The same
    /// `(seed, n1, n2, spec)` always yields the same plan.
    pub fn generate(seed: u64, n1: usize, n2: usize, spec: &FaultSpec) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let mut plan = FaultPlan::default();
        for _ in 0..spec.transients {
            let slot = rng.below(spec.horizon);
            // Early op positions so small steps are hit too.
            let op = rng.below(4) as usize;
            let fails = 1 + rng.below(spec.max_consecutive.max(1) as u64) as u32;
            plan.transients.insert((slot, op), fails);
        }
        let mut dropped: Vec<NodeRef> = Vec::new();
        for _ in 0..spec.node_drops {
            let slot = rng.below(spec.horizon);
            let idx = rng.below((n1 + n2) as u64) as usize;
            let node = if idx < n1 {
                NodeRef::Sender(idx)
            } else {
                NodeRef::Receiver(idx - n1)
            };
            if !dropped.contains(&node) {
                dropped.push(node);
                plan.drops.push((slot, node));
            }
        }
        plan.drops.sort_by_key(|&(slot, node)| (slot, node));
        for _ in 0..spec.slowdowns {
            let slot = rng.below(spec.horizon);
            let factor = [2.0, 4.0, 8.0][rng.below(3) as usize];
            plan.slowdowns.insert(slot, factor);
        }
        // New event kinds draw after the legacy ones so plans generated
        // with zero counts (the default) keep their exact historical
        // event sequence for a given seed.
        for _ in 0..spec.nic_slowdowns {
            let slot = rng.below(spec.horizon);
            let idx = rng.below((n1 + n2) as u64) as usize;
            let node = if idx < n1 {
                NodeRef::Sender(idx)
            } else {
                NodeRef::Receiver(idx - n1)
            };
            let factor = [1.5, 2.0, 4.0][rng.below(3) as usize];
            plan.push_nic_slowdown(slot, node, factor);
        }
        for _ in 0..spec.link_degradations {
            let slot = rng.below(spec.horizon);
            let link = rng.below(spec.links.max(1) as u64) as usize;
            let factor = [2.0, 4.0, 8.0][rng.below(3) as usize];
            plan.push_link_degradation(slot, link, factor);
        }
        plan
    }

    /// Places a transient event by hand: `fails` consecutive failures for
    /// op `op` of the step at `slot` (builder for tests and bespoke plans).
    pub fn insert_transient(&mut self, slot: u64, op: usize, fails: u32) {
        assert!(fails >= 1, "a transient event fails at least once");
        self.transients.insert((slot, op), fails);
    }

    /// Places a node-drop event by hand, keeping drops in the canonical
    /// `(slot, node)` order.
    pub fn push_drop(&mut self, slot: u64, node: NodeRef) {
        self.drops.push((slot, node));
        self.drops.sort_by_key(|&(s, n)| (s, n));
    }

    /// Places a slowdown event by hand. A second slowdown on the same slot
    /// composes multiplicatively (commutative, so push order is
    /// irrelevant).
    pub fn push_slowdown(&mut self, slot: u64, factor: f64) {
        assert!(factor > 1.0, "a slowdown stretches the step");
        *self.slowdowns.entry(slot).or_insert(1.0) *= factor;
    }

    /// Places a persistent per-node NIC slowdown: from `slot` onward the
    /// node's transfers run `factor×` slower. Events compose
    /// multiplicatively and are stored in canonical key order.
    pub fn push_nic_slowdown(&mut self, slot: u64, node: NodeRef, factor: f64) {
        assert!(factor > 1.0, "a NIC slowdown stretches transfers");
        self.nic_slowdowns.push((slot, node, factor));
        self.nic_slowdowns
            .sort_by_key(|a| (a.0, a.1, a.2.to_bits()));
    }

    /// Places a persistent per-backbone degradation: from `slot` onward
    /// link `link` runs `factor×` slower. Events compose multiplicatively
    /// and are stored in canonical key order.
    pub fn push_link_degradation(&mut self, slot: u64, link: usize, factor: f64) {
        assert!(factor > 1.0, "a degradation stretches transfers");
        self.link_degradations.push((slot, link, factor));
        self.link_degradations
            .sort_by_key(|a| (a.0, a.1, a.2.to_bits()));
    }

    /// Consecutive transient failures for op `op` of the step at `slot`
    /// (zero almost everywhere).
    pub fn transient_failures(&self, slot: u64, op: usize) -> u32 {
        self.transients.get(&(slot, op)).copied().unwrap_or(0)
    }

    /// The node drops taking effect at `slot`, in generation order.
    /// `drop_cursor` / [`Self::drops`] give the runtime ordered access.
    pub fn drops(&self) -> &[(u64, NodeRef)] {
        &self.drops
    }

    /// The slowdown factor for the step at `slot` (1.0 when none).
    pub fn slowdown_at(&self, slot: u64) -> f64 {
        self.slowdowns.get(&slot).copied().unwrap_or(1.0)
    }

    /// The persistent NIC slowdown events, in canonical order.
    pub fn nic_slowdowns(&self) -> &[(u64, NodeRef, f64)] {
        &self.nic_slowdowns
    }

    /// The persistent backbone degradation events, in canonical order.
    pub fn link_degradations(&self) -> &[(u64, usize, f64)] {
        &self.link_degradations
    }

    /// The accumulated NIC slowdown of `node` in force at `slot`: the
    /// product of every event with an effect slot ≤ `slot` (1.0 when
    /// untouched). Multiplication is commutative, so the result depends
    /// only on the event multiset.
    pub fn nic_factor_at(&self, slot: u64, node: NodeRef) -> f64 {
        self.nic_slowdowns
            .iter()
            .filter(|&&(s, n, _)| s <= slot && n == node)
            .map(|&(_, _, f)| f)
            .product()
    }

    /// The accumulated degradation of backbone `link` in force at `slot`.
    pub fn link_factor_at(&self, slot: u64, link: usize) -> f64 {
        self.link_degradations
            .iter()
            .filter(|&&(s, l, _)| s <= slot && l == link)
            .map(|&(_, _, f)| f)
            .product()
    }

    /// The full shaping of the step at `slot` for an `n1 × n2` platform:
    /// the global slowdown plus per-node and per-link factors in force.
    /// Vectors stay empty when no per-node/per-link event has taken effect
    /// yet, which keeps the fault-free path byte-identical to the legacy
    /// scalar-slowdown one.
    pub fn step_faults(&self, slot: u64, n1: usize, n2: usize) -> crate::transport::StepFaults {
        let mut faults = crate::transport::StepFaults::uniform(self.slowdown_at(slot));
        if self.nic_slowdowns.iter().any(|&(s, _, _)| s <= slot) {
            faults.sender_factors = (0..n1)
                .map(|i| self.nic_factor_at(slot, NodeRef::Sender(i)))
                .collect();
            faults.receiver_factors = (0..n2)
                .map(|j| self.nic_factor_at(slot, NodeRef::Receiver(j)))
                .collect();
        }
        if let Some(max_link) = self
            .link_degradations
            .iter()
            .filter(|&&(s, _, _)| s <= slot)
            .map(|&(_, l, _)| l)
            .max()
        {
            faults.link_factors = (0..=max_link)
                .map(|l| self.link_factor_at(slot, l))
                .collect();
        }
        faults
    }

    /// Total number of events in the plan — an upper bound on how many
    /// replans an execution can possibly need.
    pub fn event_count(&self) -> usize {
        self.transients.len()
            + self.drops.len()
            + self.slowdowns.len()
            + self.nic_slowdowns.len()
            + self.link_degradations.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.event_count(), 0);
        assert_eq!(p.transient_failures(0, 0), 0);
        assert_eq!(p.slowdown_at(3), 1.0);
        assert!(p.drops().is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(42, 4, 4, &spec);
        let b = FaultPlan::generate(42, 4, 4, &spec);
        assert_eq!(a.transients, b.transients);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.slowdowns, b.slowdowns);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec {
            transients: 12,
            ..FaultSpec::default()
        };
        let a = FaultPlan::generate(1, 4, 4, &spec);
        let b = FaultPlan::generate(2, 4, 4, &spec);
        assert!(a.transients != b.transients || a.drops != b.drops || a.slowdowns != b.slowdowns);
    }

    #[test]
    fn events_respect_spec_bounds() {
        let spec = FaultSpec {
            transients: 20,
            max_consecutive: 2,
            node_drops: 3,
            slowdowns: 5,
            horizon: 10,
            ..FaultSpec::default()
        };
        let p = FaultPlan::generate(7, 3, 5, &spec);
        for (&(slot, _), &fails) in &p.transients {
            assert!(slot < 10);
            assert!((1..=2).contains(&fails));
        }
        for &(slot, node) in p.drops() {
            assert!(slot < 10);
            match node {
                NodeRef::Sender(i) => assert!(i < 3),
                NodeRef::Receiver(j) => assert!(j < 5),
            }
        }
        for (&slot, &f) in &p.slowdowns {
            assert!(slot < 10);
            assert!(f > 1.0);
        }
        // Collisions may merge map entries but never exceed the spec counts.
        assert!(p.transients.len() <= 20);
        assert!(p.drops.len() <= 3);
        assert!(p.slowdowns.len() <= 5);
    }

    #[test]
    fn push_order_never_changes_the_plan() {
        // The same event multiset — a drop, a step slowdown, a NIC
        // slowdown and a link degradation all on slot 3, plus a second
        // same-slot slowdown — pushed in two different orders must yield
        // identical plans (satellite of the slot-determinism fix).
        let build = |order: &[usize]| {
            let mut p = FaultPlan::none();
            for &e in order {
                match e {
                    0 => p.push_drop(3, NodeRef::Sender(1)),
                    1 => p.push_slowdown(3, 2.0),
                    2 => p.push_slowdown(3, 4.0),
                    3 => p.push_nic_slowdown(3, NodeRef::Receiver(0), 2.0),
                    4 => p.push_nic_slowdown(3, NodeRef::Receiver(0), 1.5),
                    5 => p.push_link_degradation(3, 0, 2.0),
                    _ => p.push_drop(3, NodeRef::Receiver(2)),
                }
            }
            p
        };
        let a = build(&[0, 1, 2, 3, 4, 5, 6]);
        let b = build(&[6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(a, b, "event push order leaked into the plan");
        assert_eq!(a.slowdown_at(3), 8.0, "same-slot slowdowns compose");
        assert!((a.nic_factor_at(3, NodeRef::Receiver(0)) - 3.0).abs() < 1e-12);
        assert_eq!(a.nic_factor_at(2, NodeRef::Receiver(0)), 1.0, "not yet");
        assert_eq!(a.link_factor_at(5, 0), 2.0, "persists past its slot");
        // 2 drops + 1 composed slowdown entry + 2 NIC events + 1 link event.
        assert_eq!(a.event_count(), 6);
    }

    #[test]
    fn step_faults_stay_uniform_without_node_events() {
        let mut p = FaultPlan::none();
        p.push_slowdown(2, 4.0);
        let f = p.step_faults(2, 3, 3);
        assert_eq!(f.slowdown, 4.0);
        assert!(f.sender_factors.is_empty() && f.link_factors.is_empty());
        assert!(f.is_uniform() || f.slowdown != 1.0);

        p.push_nic_slowdown(1, NodeRef::Sender(0), 2.0);
        p.push_link_degradation(4, 1, 8.0);
        let f = p.step_faults(2, 3, 3);
        assert_eq!(f.sender_factors, vec![2.0, 1.0, 1.0]);
        assert_eq!(f.receiver_factors, vec![1.0, 1.0, 1.0]);
        assert!(f.link_factors.is_empty(), "link event not due yet");
        let f = p.step_faults(9, 3, 3);
        assert_eq!(f.link_factors, vec![1.0, 8.0]);
    }

    #[test]
    fn generate_with_new_kinds_targets_valid_nodes_and_links() {
        let spec = FaultSpec {
            nic_slowdowns: 8,
            link_degradations: 5,
            links: 3,
            ..FaultSpec::default()
        };
        let p = FaultPlan::generate(11, 3, 4, &spec);
        assert_eq!(p.nic_slowdowns().len(), 8);
        assert_eq!(p.link_degradations().len(), 5);
        for &(slot, node, f) in p.nic_slowdowns() {
            assert!(slot < spec.horizon);
            assert!(f > 1.0);
            match node {
                NodeRef::Sender(i) => assert!(i < 3),
                NodeRef::Receiver(j) => assert!(j < 4),
            }
        }
        for &(slot, link, f) in p.link_degradations() {
            assert!(slot < spec.horizon && link < 3 && f > 1.0);
        }
        // Zero counts reproduce the legacy event stream exactly.
        let legacy = FaultPlan::generate(42, 4, 4, &FaultSpec::default());
        let extended = FaultPlan::generate(
            42,
            4,
            4,
            &FaultSpec {
                nic_slowdowns: 0,
                link_degradations: 0,
                ..FaultSpec::default()
            },
        );
        assert_eq!(legacy, extended);
    }

    #[test]
    fn drops_sorted_and_distinct() {
        let spec = FaultSpec {
            node_drops: 6,
            ..FaultSpec::default()
        };
        let p = FaultPlan::generate(99, 4, 4, &spec);
        for w in p.drops().windows(2) {
            assert!(w[0].0 <= w[1].0, "drops sorted by slot");
        }
        for (i, &(_, a)) in p.drops().iter().enumerate() {
            for &(_, b) in &p.drops()[i + 1..] {
                assert_ne!(a, b, "each node dropped at most once");
            }
        }
    }
}
