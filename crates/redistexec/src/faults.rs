//! Deterministic fault plans.
//!
//! Fault injection here is *plan-driven*, not probabilistic-at-runtime: a
//! [`FaultPlan`] is a finite, explicit list of events generated once from a
//! seed, and execution merely looks events up by position. Two runs with the
//! same seed therefore inject byte-identical fault sequences — the property
//! the 200-case campaign proptest and `BENCH_exec.json` regression lean on —
//! and a plan's finiteness is what guarantees the runtime terminates (every
//! replan is triggered by the consumption of at least one event).
//!
//! Events are keyed by the *execution slot*: a monotone counter of steps the
//! runtime has started, which keeps counting across residual re-planning
//! splices. A fault scheduled at slot 7 therefore hits whatever step is
//! seventh to execute, whether it came from the original schedule or was
//! spliced in by a replan.

use std::collections::BTreeMap;

/// A node of one of the two clusters, as fault-injection target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// Sender `i` of cluster `C1`.
    Sender(usize),
    /// Receiver `j` of cluster `C2`.
    Receiver(usize),
}

/// Knobs for [`FaultPlan::generate`]: how many events of each kind to place
/// within the first `horizon` execution slots.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Number of transient transfer-failure events.
    pub transients: usize,
    /// Consecutive failures per transient event are drawn from
    /// `1..=max_consecutive` (crossing a runtime's `max_attempts` turns the
    /// event into a permanent failure).
    pub max_consecutive: u32,
    /// Number of permanent node-drop events.
    pub node_drops: usize,
    /// Number of per-step slowdown events.
    pub slowdowns: usize,
    /// Execution-slot horizon events are placed in (`0..horizon`).
    pub horizon: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            transients: 6,
            max_consecutive: 3,
            node_drops: 1,
            slowdowns: 2,
            horizon: 32,
        }
    }
}

/// A finite, fully deterministic fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(slot, op_index) → consecutive transient failures` for the op at
    /// that position of the step executed at that slot.
    transients: BTreeMap<(u64, usize), u32>,
    /// Permanent node drops, sorted by slot; a drop at slot `s` takes effect
    /// just before the step at slot `s` executes. Applied once (the runtime
    /// walks this list with a cursor).
    drops: Vec<(u64, NodeRef)>,
    /// `slot → slowdown factor` (> 1.0) applied to the whole step.
    slowdowns: BTreeMap<u64, f64>,
}

/// Minimal xorshift64* generator — keeps the crate std-only while matching
/// the deterministic-workload idiom of the `redistload` driver.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

impl FaultPlan {
    /// The empty plan: no faults, execution degenerates to plain schedule
    /// execution.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generates a plan from `seed` for a `n1 × n2` platform. The same
    /// `(seed, n1, n2, spec)` always yields the same plan.
    pub fn generate(seed: u64, n1: usize, n2: usize, spec: &FaultSpec) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let mut plan = FaultPlan::default();
        for _ in 0..spec.transients {
            let slot = rng.below(spec.horizon);
            // Early op positions so small steps are hit too.
            let op = rng.below(4) as usize;
            let fails = 1 + rng.below(spec.max_consecutive.max(1) as u64) as u32;
            plan.transients.insert((slot, op), fails);
        }
        let mut dropped: Vec<NodeRef> = Vec::new();
        for _ in 0..spec.node_drops {
            let slot = rng.below(spec.horizon);
            let idx = rng.below((n1 + n2) as u64) as usize;
            let node = if idx < n1 {
                NodeRef::Sender(idx)
            } else {
                NodeRef::Receiver(idx - n1)
            };
            if !dropped.contains(&node) {
                dropped.push(node);
                plan.drops.push((slot, node));
            }
        }
        plan.drops.sort_by_key(|&(slot, _)| slot);
        for _ in 0..spec.slowdowns {
            let slot = rng.below(spec.horizon);
            let factor = [2.0, 4.0, 8.0][rng.below(3) as usize];
            plan.slowdowns.insert(slot, factor);
        }
        plan
    }

    /// Places a transient event by hand: `fails` consecutive failures for
    /// op `op` of the step at `slot` (builder for tests and bespoke plans).
    pub fn insert_transient(&mut self, slot: u64, op: usize, fails: u32) {
        assert!(fails >= 1, "a transient event fails at least once");
        self.transients.insert((slot, op), fails);
    }

    /// Places a node-drop event by hand, keeping drops sorted by slot.
    pub fn push_drop(&mut self, slot: u64, node: NodeRef) {
        self.drops.push((slot, node));
        self.drops.sort_by_key(|&(s, _)| s);
    }

    /// Places a slowdown event by hand.
    pub fn push_slowdown(&mut self, slot: u64, factor: f64) {
        assert!(factor > 1.0, "a slowdown stretches the step");
        self.slowdowns.insert(slot, factor);
    }

    /// Consecutive transient failures for op `op` of the step at `slot`
    /// (zero almost everywhere).
    pub fn transient_failures(&self, slot: u64, op: usize) -> u32 {
        self.transients.get(&(slot, op)).copied().unwrap_or(0)
    }

    /// The node drops taking effect at `slot`, in generation order.
    /// `drop_cursor` / [`Self::drops`] give the runtime ordered access.
    pub fn drops(&self) -> &[(u64, NodeRef)] {
        &self.drops
    }

    /// The slowdown factor for the step at `slot` (1.0 when none).
    pub fn slowdown_at(&self, slot: u64) -> f64 {
        self.slowdowns.get(&slot).copied().unwrap_or(1.0)
    }

    /// Total number of events in the plan — an upper bound on how many
    /// replans an execution can possibly need.
    pub fn event_count(&self) -> usize {
        self.transients.len() + self.drops.len() + self.slowdowns.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.event_count(), 0);
        assert_eq!(p.transient_failures(0, 0), 0);
        assert_eq!(p.slowdown_at(3), 1.0);
        assert!(p.drops().is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(42, 4, 4, &spec);
        let b = FaultPlan::generate(42, 4, 4, &spec);
        assert_eq!(a.transients, b.transients);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.slowdowns, b.slowdowns);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec {
            transients: 12,
            ..FaultSpec::default()
        };
        let a = FaultPlan::generate(1, 4, 4, &spec);
        let b = FaultPlan::generate(2, 4, 4, &spec);
        assert!(a.transients != b.transients || a.drops != b.drops || a.slowdowns != b.slowdowns);
    }

    #[test]
    fn events_respect_spec_bounds() {
        let spec = FaultSpec {
            transients: 20,
            max_consecutive: 2,
            node_drops: 3,
            slowdowns: 5,
            horizon: 10,
        };
        let p = FaultPlan::generate(7, 3, 5, &spec);
        for (&(slot, _), &fails) in &p.transients {
            assert!(slot < 10);
            assert!((1..=2).contains(&fails));
        }
        for &(slot, node) in p.drops() {
            assert!(slot < 10);
            match node {
                NodeRef::Sender(i) => assert!(i < 3),
                NodeRef::Receiver(j) => assert!(j < 5),
            }
        }
        for (&slot, &f) in &p.slowdowns {
            assert!(slot < 10);
            assert!(f > 1.0);
        }
        // Collisions may merge map entries but never exceed the spec counts.
        assert!(p.transients.len() <= 20);
        assert!(p.drops.len() <= 3);
        assert!(p.slowdowns.len() <= 5);
    }

    #[test]
    fn drops_sorted_and_distinct() {
        let spec = FaultSpec {
            node_drops: 6,
            ..FaultSpec::default()
        };
        let p = FaultPlan::generate(99, 4, 4, &spec);
        for w in p.drops().windows(2) {
            assert!(w[0].0 <= w[1].0, "drops sorted by slot");
        }
        for (i, &(_, a)) in p.drops().iter().enumerate() {
            for &(_, b) in &p.drops()[i + 1..] {
                assert_ne!(a, b, "each node dropped at most once");
            }
        }
    }
}
