//! Pluggable transfer transports.
//!
//! The runtime hands a transport one *step* at a time: a set of byte-valued
//! transfer operations forming a matching (1-port: each node appears at most
//! once). The transport answers two questions — how long would this step
//! take ([`Transport::estimate`]), and actually move the bytes
//! ([`Transport::deliver`]) — and keeps the authoritative ledger of bytes
//! delivered per `(sender, receiver)` pair, which is exactly the matrix
//! [`kpbs::residual_matrix`] subtracts from the original demand when the
//! runtime re-plans.
//!
//! Two implementations ship: a loopback transport with analytic 1-port
//! timing, and a [`flowsim`]-backed transport that runs every step through
//! the max–min fair fluid engine (the same machinery behind
//! `flowsim::executor::scheduled_time`). Slowdown faults are injected into
//! the latter via [`NetworkSpec::scaled`] — a uniform capacity scale of
//! `1/s` models a platform-wide slowdown of `s` exactly.

use flowsim::{Engine, Flow, NetworkSpec, SimConfig};
use kpbs::{Platform, TrafficMatrix};

/// One byte-valued transfer of a step: `bytes` from sender `src` to
/// receiver `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOp {
    /// Sending node (cluster `C1` index).
    pub src: usize,
    /// Receiving node (cluster `C2` index).
    pub dst: usize,
    /// Bytes to move.
    pub bytes: u64,
}

/// A medium that can carry a step's transfers.
pub trait Transport {
    /// Projected duration of the step in seconds under `slowdown` (≥ 1.0),
    /// without moving any bytes. The runtime uses this for its per-step
    /// timeout check before committing to the step.
    fn estimate(&mut self, ops: &[TransferOp], slowdown: f64) -> f64;

    /// Carries the step: records every op's bytes as delivered and returns
    /// the step duration in seconds under `slowdown`.
    fn deliver(&mut self, ops: &[TransferOp], slowdown: f64) -> f64;

    /// The bytes delivered so far, per `(sender, receiver)` pair.
    fn delivered(&self) -> &TrafficMatrix;
}

/// In-memory transport with analytic 1-port timing: the ops of a step run
/// in parallel, each at the fixed per-transfer rate, so the step lasts as
/// long as its largest op (times the slowdown).
#[derive(Debug, Clone)]
pub struct LoopbackTransport {
    rate_bytes_per_s: f64,
    ledger: TrafficMatrix,
}

impl LoopbackTransport {
    /// A loopback transport for an `n1 × n2` platform at `rate_bytes_per_s`
    /// per transfer.
    pub fn new(n1: usize, n2: usize, rate_bytes_per_s: f64) -> Self {
        assert!(rate_bytes_per_s > 0.0 && rate_bytes_per_s.is_finite());
        LoopbackTransport {
            rate_bytes_per_s,
            ledger: TrafficMatrix::zeros(n1, n2),
        }
    }

    /// A loopback transport matching a [`Platform`]'s per-transfer speed
    /// `t = min(t1, t2)` Mbit/s.
    pub fn for_platform(p: &Platform) -> Self {
        LoopbackTransport::new(p.n1, p.n2, p.transfer_speed() * 1e6 / 8.0)
    }
}

impl Transport for LoopbackTransport {
    fn estimate(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        let largest = ops.iter().map(|op| op.bytes).max().unwrap_or(0);
        largest as f64 / self.rate_bytes_per_s * slowdown
    }

    fn deliver(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        let seconds = self.estimate(ops, slowdown);
        for op in ops {
            let sofar = self.ledger.get(op.src, op.dst);
            self.ledger.set(op.src, op.dst, sofar + op.bytes);
        }
        seconds
    }

    fn delivered(&self) -> &TrafficMatrix {
        &self.ledger
    }
}

/// Transport backed by the [`flowsim`] fluid engine: each step becomes one
/// batch of flows run to completion under max–min fair sharing on the
/// network spec, so NIC and backbone contention shape the step duration.
/// Slowdowns run the step on [`NetworkSpec::scaled`]`(1/s)`.
#[derive(Debug, Clone)]
pub struct SimTransport {
    spec: NetworkSpec,
    config: SimConfig,
    ledger: TrafficMatrix,
}

impl SimTransport {
    /// A simulated transport over `spec` with the given engine config.
    pub fn new(spec: NetworkSpec, config: SimConfig) -> Self {
        let ledger = TrafficMatrix::zeros(spec.senders(), spec.receivers());
        SimTransport {
            spec,
            config,
            ledger,
        }
    }

    /// A simulated transport for a [`Platform`] with default engine config.
    pub fn for_platform(p: &Platform) -> Self {
        SimTransport::new(NetworkSpec::from_platform(p), SimConfig::default())
    }
}

impl Transport for SimTransport {
    fn estimate(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        if ops.is_empty() {
            return 0.0;
        }
        let flows: Vec<Flow> = ops
            .iter()
            .map(|op| Flow::new(op.src, op.dst, op.bytes as f64))
            .collect();
        let spec = self.spec.scaled(1.0 / slowdown);
        Engine::new(spec, self.config.clone()).run(&flows).makespan
    }

    fn deliver(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        let seconds = self.estimate(ops, slowdown);
        for op in ops {
            let sofar = self.ledger.get(op.src, op.dst);
            self.ledger.set(op.src, op.dst, sofar + op.bytes);
        }
        seconds
    }

    fn delivered(&self) -> &TrafficMatrix {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_timing_is_largest_op() {
        // 12.5 MB/s; ops of 25 MB and 12.5 MB in parallel → 2 s.
        let mut t = LoopbackTransport::new(2, 2, 12.5e6);
        let ops = [
            TransferOp {
                src: 0,
                dst: 0,
                bytes: 25_000_000,
            },
            TransferOp {
                src: 1,
                dst: 1,
                bytes: 12_500_000,
            },
        ];
        assert!((t.estimate(&ops, 1.0) - 2.0).abs() < 1e-9);
        assert!((t.estimate(&ops, 4.0) - 8.0).abs() < 1e-9, "slowdown ×4");
        let secs = t.deliver(&ops, 1.0);
        assert!((secs - 2.0).abs() < 1e-9);
        assert_eq!(t.delivered().get(0, 0), 25_000_000);
        assert_eq!(t.delivered().get(1, 1), 12_500_000);
        assert_eq!(t.delivered().get(0, 1), 0);
    }

    #[test]
    fn loopback_ledger_accumulates() {
        let mut t = LoopbackTransport::new(1, 1, 1e6);
        let op = [TransferOp {
            src: 0,
            dst: 0,
            bytes: 500,
        }];
        t.deliver(&op, 1.0);
        t.deliver(&op, 1.0);
        assert_eq!(t.delivered().get(0, 0), 1000);
    }

    #[test]
    fn loopback_empty_step_is_instant() {
        let mut t = LoopbackTransport::new(1, 1, 1e6);
        assert_eq!(t.estimate(&[], 1.0), 0.0);
        assert_eq!(t.deliver(&[], 2.0), 0.0);
    }

    #[test]
    fn sim_transport_matches_loopback_when_uncontended() {
        // One 25 MB flow on 100 Mbit/s NICs and ample backbone: both
        // transports see 2 s.
        let p = Platform::new(2, 2, 100.0, 100.0, 1000.0);
        let mut sim = SimTransport::for_platform(&p);
        let mut loop_ = LoopbackTransport::for_platform(&p);
        let ops = [TransferOp {
            src: 0,
            dst: 1,
            bytes: 25_000_000,
        }];
        let a = sim.deliver(&ops, 1.0);
        let b = loop_.deliver(&ops, 1.0);
        assert!((a - b).abs() < 1e-6, "sim {a} vs loopback {b}");
        assert_eq!(sim.delivered().get(0, 1), 25_000_000);
    }

    #[test]
    fn sim_slowdown_scales_linearly() {
        let p = Platform::new(2, 2, 100.0, 100.0, 150.0);
        let mut sim = SimTransport::for_platform(&p);
        let ops = [
            TransferOp {
                src: 0,
                dst: 0,
                bytes: 10_000_000,
            },
            TransferOp {
                src: 1,
                dst: 1,
                bytes: 10_000_000,
            },
        ];
        let base = sim.estimate(&ops, 1.0);
        let slowed = sim.estimate(&ops, 3.0);
        assert!(
            (slowed - 3.0 * base).abs() < 1e-6 * base.max(1.0),
            "max–min fairness scales linearly under uniform capacity scaling"
        );
    }
}
