//! Pluggable transfer transports.
//!
//! The runtime hands a transport one *step* at a time: a set of byte-valued
//! transfer operations forming a matching (1-port: each node appears at most
//! once). The transport answers two questions — how long would this step
//! take ([`Transport::estimate`]), and actually move the bytes
//! ([`Transport::deliver`]) — and keeps the authoritative ledger of bytes
//! delivered per `(sender, receiver)` pair, which is exactly the matrix
//! [`kpbs::residual_matrix`] subtracts from the original demand when the
//! runtime re-plans.
//!
//! Two implementations ship: a loopback transport with analytic 1-port
//! timing, and a [`flowsim`]-backed transport that runs every step through
//! the max–min fair fluid engine (the same machinery behind
//! `flowsim::executor::scheduled_time`). Slowdown faults are injected into
//! the latter via [`NetworkSpec::scaled`] — a uniform capacity scale of
//! `1/s` models a platform-wide slowdown of `s` exactly.

use flowsim::{Engine, Flow, NetworkSpec, SimConfig};
use kpbs::{Platform, Topology, TrafficMatrix};

/// Fault shaping in force for one execution step.
///
/// The uniform `slowdown` is the legacy platform-wide factor; the optional
/// per-node and per-link vectors carry heterogeneous faults from
/// [`FaultPlan`](crate::FaultPlan): a factor of `f > 1.0` at index `i`
/// means node (or link) `i` currently runs `f×` slower. Empty vectors mean
/// "all 1.0", so [`StepFaults::uniform`] is exactly the legacy behaviour
/// and transports take byte-identical code paths for it.
#[derive(Debug, Clone, PartialEq)]
pub struct StepFaults {
    /// Platform-wide slowdown factor (≥ 1.0).
    pub slowdown: f64,
    /// Per-sender NIC slowdown factors; empty = all 1.0.
    pub sender_factors: Vec<f64>,
    /// Per-receiver NIC slowdown factors; empty = all 1.0.
    pub receiver_factors: Vec<f64>,
    /// Per-backbone-link degradation factors; empty = all 1.0. Indices
    /// past the end of the vector are treated as 1.0.
    pub link_factors: Vec<f64>,
}

impl StepFaults {
    /// Uniform shaping: only the platform-wide `slowdown` applies.
    pub fn uniform(slowdown: f64) -> Self {
        StepFaults {
            slowdown,
            sender_factors: Vec::new(),
            receiver_factors: Vec::new(),
            link_factors: Vec::new(),
        }
    }

    /// True when no per-node or per-link factor is in force, i.e. the
    /// scalar `slowdown` fully describes this step's shaping.
    pub fn is_uniform(&self) -> bool {
        self.sender_factors.is_empty()
            && self.receiver_factors.is_empty()
            && self.link_factors.is_empty()
    }

    fn sender_factor(&self, i: usize) -> f64 {
        self.sender_factors.get(i).copied().unwrap_or(1.0)
    }

    fn receiver_factor(&self, j: usize) -> f64 {
        self.receiver_factors.get(j).copied().unwrap_or(1.0)
    }
}

/// One byte-valued transfer of a step: `bytes` from sender `src` to
/// receiver `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOp {
    /// Sending node (cluster `C1` index).
    pub src: usize,
    /// Receiving node (cluster `C2` index).
    pub dst: usize,
    /// Bytes to move.
    pub bytes: u64,
}

/// A medium that can carry a step's transfers.
pub trait Transport {
    /// Projected duration of the step in seconds under `slowdown` (≥ 1.0),
    /// without moving any bytes. The runtime uses this for its per-step
    /// timeout check before committing to the step.
    fn estimate(&mut self, ops: &[TransferOp], slowdown: f64) -> f64;

    /// Carries the step: records every op's bytes as delivered and returns
    /// the step duration in seconds under `slowdown`.
    fn deliver(&mut self, ops: &[TransferOp], slowdown: f64) -> f64;

    /// The bytes delivered so far, per `(sender, receiver)` pair.
    fn delivered(&self) -> &TrafficMatrix;

    /// Like [`Transport::estimate`] but under full [`StepFaults`] shaping.
    ///
    /// The default implementation honours only `faults.slowdown` —
    /// transports that can model per-node NIC or per-link degradation
    /// faults must override this (and [`Transport::deliver_faulted`]).
    fn estimate_faulted(&mut self, ops: &[TransferOp], faults: &StepFaults) -> f64 {
        self.estimate(ops, faults.slowdown)
    }

    /// Like [`Transport::deliver`] but under full [`StepFaults`] shaping.
    fn deliver_faulted(&mut self, ops: &[TransferOp], faults: &StepFaults) -> f64 {
        self.deliver(ops, faults.slowdown)
    }
}

/// In-memory transport with analytic 1-port timing: the ops of a step run
/// in parallel, each at the fixed per-transfer rate, so the step lasts as
/// long as its largest op (times the slowdown).
#[derive(Debug, Clone)]
pub struct LoopbackTransport {
    rate_bytes_per_s: f64,
    ledger: TrafficMatrix,
}

impl LoopbackTransport {
    /// A loopback transport for an `n1 × n2` platform at `rate_bytes_per_s`
    /// per transfer.
    pub fn new(n1: usize, n2: usize, rate_bytes_per_s: f64) -> Self {
        assert!(rate_bytes_per_s > 0.0 && rate_bytes_per_s.is_finite());
        LoopbackTransport {
            rate_bytes_per_s,
            ledger: TrafficMatrix::zeros(n1, n2),
        }
    }

    /// A loopback transport matching a [`Platform`]'s per-transfer speed
    /// `t = min(t1, t2)` Mbit/s.
    pub fn for_platform(p: &Platform) -> Self {
        LoopbackTransport::new(p.n1, p.n2, p.transfer_speed() * 1e6 / 8.0)
    }
}

impl Transport for LoopbackTransport {
    fn estimate(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        let largest = ops.iter().map(|op| op.bytes).max().unwrap_or(0);
        largest as f64 / self.rate_bytes_per_s * slowdown
    }

    fn deliver(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        let seconds = self.estimate(ops, slowdown);
        for op in ops {
            let sofar = self.ledger.get(op.src, op.dst);
            self.ledger.set(op.src, op.dst, sofar + op.bytes);
        }
        seconds
    }

    fn delivered(&self) -> &TrafficMatrix {
        &self.ledger
    }

    /// Per-node NIC faults stretch each op by the product of its sender's
    /// and receiver's factors; the step still lasts as long as its slowest
    /// op. Link factors are ignored — loopback has no backbone to degrade.
    fn estimate_faulted(&mut self, ops: &[TransferOp], faults: &StepFaults) -> f64 {
        if faults.is_uniform() {
            return self.estimate(ops, faults.slowdown);
        }
        ops.iter()
            .map(|op| {
                op.bytes as f64 / self.rate_bytes_per_s
                    * faults.slowdown
                    * faults.sender_factor(op.src)
                    * faults.receiver_factor(op.dst)
            })
            .fold(0.0, f64::max)
    }

    fn deliver_faulted(&mut self, ops: &[TransferOp], faults: &StepFaults) -> f64 {
        let seconds = self.estimate_faulted(ops, faults);
        for op in ops {
            let sofar = self.ledger.get(op.src, op.dst);
            self.ledger.set(op.src, op.dst, sofar + op.bytes);
        }
        seconds
    }
}

/// Transport backed by the [`flowsim`] fluid engine: each step becomes one
/// batch of flows run to completion under max–min fair sharing on the
/// network spec, so NIC and backbone contention shape the step duration.
/// Slowdowns run the step on [`NetworkSpec::scaled`]`(1/s)`.
#[derive(Debug, Clone)]
pub struct SimTransport {
    spec: NetworkSpec,
    config: SimConfig,
    ledger: TrafficMatrix,
}

impl SimTransport {
    /// A simulated transport over `spec` with the given engine config.
    pub fn new(spec: NetworkSpec, config: SimConfig) -> Self {
        let ledger = TrafficMatrix::zeros(spec.senders(), spec.receivers());
        SimTransport {
            spec,
            config,
            ledger,
        }
    }

    /// A simulated transport for a [`Platform`] with default engine config.
    pub fn for_platform(p: &Platform) -> Self {
        SimTransport::new(NetworkSpec::from_platform(p), SimConfig::default())
    }

    /// A simulated transport for a heterogeneous [`Topology`] with default
    /// engine config. Fails when the topology does not validate.
    pub fn for_topology(topo: &Topology) -> Result<Self, String> {
        Ok(SimTransport::new(
            NetworkSpec::from_topology(topo)?,
            SimConfig::default(),
        ))
    }

    /// The network spec under `faults`: every capacity scaled by
    /// `1/slowdown`, then each faulted sender/receiver NIC and backbone
    /// link divided by its factor. The uniform path takes the exact legacy
    /// [`NetworkSpec::scaled`] route, so fault-free and slowdown-only runs
    /// stay byte-identical to the scalar API.
    fn faulted_spec(&self, faults: &StepFaults) -> NetworkSpec {
        let mut spec = self.spec.scaled(1.0 / faults.slowdown);
        if faults.is_uniform() {
            return spec;
        }
        for (i, cap) in spec.nic_out.iter_mut().enumerate() {
            *cap /= faults.sender_factor(i);
        }
        for (j, cap) in spec.nic_in.iter_mut().enumerate() {
            *cap /= faults.receiver_factor(j);
        }
        for (l, &factor) in faults.link_factors.iter().enumerate() {
            if factor != 1.0 && l < spec.num_links() {
                let degraded = spec.link_profile(l).scaled(1.0 / factor);
                if l == 0 {
                    spec.backbone = degraded;
                } else {
                    spec.extra_links[l - 1] = degraded;
                }
            }
        }
        spec
    }
}

impl Transport for SimTransport {
    fn estimate(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        if ops.is_empty() {
            return 0.0;
        }
        let flows: Vec<Flow> = ops
            .iter()
            .map(|op| Flow::new(op.src, op.dst, op.bytes as f64))
            .collect();
        let spec = self.spec.scaled(1.0 / slowdown);
        Engine::new(spec, self.config.clone()).run(&flows).makespan
    }

    fn deliver(&mut self, ops: &[TransferOp], slowdown: f64) -> f64 {
        let seconds = self.estimate(ops, slowdown);
        for op in ops {
            let sofar = self.ledger.get(op.src, op.dst);
            self.ledger.set(op.src, op.dst, sofar + op.bytes);
        }
        seconds
    }

    fn delivered(&self) -> &TrafficMatrix {
        &self.ledger
    }

    fn estimate_faulted(&mut self, ops: &[TransferOp], faults: &StepFaults) -> f64 {
        if ops.is_empty() {
            return 0.0;
        }
        let flows: Vec<Flow> = ops
            .iter()
            .map(|op| Flow::new(op.src, op.dst, op.bytes as f64))
            .collect();
        let spec = self.faulted_spec(faults);
        Engine::new(spec, self.config.clone()).run(&flows).makespan
    }

    fn deliver_faulted(&mut self, ops: &[TransferOp], faults: &StepFaults) -> f64 {
        let seconds = self.estimate_faulted(ops, faults);
        for op in ops {
            let sofar = self.ledger.get(op.src, op.dst);
            self.ledger.set(op.src, op.dst, sofar + op.bytes);
        }
        seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_timing_is_largest_op() {
        // 12.5 MB/s; ops of 25 MB and 12.5 MB in parallel → 2 s.
        let mut t = LoopbackTransport::new(2, 2, 12.5e6);
        let ops = [
            TransferOp {
                src: 0,
                dst: 0,
                bytes: 25_000_000,
            },
            TransferOp {
                src: 1,
                dst: 1,
                bytes: 12_500_000,
            },
        ];
        assert!((t.estimate(&ops, 1.0) - 2.0).abs() < 1e-9);
        assert!((t.estimate(&ops, 4.0) - 8.0).abs() < 1e-9, "slowdown ×4");
        let secs = t.deliver(&ops, 1.0);
        assert!((secs - 2.0).abs() < 1e-9);
        assert_eq!(t.delivered().get(0, 0), 25_000_000);
        assert_eq!(t.delivered().get(1, 1), 12_500_000);
        assert_eq!(t.delivered().get(0, 1), 0);
    }

    #[test]
    fn loopback_ledger_accumulates() {
        let mut t = LoopbackTransport::new(1, 1, 1e6);
        let op = [TransferOp {
            src: 0,
            dst: 0,
            bytes: 500,
        }];
        t.deliver(&op, 1.0);
        t.deliver(&op, 1.0);
        assert_eq!(t.delivered().get(0, 0), 1000);
    }

    #[test]
    fn loopback_empty_step_is_instant() {
        let mut t = LoopbackTransport::new(1, 1, 1e6);
        assert_eq!(t.estimate(&[], 1.0), 0.0);
        assert_eq!(t.deliver(&[], 2.0), 0.0);
    }

    #[test]
    fn sim_transport_matches_loopback_when_uncontended() {
        // One 25 MB flow on 100 Mbit/s NICs and ample backbone: both
        // transports see 2 s.
        let p = Platform::new(2, 2, 100.0, 100.0, 1000.0);
        let mut sim = SimTransport::for_platform(&p);
        let mut loop_ = LoopbackTransport::for_platform(&p);
        let ops = [TransferOp {
            src: 0,
            dst: 1,
            bytes: 25_000_000,
        }];
        let a = sim.deliver(&ops, 1.0);
        let b = loop_.deliver(&ops, 1.0);
        assert!((a - b).abs() < 1e-6, "sim {a} vs loopback {b}");
        assert_eq!(sim.delivered().get(0, 1), 25_000_000);
    }

    #[test]
    fn loopback_nic_faults_stretch_only_the_faulted_op() {
        // 12.5 MB/s; two 12.5 MB ops. Sender 0 runs 3× slower → its op
        // takes 3 s while the other still takes 1 s; the step takes 3 s.
        let mut t = LoopbackTransport::new(2, 2, 12.5e6);
        let ops = [
            TransferOp {
                src: 0,
                dst: 0,
                bytes: 12_500_000,
            },
            TransferOp {
                src: 1,
                dst: 1,
                bytes: 12_500_000,
            },
        ];
        let faults = StepFaults {
            slowdown: 1.0,
            sender_factors: vec![3.0, 1.0],
            receiver_factors: Vec::new(),
            link_factors: vec![8.0], // no backbone on loopback: ignored
        };
        assert!((t.estimate_faulted(&ops, &faults) - 3.0).abs() < 1e-9);
        let uniform = StepFaults::uniform(2.0);
        assert!((t.estimate_faulted(&ops, &uniform) - 2.0).abs() < 1e-9);
        let secs = t.deliver_faulted(&ops, &faults);
        assert!((secs - 3.0).abs() < 1e-9);
        assert_eq!(t.delivered().get(0, 0), 12_500_000);
        assert_eq!(t.delivered().get(1, 1), 12_500_000);
    }

    #[test]
    fn sim_faulted_uniform_path_matches_scalar_api() {
        let p = Platform::new(3, 3, 100.0, 80.0, 250.0);
        let mut sim = SimTransport::for_platform(&p);
        let ops = [
            TransferOp {
                src: 0,
                dst: 1,
                bytes: 7_000_000,
            },
            TransferOp {
                src: 2,
                dst: 0,
                bytes: 3_000_000,
            },
        ];
        let scalar = sim.estimate(&ops, 2.5);
        let faulted = sim.estimate_faulted(&ops, &StepFaults::uniform(2.5));
        assert_eq!(scalar, faulted, "uniform shaping must be byte-identical");
    }

    #[test]
    fn sim_nic_and_link_faults_shape_the_step() {
        // 100 Mbit/s NICs, ample backbone: a 12.5 MB op takes 1 s clean.
        let p = Platform::new(2, 2, 100.0, 100.0, 1000.0);
        let mut sim = SimTransport::for_platform(&p);
        let ops = [TransferOp {
            src: 0,
            dst: 1,
            bytes: 12_500_000,
        }];
        let clean = sim.estimate_faulted(&ops, &StepFaults::uniform(1.0));
        assert!((clean - 1.0).abs() < 1e-6);

        // Receiver 1's NIC at 4× slower → 4 s.
        let nic = StepFaults {
            slowdown: 1.0,
            sender_factors: Vec::new(),
            receiver_factors: vec![1.0, 4.0],
            link_factors: Vec::new(),
        };
        let slowed = sim.estimate_faulted(&ops, &nic);
        assert!((slowed - 4.0).abs() < 1e-6, "got {slowed}");

        // Backbone degraded 20× (1000 → 50 Mbit/s) → 2 s.
        let link = StepFaults {
            slowdown: 1.0,
            sender_factors: Vec::new(),
            receiver_factors: Vec::new(),
            link_factors: vec![20.0],
        };
        let degraded = sim.estimate_faulted(&ops, &link);
        assert!((degraded - 2.0).abs() < 1e-6, "got {degraded}");
    }

    #[test]
    fn sim_for_topology_routes_links_independently() {
        // Two disjoint cluster pairs with their own backbones: a flow on
        // the slow link does not contend with one on the fast link.
        let topo = kpbs::instances::two_backbone_topology(1, 100.0, 100.0, 1000.0, 50.0);
        let mut sim = SimTransport::for_topology(&topo).expect("valid topology");
        let ops = [
            TransferOp {
                src: 0,
                dst: 0,
                bytes: 12_500_000,
            },
            TransferOp {
                src: 1,
                dst: 1,
                bytes: 12_500_000,
            },
        ];
        // Fast-link op: NIC-bound at 100 Mbit/s → 1 s. Slow-link op:
        // link-bound at 50 Mbit/s → 2 s. Makespan 2 s, not the ~3 s a
        // shared 50 Mbit/s pipe would give.
        let secs = sim.deliver_faulted(&ops, &StepFaults::uniform(1.0));
        assert!((secs - 2.0).abs() < 1e-6, "got {secs}");

        let bad = Topology::two_cluster(2, 2, 0.0, 100.0, 100.0);
        assert!(SimTransport::for_topology(&bad).is_err());
    }

    #[test]
    fn sim_slowdown_scales_linearly() {
        let p = Platform::new(2, 2, 100.0, 100.0, 150.0);
        let mut sim = SimTransport::for_platform(&p);
        let ops = [
            TransferOp {
                src: 0,
                dst: 0,
                bytes: 10_000_000,
            },
            TransferOp {
                src: 1,
                dst: 1,
                bytes: 10_000_000,
            },
        ];
        let base = sim.estimate(&ops, 1.0);
        let slowed = sim.estimate(&ops, 3.0);
        assert!(
            (slowed - 3.0 * base).abs() < 1e-6 * base.max(1.0),
            "max–min fairness scales linearly under uniform capacity scaling"
        );
    }
}
