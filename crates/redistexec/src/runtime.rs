//! The step-driven execution loop.
//!
//! [`Runtime::execute`] drives a validated schedule to completion over a
//! [`Transport`], consulting a [`FaultPlan`] at every step:
//!
//! 1. **Node drops** due at the current slot mark nodes dead and force a
//!    residual replan before anything else runs.
//! 2. **Slowdowns** stretch the step; if the projected duration exceeds the
//!    per-step timeout the step is aborted (no bytes move) and a replan is
//!    forced.
//! 3. **Transient failures** hit individual transfers: each failed attempt
//!    is retried with capped exponential backoff (virtual time, in ticks)
//!    up to `max_attempts`; exhaustion turns the failure permanent, the
//!    op's bytes fall through to the residual, and a replan is forced.
//!
//! A *replan* computes the residual matrix (original demand minus the
//! transport's delivery ledger, restricted to surviving nodes — see
//! [`kpbs::residual`]), schedules it through GGP/OGGP under the
//! [`kpbs::batch`] discipline, validates the result, and splices the new
//! steps in place of everything not yet executed. Execution slots keep
//! counting across splices, so later fault events land on spliced steps.
//!
//! Termination is structural: every replan is triggered by the consumption
//! of at least one event of the (finite) fault plan, and a budget —
//! `event_count() + 4` by default — turns any pathological configuration
//! (e.g. a timeout shorter than any step can run) into
//! [`ExecError::BudgetExhausted`] instead of a loop.
//!
//! With an empty fault plan the loop degenerates to plain schedule
//! execution: the executed steps are byte-identical to
//! [`kpbs::Schedule::byte_slices`] of the initial plan — the invariant the
//! campaign proptest pins.

use std::collections::VecDeque;

use crate::faults::FaultPlan;
use crate::replan::{self, PlanRecord, ReplanAlgo};
use crate::residual::{outstanding, Liveness};
use crate::transport::{TransferOp, Transport};
use kpbs::traffic::TickScale;
use kpbs::validate::ValidationError;
use kpbs::{Platform, Schedule, Topology, TrafficMatrix};
use telemetry::counters::{self, Counter};
use telemetry::metrics::{CounterHandle, Registry};
use telemetry::spans;

/// Retry, backoff, timeout and re-planning knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Scheduler used for residual re-planning.
    pub algo: ReplanAlgo,
    /// Attempts per transfer before a transient failure turns permanent
    /// (≥ 1; the first attempt counts).
    pub max_attempts: u32,
    /// Backoff before the first retry, in ticks.
    pub backoff_base_ticks: u64,
    /// Backoff ceiling, in ticks (`min(cap, base << attempt)`).
    pub backoff_cap_ticks: u64,
    /// A step whose projected duration exceeds this is aborted and
    /// re-planned.
    pub step_timeout_seconds: f64,
    /// Maximum replan rounds; `0` means automatic
    /// (`fault_plan.event_count() + 4`).
    pub replan_budget: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            algo: ReplanAlgo::Oggp,
            max_attempts: 4,
            backoff_base_ticks: 50,
            backoff_cap_ticks: 1_600,
            step_timeout_seconds: 3_600.0,
            replan_budget: 0,
        }
    }
}

/// Per-step execution metrics published into a [`Registry`].
///
/// The handles mirror the [`ExecReport`] totals but update *live*, step by
/// step, so a scrape taken mid-run sees progress. All are monotonic
/// counters; cloning shares the underlying series, and registering twice
/// against the same registry returns handles to the same series.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// Steps executed, including aborted and empty ones.
    pub steps: CounterHandle,
    /// Transfer re-attempts after transient faults.
    pub retries: CounterHandle,
    /// Virtual ticks spent in retry backoff.
    pub backoff_ticks: CounterHandle,
    /// Residual re-planning rounds.
    pub replans: CounterHandle,
    /// Steps spliced into the running schedule by replans.
    pub steps_spliced: CounterHandle,
    /// Fault events injected (transients, drops, slowdowns).
    pub faults_injected: CounterHandle,
    /// Steps aborted by the per-step timeout.
    pub timeouts: CounterHandle,
    /// Bytes delivered by completed runs.
    pub delivered_bytes: CounterHandle,
}

impl ExecMetrics {
    /// Registers (or re-attaches to) the `redistexec_*` counter families.
    pub fn register(registry: &Registry) -> ExecMetrics {
        ExecMetrics {
            steps: registry.counter(
                "redistexec_steps_total",
                "Steps executed, including aborted and empty steps.",
                &[],
            ),
            retries: registry.counter(
                "redistexec_retries_total",
                "Transfer re-attempts after transient faults.",
                &[],
            ),
            backoff_ticks: registry.counter(
                "redistexec_backoff_ticks_total",
                "Virtual ticks spent in retry backoff.",
                &[],
            ),
            replans: registry.counter(
                "redistexec_replans_total",
                "Residual re-planning rounds.",
                &[],
            ),
            steps_spliced: registry.counter(
                "redistexec_steps_spliced_total",
                "Steps spliced into the running schedule by replans.",
                &[],
            ),
            faults_injected: registry.counter(
                "redistexec_faults_injected_total",
                "Fault events injected (transients, drops, slowdowns).",
                &[],
            ),
            timeouts: registry.counter(
                "redistexec_timeouts_total",
                "Steps aborted by the per-step timeout.",
                &[],
            ),
            delivered_bytes: registry.counter(
                "redistexec_delivered_bytes_total",
                "Bytes delivered by completed runs.",
                &[],
            ),
        }
    }
}

/// One executed (or aborted) step.
#[derive(Debug, Clone)]
pub struct ExecutedStep {
    /// Execution slot the step ran at (monotone across splices).
    pub slot: u64,
    /// The transfers actually delivered (empty for aborted steps).
    pub ops: Vec<TransferOp>,
    /// Transport time of the step, seconds.
    pub seconds: f64,
    /// Virtual time spent in retry backoff during the step, seconds.
    pub backoff_seconds: f64,
    /// True when the step was aborted by the per-step timeout.
    pub timed_out: bool,
}

/// Everything an execution produced, for reporting and verification.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Executed steps in order (one entry per slot, including aborted and
    /// empty steps).
    pub steps: Vec<ExecutedStep>,
    /// Total virtual time: per-step β + transport time + backoff.
    pub total_seconds: f64,
    /// Transfer re-attempts after transient faults.
    pub retries: u64,
    /// Residual re-planning rounds.
    pub replans: u64,
    /// Fault events injected (transients, drops, slowdowns).
    pub faults_injected: u64,
    /// Steps spliced into the running schedule by replans.
    pub steps_spliced: u64,
    /// Steps aborted by the per-step timeout.
    pub timeouts: u64,
    /// Per-sender liveness at the end of the run.
    pub senders_alive: Vec<bool>,
    /// Per-receiver liveness at the end of the run.
    pub receivers_alive: Vec<bool>,
    /// Every residual replan round, in order (initial plan excluded).
    pub plans: Vec<PlanRecord>,
    /// Final per-pair delivery ledger.
    pub delivered: TrafficMatrix,
}

impl ExecReport {
    /// Checks the delivery invariant against the original demand: pairs
    /// whose endpoints survived received *exactly* their bytes; pairs with
    /// a dead endpoint received at most theirs (partial delivery before
    /// the drop is fine).
    pub fn verify_against(&self, original: &TrafficMatrix) -> Result<(), String> {
        for i in 0..original.senders() {
            for j in 0..original.receivers() {
                let want = original.get(i, j);
                let got = self.delivered.get(i, j);
                let alive = self.senders_alive[i] && self.receivers_alive[j];
                if alive && got != want {
                    return Err(format!(
                        "pair ({i},{j}) alive but delivered {got} of {want} bytes"
                    ));
                }
                if !alive && got > want {
                    return Err(format!(
                        "pair ({i},{j}) over-delivered: {got} of {want} bytes"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Execution failures.
#[derive(Debug)]
pub enum ExecError {
    /// The initial schedule does not validate against the traffic matrix's
    /// instance.
    InvalidSchedule(ValidationError),
    /// Traffic matrix and platform dimensions disagree.
    DimensionMismatch(String),
    /// A residual replan produced an invalid schedule (a planner bug).
    ReplanFailed(ValidationError),
    /// More replan rounds than the budget allows — the configuration cannot
    /// make progress (e.g. a timeout shorter than any step can run).
    BudgetExhausted {
        /// Replan rounds performed before giving up.
        replans: u64,
    },
    /// The loop drained with surviving-pair bytes still owed (a runtime
    /// bug; surfaced rather than silently under-delivered).
    Incomplete {
        /// Bytes still owed to surviving pairs.
        missing_bytes: u64,
    },
    /// Topology-aware planning failed (invalid topology, unroutable
    /// traffic, or a composition bug).
    PlanningFailed(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidSchedule(e) => write!(f, "initial schedule invalid: {e}"),
            ExecError::DimensionMismatch(m) => write!(f, "dimension mismatch: {m}"),
            ExecError::ReplanFailed(e) => write!(f, "residual replan invalid: {e}"),
            ExecError::BudgetExhausted { replans } => {
                write!(f, "replan budget exhausted after {replans} rounds")
            }
            ExecError::Incomplete { missing_bytes } => {
                write!(
                    f,
                    "execution drained with {missing_bytes} bytes undelivered"
                )
            }
            ExecError::PlanningFailed(m) => write!(f, "topology planning failed: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A fault-tolerant schedule executor over a transport.
#[derive(Debug)]
pub struct Runtime<T: Transport> {
    transport: T,
    faults: FaultPlan,
    config: ExecConfig,
    metrics: Option<ExecMetrics>,
    rid: u64,
}

impl<T: Transport> Runtime<T> {
    /// Builds a runtime from a transport, a fault plan and config.
    pub fn new(transport: T, faults: FaultPlan, config: ExecConfig) -> Self {
        assert!(config.max_attempts >= 1, "need at least one attempt");
        Runtime {
            transport,
            faults,
            config,
            metrics: None,
            rid: 0,
        }
    }

    /// Publishes per-step execution metrics into `metrics` as the run
    /// progresses (in addition to the [`ExecReport`] totals).
    pub fn with_metrics(mut self, metrics: ExecMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Labels every span this runtime emits with the owning request id
    /// (`rid`), joining the execution timeline to the request that caused
    /// it. `0` (the default) means "not correlated".
    pub fn with_correlation_id(mut self, rid: u64) -> Self {
        self.rid = rid;
        self
    }

    /// Consumes the runtime, returning the transport (and its ledger).
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Executes `schedule` — produced for `traffic` on `platform` with the
    /// given `beta_seconds`/`scale` — to completion under the fault plan.
    pub fn execute(
        &mut self,
        traffic: &TrafficMatrix,
        platform: &Platform,
        beta_seconds: f64,
        scale: TickScale,
        schedule: &Schedule,
    ) -> Result<ExecReport, ExecError> {
        if traffic.senders() != platform.n1 || traffic.receivers() != platform.n2 {
            return Err(ExecError::DimensionMismatch(format!(
                "traffic {}×{} vs platform {}×{}",
                traffic.senders(),
                traffic.receivers(),
                platform.n1,
                platform.n2
            )));
        }
        let (instance, endpoints) = traffic.to_instance(platform, beta_seconds, scale);
        schedule
            .validate(&instance)
            .map_err(ExecError::InvalidSchedule)?;
        let bytes: Vec<u64> = endpoints.iter().map(|&(i, j)| traffic.get(i, j)).collect();
        let initial = PlanRecord {
            instance,
            endpoints,
            bytes,
            schedule: schedule.clone(),
            work: Default::default(),
        };
        self.run(traffic, platform, beta_seconds, scale, &initial)
    }

    fn run(
        &mut self,
        traffic: &TrafficMatrix,
        platform: &Platform,
        beta_seconds: f64,
        scale: TickScale,
        initial: &PlanRecord,
    ) -> Result<ExecReport, ExecError> {
        let algo = self.config.algo;
        let replanner = move |residual: &TrafficMatrix| {
            replan::plan(residual, platform, beta_seconds, scale, algo)
                .map_err(ExecError::ReplanFailed)
        };
        self.run_with(traffic, beta_seconds, scale, initial, &replanner)
    }

    /// The execution loop, generic over the residual replanner — the
    /// platform path plugs in [`replan::plan`], the topology path
    /// [`replan::plan_topo`]; everything else (drops, shaping, retries,
    /// splices, budget) is shared.
    fn run_with(
        &mut self,
        traffic: &TrafficMatrix,
        beta_seconds: f64,
        scale: TickScale,
        initial: &PlanRecord,
        replanner: &dyn Fn(&TrafficMatrix) -> Result<PlanRecord, ExecError>,
    ) -> Result<ExecReport, ExecError> {
        let budget = if self.config.replan_budget > 0 {
            self.config.replan_budget as u64
        } else {
            self.faults.event_count() as u64 + 4
        };
        let mut queue: VecDeque<Vec<TransferOp>> = initial.step_ops().into();
        let mut liveness = Liveness::all_alive(traffic.senders(), traffic.receivers());
        let mut report = ExecReport {
            steps: Vec::new(),
            total_seconds: 0.0,
            retries: 0,
            replans: 0,
            faults_injected: 0,
            steps_spliced: 0,
            timeouts: 0,
            senders_alive: Vec::new(),
            receivers_alive: Vec::new(),
            plans: Vec::new(),
            delivered: TrafficMatrix::zeros(traffic.senders(), traffic.receivers()),
        };
        let mut drop_cursor = 0usize;
        let mut nic_cursor = 0usize;
        let mut link_cursor = 0usize;
        let mut needs_replan = false;
        let mut slot: u64 = 0;

        loop {
            // Node drops due at (or before) this slot take effect first.
            while drop_cursor < self.faults.drops().len()
                && self.faults.drops()[drop_cursor].0 <= slot
            {
                let (_, node) = self.faults.drops()[drop_cursor];
                drop_cursor += 1;
                if liveness.kill(node) {
                    report.faults_injected += 1;
                    counters::incr(Counter::ExecFaultsInjected);
                    if let Some(m) = &self.metrics {
                        m.faults_injected.inc();
                    }
                    needs_replan = true;
                }
            }

            // NIC slowdowns and link degradations newly in force are
            // counted once as injected faults; they shape steps through
            // `step_faults` from here on but never force a replan (the
            // plan stays valid — only its timing stretches).
            while nic_cursor < self.faults.nic_slowdowns().len()
                && self.faults.nic_slowdowns()[nic_cursor].0 <= slot
            {
                nic_cursor += 1;
                report.faults_injected += 1;
                counters::incr(Counter::ExecFaultsInjected);
                if let Some(m) = &self.metrics {
                    m.faults_injected.inc();
                }
            }
            while link_cursor < self.faults.link_degradations().len()
                && self.faults.link_degradations()[link_cursor].0 <= slot
            {
                link_cursor += 1;
                report.faults_injected += 1;
                counters::incr(Counter::ExecFaultsInjected);
                if let Some(m) = &self.metrics {
                    m.faults_injected.inc();
                }
            }

            if needs_replan {
                needs_replan = false;
                report.replans += 1;
                counters::incr(Counter::ExecReplans);
                if let Some(m) = &self.metrics {
                    m.replans.inc();
                }
                if report.replans > budget {
                    return Err(ExecError::BudgetExhausted {
                        replans: report.replans,
                    });
                }
                let _g = spans::span_with(
                    "redistexec.replan",
                    &[("rid", self.rid), ("round", report.replans)],
                );
                let residual = outstanding(traffic, &self.transport, &liveness);
                queue.clear();
                if residual.total_bytes() > 0 {
                    let rec = replanner(&residual)?;
                    let steps = rec.step_ops();
                    report.steps_spliced += steps.len() as u64;
                    counters::add(Counter::ExecStepsSpliced, steps.len() as u64);
                    if let Some(m) = &self.metrics {
                        m.steps_spliced.add(steps.len() as u64);
                    }
                    queue.extend(steps);
                    report.plans.push(rec);
                }
            }

            let Some(ops) = queue.pop_front() else {
                break;
            };
            let _sg = spans::span_with("redistexec.step", &[("rid", self.rid), ("slot", slot)]);
            if let Some(m) = &self.metrics {
                m.steps.inc();
            }

            // Defensive: a pair with a dead endpoint can never deliver; its
            // bytes fall through to the residual of the forced replan.
            let alive_ops: Vec<TransferOp> = ops
                .iter()
                .copied()
                .filter(|op| liveness.pair_alive(op.src, op.dst))
                .collect();
            if alive_ops.len() != ops.len() {
                needs_replan = true;
            }

            let shaping = self
                .faults
                .step_faults(slot, traffic.senders(), traffic.receivers());
            if shaping.slowdown != 1.0 {
                report.faults_injected += 1;
                counters::incr(Counter::ExecFaultsInjected);
                if let Some(m) = &self.metrics {
                    m.faults_injected.inc();
                }
            }

            if !alive_ops.is_empty() {
                let projected = self.transport.estimate_faulted(&alive_ops, &shaping);
                if projected > self.config.step_timeout_seconds {
                    report.timeouts += 1;
                    if let Some(m) = &self.metrics {
                        m.timeouts.inc();
                    }
                    needs_replan = true;
                    report.total_seconds += beta_seconds;
                    report.steps.push(ExecutedStep {
                        slot,
                        ops: Vec::new(),
                        seconds: 0.0,
                        backoff_seconds: 0.0,
                        timed_out: true,
                    });
                    slot += 1;
                    continue;
                }
            }

            let mut deliver_ops = Vec::with_capacity(alive_ops.len());
            let mut backoff_ticks: u64 = 0;
            for (idx, op) in alive_ops.iter().enumerate() {
                let fails = self.faults.transient_failures(slot, idx);
                if fails == 0 {
                    deliver_ops.push(*op);
                    continue;
                }
                report.faults_injected += 1;
                counters::incr(Counter::ExecFaultsInjected);
                let _rg = spans::span_with(
                    "redistexec.retry",
                    &[
                        ("rid", self.rid),
                        ("slot", slot),
                        ("src", op.src as u64),
                        ("dst", op.dst as u64),
                    ],
                );
                let permanent = fails >= self.config.max_attempts;
                let retry_count = if permanent {
                    self.config.max_attempts - 1
                } else {
                    fails
                };
                report.retries += retry_count as u64;
                counters::add(Counter::ExecRetries, retry_count as u64);
                let mut op_ticks: u64 = 0;
                let mut b = self.config.backoff_base_ticks;
                for _ in 0..retry_count {
                    op_ticks += b.min(self.config.backoff_cap_ticks);
                    b = b.saturating_mul(2).min(self.config.backoff_cap_ticks);
                }
                backoff_ticks += op_ticks;
                if op_ticks > 0 {
                    spans::instant_with(
                        "redistexec.backoff",
                        &[("rid", self.rid), ("slot", slot), ("ticks", op_ticks)],
                    );
                }
                if let Some(m) = &self.metrics {
                    m.faults_injected.inc();
                    m.retries.add(retry_count as u64);
                    m.backoff_ticks.add(op_ticks);
                }
                if permanent {
                    needs_replan = true;
                } else {
                    deliver_ops.push(*op);
                }
            }

            let seconds = if deliver_ops.is_empty() {
                0.0
            } else {
                self.transport.deliver_faulted(&deliver_ops, &shaping)
            };
            let backoff_seconds = backoff_ticks as f64 / scale.ticks_per_second;
            report.total_seconds += beta_seconds + seconds + backoff_seconds;
            report.steps.push(ExecutedStep {
                slot,
                ops: deliver_ops,
                seconds,
                backoff_seconds,
                timed_out: false,
            });
            slot += 1;
        }

        let leftover = outstanding(traffic, &self.transport, &liveness);
        if leftover.total_bytes() > 0 {
            return Err(ExecError::Incomplete {
                missing_bytes: leftover.total_bytes(),
            });
        }
        report.senders_alive = liveness.senders().to_vec();
        report.receivers_alive = liveness.receivers().to_vec();
        report.delivered = self.transport.delivered().clone();
        if let Some(m) = &self.metrics {
            m.delivered_bytes.add(report.delivered.total_bytes());
        }
        Ok(report)
    }
}

/// Plans `traffic` with `config.algo` and executes the plan in one call —
/// the convenience entry the CLI and benches use.
pub fn plan_and_execute<T: Transport>(
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta_seconds: f64,
    scale: TickScale,
    transport: T,
    faults: FaultPlan,
    config: ExecConfig,
) -> Result<(PlanRecord, ExecReport), ExecError> {
    plan_and_execute_observed(
        traffic,
        platform,
        beta_seconds,
        scale,
        transport,
        faults,
        config,
        None,
        0,
    )
}

/// [`plan_and_execute`] with observability attached: per-step metrics
/// published into `metrics` (when given) and every span labelled with the
/// owning correlation id `rid`.
#[allow(clippy::too_many_arguments)]
pub fn plan_and_execute_observed<T: Transport>(
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta_seconds: f64,
    scale: TickScale,
    transport: T,
    faults: FaultPlan,
    config: ExecConfig,
    metrics: Option<ExecMetrics>,
    rid: u64,
) -> Result<(PlanRecord, ExecReport), ExecError> {
    let initial = replan::plan(traffic, platform, beta_seconds, scale, config.algo)
        .map_err(ExecError::InvalidSchedule)?;
    let mut rt = Runtime::new(transport, faults, config).with_correlation_id(rid);
    if let Some(m) = metrics {
        rt = rt.with_metrics(m);
    }
    let report = rt.run(traffic, platform, beta_seconds, scale, &initial)?;
    Ok((initial, report))
}

/// Plans `traffic` over a heterogeneous [`Topology`] (per-backbone `k`,
/// composed schedule — see [`kpbs::plan_topology`]) and executes it under
/// the fault plan. Residual replans after drops or retry exhaustion route
/// through the same topology-aware planner, so replanned steps respect
/// every backbone's own preemption bound too.
pub fn plan_and_execute_topo<T: Transport>(
    traffic: &TrafficMatrix,
    topo: &Topology,
    beta_seconds: f64,
    scale: TickScale,
    transport: T,
    faults: FaultPlan,
    config: ExecConfig,
) -> Result<(PlanRecord, ExecReport), ExecError> {
    if traffic.senders() != topo.senders() || traffic.receivers() != topo.receivers() {
        return Err(ExecError::DimensionMismatch(format!(
            "traffic {}×{} vs topology {}×{}",
            traffic.senders(),
            traffic.receivers(),
            topo.senders(),
            topo.receivers()
        )));
    }
    let initial = replan::plan_topo(traffic, topo, beta_seconds, scale, config.algo)
        .map_err(|e| ExecError::PlanningFailed(e.to_string()))?;
    let algo = config.algo;
    let mut rt = Runtime::new(transport, faults, config);
    let replanner = move |residual: &TrafficMatrix| {
        replan::plan_topo(residual, topo, beta_seconds, scale, algo)
            .map_err(|e| ExecError::PlanningFailed(e.to_string()))
    };
    let report = rt.run_with(traffic, beta_seconds, scale, &initial, &replanner)?;
    Ok((initial, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultSpec, NodeRef};
    use crate::transport::LoopbackTransport;

    fn workload() -> (TrafficMatrix, Platform) {
        let mut m = TrafficMatrix::zeros(3, 3);
        m.set(0, 0, 12_000_000);
        m.set(0, 1, 5_000_000);
        m.set(1, 0, 8_000_000);
        m.set(1, 2, 9_000_000);
        m.set(2, 1, 6_000_000);
        m.set(2, 2, 11_000_000);
        (m, Platform::new(3, 3, 100.0, 100.0, 200.0))
    }

    fn run_with(faults: FaultPlan, config: ExecConfig) -> (TrafficMatrix, ExecReport) {
        let (m, p) = workload();
        let transport = LoopbackTransport::for_platform(&p);
        let (_, report) =
            plan_and_execute(&m, &p, 0.05, TickScale::MILLIS, transport, faults, config).unwrap();
        (m, report)
    }

    #[test]
    fn zero_faults_is_plain_execution() {
        let (m, p) = workload();
        let initial = replan::plan(&m, &p, 0.05, TickScale::MILLIS, ReplanAlgo::Oggp).unwrap();
        let transport = LoopbackTransport::for_platform(&p);
        let mut rt = Runtime::new(transport, FaultPlan::none(), ExecConfig::default());
        let report = rt
            .execute(&m, &p, 0.05, TickScale::MILLIS, &initial.schedule)
            .unwrap();
        report.verify_against(&m).unwrap();
        assert_eq!(report.retries, 0);
        assert_eq!(report.replans, 0);
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.steps_spliced, 0);
        assert_eq!(report.timeouts, 0);
        // Byte-identical to the plain byte_slices expansion of the plan.
        let plain = initial.step_ops();
        assert_eq!(report.steps.len(), plain.len());
        for (got, want) in report.steps.iter().zip(&plain) {
            assert_eq!(&got.ops, want);
            assert!((got.backoff_seconds) == 0.0);
            assert!(!got.timed_out);
        }
    }

    #[test]
    fn transient_fault_retries_and_recovers() {
        let mut faults = FaultPlan::none();
        // Two consecutive failures on op 0 of slot 0: recovered on the
        // third attempt (max_attempts 4) — no replan.
        faults.insert_transient(0, 0, 2);
        let (m, report) = run_with(faults, ExecConfig::default());
        report.verify_against(&m).unwrap();
        assert_eq!(report.retries, 2);
        assert_eq!(report.replans, 0);
        assert_eq!(report.faults_injected, 1);
        // Backoff of 50 + 100 ticks = 0.15 s at millisecond scale.
        let backoff: f64 = report.steps.iter().map(|s| s.backoff_seconds).sum();
        assert!((backoff - 0.15).abs() < 1e-9, "backoff {backoff}");
    }

    #[test]
    fn retry_exhaustion_forces_replan() {
        let mut faults = FaultPlan::none();
        faults.insert_transient(0, 0, 10); // >= max_attempts
        let (m, report) = run_with(faults, ExecConfig::default());
        report.verify_against(&m).unwrap();
        assert_eq!(report.replans, 1);
        assert_eq!(report.retries, 3, "max_attempts - 1 re-attempts");
        assert!(report.steps_spliced > 0, "residual steps spliced");
        assert_eq!(report.plans.len(), 1);
        for rec in &report.plans {
            rec.schedule.validate(&rec.instance).unwrap();
        }
    }

    #[test]
    fn node_drop_replans_on_survivors() {
        let mut faults = FaultPlan::none();
        faults.push_drop(1, NodeRef::Sender(2));
        let (m, report) = run_with(faults, ExecConfig::default());
        report.verify_against(&m).unwrap();
        assert_eq!(report.senders_alive, vec![true, true, false]);
        assert!(report.replans >= 1);
        // Dead sender's rows never over-deliver; surviving rows complete.
        assert_eq!(report.delivered.get(0, 0), m.get(0, 0));
        assert!(report.delivered.get(2, 1) <= m.get(2, 1));
    }

    #[test]
    fn slowdown_beyond_timeout_aborts_and_replans() {
        let mut faults = FaultPlan::none();
        faults.push_slowdown(0, 8.0);
        let config = ExecConfig {
            // The largest first-step op at 12.5 MB/s runs ~1 s; ×8 breaches
            // a 5 s timeout.
            step_timeout_seconds: 5.0,
            ..ExecConfig::default()
        };
        let (m, report) = run_with(faults, config);
        report.verify_against(&m).unwrap();
        assert_eq!(report.timeouts, 1);
        assert!(report.steps[0].timed_out);
        assert!(report.steps[0].ops.is_empty(), "aborted step moved nothing");
        assert!(report.replans >= 1);
    }

    #[test]
    fn impossible_timeout_exhausts_budget() {
        let config = ExecConfig {
            step_timeout_seconds: 1e-9,
            ..ExecConfig::default()
        };
        let (m, p) = workload();
        let transport = LoopbackTransport::for_platform(&p);
        let err = plan_and_execute(
            &m,
            &p,
            0.05,
            TickScale::MILLIS,
            transport,
            FaultPlan::none(),
            config,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn invalid_schedule_rejected() {
        let (m, p) = workload();
        let transport = LoopbackTransport::for_platform(&p);
        let mut rt = Runtime::new(transport, FaultPlan::none(), ExecConfig::default());
        let err = rt
            .execute(&m, &p, 0.05, TickScale::MILLIS, &Schedule::new(50))
            .unwrap_err();
        assert!(matches!(err, ExecError::InvalidSchedule(_)), "{err}");
    }

    #[test]
    fn exec_metrics_track_report_totals() {
        let registry = telemetry::metrics::Registry::default();
        let handles = ExecMetrics::register(&registry);
        let mut faults = FaultPlan::none();
        faults.insert_transient(0, 0, 10); // exhausts retries, forces a replan
        let (m, p) = workload();
        let transport = LoopbackTransport::for_platform(&p);
        let (_, report) = plan_and_execute_observed(
            &m,
            &p,
            0.05,
            TickScale::MILLIS,
            transport,
            faults,
            ExecConfig::default(),
            Some(handles.clone()),
            42,
        )
        .unwrap();
        report.verify_against(&m).unwrap();
        assert_eq!(handles.retries.value(), report.retries);
        assert_eq!(handles.replans.value(), report.replans);
        assert_eq!(handles.faults_injected.value(), report.faults_injected);
        assert_eq!(handles.steps_spliced.value(), report.steps_spliced);
        assert_eq!(handles.timeouts.value(), report.timeouts);
        assert_eq!(handles.steps.value(), report.steps.len() as u64);
        assert_eq!(
            handles.delivered_bytes.value(),
            report.delivered.total_bytes()
        );
        assert!(handles.backoff_ticks.value() > 0, "retries accrued backoff");
        let text = registry.render();
        telemetry::metrics::validate_exposition(&text).unwrap();
        assert!(text.contains("redistexec_retries_total"));
    }

    #[test]
    fn spans_carry_correlation_labels() {
        let mut faults = FaultPlan::none();
        faults.insert_transient(0, 0, 2); // recovered retry: backoff instant
        let (m, p) = workload();
        let transport = LoopbackTransport::for_platform(&p);
        spans::enable();
        let (_, report) = plan_and_execute_observed(
            &m,
            &p,
            0.05,
            TickScale::MILLIS,
            transport,
            faults,
            ExecConfig::default(),
            None,
            77,
        )
        .unwrap();
        spans::disable();
        let events = spans::drain_all();
        report.verify_against(&m).unwrap();
        let with_rid = |name: &str| {
            events
                .iter()
                .filter(|e| e.name == name && e.args.get("rid") == Some(77))
                .count()
        };
        assert!(with_rid("redistexec.step") > 0, "step spans labelled");
        assert!(with_rid("redistexec.retry") > 0, "retry spans labelled");
        assert!(with_rid("redistexec.backoff") > 0, "backoff instants");
        let retry = events
            .iter()
            .find(|e| e.name == "redistexec.retry")
            .unwrap();
        assert!(retry.args.get("slot").is_some());
        assert!(retry.args.get("src").is_some());
        assert!(retry.args.get("dst").is_some());
        let backoff = events
            .iter()
            .find(|e| e.name == "redistexec.backoff")
            .unwrap();
        // 50 + 100 ticks of capped exponential backoff for two retries.
        assert_eq!(backoff.args.get("ticks"), Some(150));
    }

    #[test]
    fn nic_and_link_faults_stretch_but_deliver_exactly() {
        let mut faults = FaultPlan::none();
        faults.push_nic_slowdown(0, NodeRef::Sender(0), 4.0);
        faults.push_link_degradation(1, 0, 2.0);
        let (m, clean) = run_with(FaultPlan::none(), ExecConfig::default());
        let (_, report) = run_with(faults, ExecConfig::default());
        report.verify_against(&m).unwrap();
        assert_eq!(report.delivered.total_bytes(), m.total_bytes());
        assert_eq!(report.replans, 0, "shaping faults never force a replan");
        assert_eq!(report.faults_injected, 2, "both events counted once");
        assert!(
            report.total_seconds > clean.total_seconds,
            "a 4× slower sender NIC must stretch the run ({} vs {})",
            report.total_seconds,
            clean.total_seconds
        );
    }

    #[test]
    fn fault_event_order_is_slot_deterministic() {
        // The same fault events pushed in opposite orders must produce
        // byte- and time-identical executions (regression for the
        // event-list-order sensitivity of composed same-slot faults).
        let build = |reverse: bool| {
            let mut p = FaultPlan::none();
            let events: &mut dyn Iterator<Item = usize> = if reverse {
                &mut (0..4usize).rev()
            } else {
                &mut (0..4usize)
            };
            for e in events {
                match e {
                    0 => p.push_drop(1, NodeRef::Receiver(2)),
                    1 => p.push_slowdown(1, 2.0),
                    2 => p.push_nic_slowdown(1, NodeRef::Sender(1), 3.0),
                    _ => p.push_nic_slowdown(1, NodeRef::Sender(1), 1.5),
                }
            }
            p
        };
        assert_eq!(build(false), build(true));
        let (m, a) = run_with(build(false), ExecConfig::default());
        let (_, b) = run_with(build(true), ExecConfig::default());
        a.verify_against(&m).unwrap();
        assert_eq!(a.steps.len(), b.steps.len());
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.ops, sb.ops, "slot {} ops diverged", sa.slot);
            assert_eq!(sa.seconds, sb.seconds, "slot {} timing", sa.slot);
        }
        assert_eq!(a.total_seconds, b.total_seconds);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.replans, b.replans);
        assert_eq!(a.faults_injected, b.faults_injected);
    }

    #[test]
    fn topo_plan_and_execute_two_backbones() {
        let topo = kpbs::instances::two_backbone_topology(2, 100.0, 50.0, 200.0, 60.0);
        let mut m = TrafficMatrix::zeros(4, 4);
        m.set(0, 1, 9_000_000);
        m.set(1, 0, 4_000_000);
        m.set(2, 3, 6_000_000);
        m.set(3, 2, 2_000_000);
        let transport = crate::transport::SimTransport::for_topology(&topo).unwrap();
        let (initial, report) = plan_and_execute_topo(
            &m,
            &topo,
            0.05,
            TickScale::MILLIS,
            transport,
            FaultPlan::none(),
            ExecConfig::default(),
        )
        .unwrap();
        report.verify_against(&m).unwrap();
        initial.schedule.validate(&initial.instance).unwrap();
        assert_eq!(report.delivered.total_bytes(), m.total_bytes());

        // A drop on the slow side forces a topology-aware residual replan;
        // surviving pairs (including fast-link ones) still complete.
        let mut faults = FaultPlan::none();
        faults.push_drop(1, NodeRef::Receiver(2));
        let transport = crate::transport::SimTransport::for_topology(&topo).unwrap();
        let (_, report) = plan_and_execute_topo(
            &m,
            &topo,
            0.05,
            TickScale::MILLIS,
            transport,
            faults,
            ExecConfig::default(),
        )
        .unwrap();
        report.verify_against(&m).unwrap();
        assert!(report.replans >= 1);
        assert_eq!(report.delivered.get(0, 1), m.get(0, 1));
        for rec in &report.plans {
            rec.schedule.validate(&rec.instance).unwrap();
        }

        // Dimension mismatch is caught before planning.
        let transport = LoopbackTransport::new(3, 3, 1e6);
        let err = plan_and_execute_topo(
            &TrafficMatrix::zeros(3, 3),
            &topo,
            0.05,
            TickScale::MILLIS,
            transport,
            FaultPlan::none(),
            ExecConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::DimensionMismatch(_)), "{err}");
    }

    #[test]
    fn seeded_campaign_smoke() {
        for seed in 0..20 {
            let (m, p) = workload();
            let faults = FaultPlan::generate(seed, 3, 3, &FaultSpec::default());
            let transport = LoopbackTransport::for_platform(&p);
            let (_, report) = plan_and_execute(
                &m,
                &p,
                0.05,
                TickScale::MILLIS,
                transport,
                faults,
                ExecConfig::default(),
            )
            .unwrap();
            report.verify_against(&m).unwrap();
            for rec in &report.plans {
                rec.schedule.validate(&rec.instance).unwrap();
            }
        }
    }
}
