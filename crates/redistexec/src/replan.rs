//! Planning and re-planning traffic through GGP/OGGP.
//!
//! Both the initial plan and every residual replan go through the same entry
//! point: matrix → [`kpbs::TrafficMatrix::to_instance`] → scheduler →
//! [`kpbs::Schedule::validate`] → byte-valued steps. Planning runs under the
//! [`kpbs::batch`] discipline (`plan_many_with` with a single instance) so
//! the work-counter deltas recorded per plan follow the same local-snapshot
//! rules as every other planner in the workspace.

use crate::transport::TransferOp;
use kpbs::validate::ValidationError;
use kpbs::{ggp, oggp};
use kpbs::{plan_many_with, Instance, Platform, Schedule, TrafficMatrix};
use telemetry::counters::Snapshot;

/// Which scheduler plans (and re-plans) the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanAlgo {
    /// Optimised Generic Graph Peeling (Section 4.3) — the default.
    Oggp,
    /// Generic Graph Peeling (Section 4.2).
    Ggp,
}

impl ReplanAlgo {
    /// Runs the chosen scheduler on one instance.
    pub fn plan(self, inst: &Instance) -> Schedule {
        match self {
            ReplanAlgo::Oggp => oggp(inst),
            ReplanAlgo::Ggp => ggp(inst),
        }
    }
}

/// One planning round: the instance it scheduled, the mapping from edge id
/// to `(sender, receiver)`, the validated schedule, and the work it cost.
#[derive(Debug, Clone)]
pub struct PlanRecord {
    /// The K-PBS instance derived from the planned matrix.
    pub instance: Instance,
    /// `(sender, receiver)` behind each dense edge id.
    pub endpoints: Vec<(usize, usize)>,
    /// Byte volume behind each dense edge id.
    pub bytes: Vec<u64>,
    /// The schedule, already validated against `instance`.
    pub schedule: Schedule,
    /// Work-counter delta of this planning round.
    pub work: Snapshot,
}

impl PlanRecord {
    /// The byte-valued transfer operations of each step, in execution
    /// order, via the exact cumulative-floor apportioning of
    /// [`Schedule::byte_slices`]. Per-pair byte sums equal the planned
    /// matrix exactly; steps whose slices all round to zero bytes come out
    /// empty (and still occupy a step slot).
    pub fn step_ops(&self) -> Vec<Vec<TransferOp>> {
        self.schedule
            .byte_slices(&self.instance, &self.bytes)
            .into_iter()
            .map(|slices| {
                slices
                    .into_iter()
                    .map(|(edge, bytes)| {
                        let (src, dst) = self.endpoints[edge.index()];
                        TransferOp { src, dst, bytes }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Plans `traffic` on `platform` with the chosen algorithm and validates
/// the result. Used for the initial plan and for every residual replan.
pub fn plan(
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta_seconds: f64,
    scale: kpbs::traffic::TickScale,
    algo: ReplanAlgo,
) -> Result<PlanRecord, ValidationError> {
    let (instance, endpoints) = traffic.to_instance(platform, beta_seconds, scale);
    let bytes: Vec<u64> = endpoints.iter().map(|&(i, j)| traffic.get(i, j)).collect();
    let report = plan_many_with(std::slice::from_ref(&instance), 1, |inst| algo.plan(inst));
    let schedule = report.schedules.into_iter().next().expect("one instance");
    schedule.validate(&instance)?;
    Ok(PlanRecord {
        instance,
        endpoints,
        bytes,
        schedule,
        work: report.merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpbs::traffic::TickScale;

    fn traffic() -> (TrafficMatrix, Platform) {
        let mut m = TrafficMatrix::zeros(3, 3);
        m.set(0, 0, 10_000_000);
        m.set(0, 1, 4_000_000);
        m.set(1, 1, 7_000_000);
        m.set(2, 2, 2_500_000);
        (m, Platform::new(3, 3, 100.0, 100.0, 200.0))
    }

    #[test]
    fn plan_validates_and_covers_bytes() {
        let (m, p) = traffic();
        for algo in [ReplanAlgo::Oggp, ReplanAlgo::Ggp] {
            let rec = plan(&m, &p, 0.05, TickScale::MILLIS, algo).unwrap();
            assert!(rec.schedule.validate(&rec.instance).is_ok());
            // Per-pair byte sums across step ops equal the matrix exactly.
            let mut seen = TrafficMatrix::zeros(3, 3);
            for step in rec.step_ops() {
                for op in step {
                    seen.set(op.src, op.dst, seen.get(op.src, op.dst) + op.bytes);
                }
            }
            assert_eq!(seen, m, "{algo:?} byte coverage");
        }
    }

    #[test]
    fn empty_matrix_plans_to_empty_schedule() {
        let p = Platform::new(2, 2, 100.0, 100.0, 200.0);
        let rec = plan(
            &TrafficMatrix::zeros(2, 2),
            &p,
            0.05,
            TickScale::MILLIS,
            ReplanAlgo::Oggp,
        )
        .unwrap();
        assert_eq!(rec.schedule.num_steps(), 0);
        assert!(rec.step_ops().is_empty());
    }
}
