//! Planning and re-planning traffic through GGP/OGGP.
//!
//! Both the initial plan and every residual replan go through the same entry
//! point: matrix → [`kpbs::TrafficMatrix::to_instance`] → scheduler →
//! [`kpbs::Schedule::validate`] → byte-valued steps. Planning runs under the
//! [`kpbs::batch`] discipline (`plan_many_with` with a single instance) so
//! the work-counter deltas recorded per plan follow the same local-snapshot
//! rules as every other planner in the workspace.

use crate::transport::TransferOp;
use kpbs::validate::ValidationError;
use kpbs::{ggp, oggp, plan_topology};
use kpbs::{plan_many_with, Instance, Platform, Schedule, TrafficMatrix};
use kpbs::{TopoAlgo, TopoError, Topology};
use telemetry::counters::{self, Snapshot};

/// Which scheduler plans (and re-plans) the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanAlgo {
    /// Optimised Generic Graph Peeling (Section 4.3) — the default.
    Oggp,
    /// Generic Graph Peeling (Section 4.2).
    Ggp,
}

impl ReplanAlgo {
    /// Runs the chosen scheduler on one instance.
    pub fn plan(self, inst: &Instance) -> Schedule {
        match self {
            ReplanAlgo::Oggp => oggp(inst),
            ReplanAlgo::Ggp => ggp(inst),
        }
    }
}

/// One planning round: the instance it scheduled, the mapping from edge id
/// to `(sender, receiver)`, the validated schedule, and the work it cost.
#[derive(Debug, Clone)]
pub struct PlanRecord {
    /// The K-PBS instance derived from the planned matrix.
    pub instance: Instance,
    /// `(sender, receiver)` behind each dense edge id.
    pub endpoints: Vec<(usize, usize)>,
    /// Byte volume behind each dense edge id.
    pub bytes: Vec<u64>,
    /// The schedule, already validated against `instance`.
    pub schedule: Schedule,
    /// Work-counter delta of this planning round.
    pub work: Snapshot,
}

impl PlanRecord {
    /// The byte-valued transfer operations of each step, in execution
    /// order, via the exact cumulative-floor apportioning of
    /// [`Schedule::byte_slices`]. Per-pair byte sums equal the planned
    /// matrix exactly; steps whose slices all round to zero bytes come out
    /// empty (and still occupy a step slot).
    pub fn step_ops(&self) -> Vec<Vec<TransferOp>> {
        self.schedule
            .byte_slices(&self.instance, &self.bytes)
            .into_iter()
            .map(|slices| {
                slices
                    .into_iter()
                    .map(|(edge, bytes)| {
                        let (src, dst) = self.endpoints[edge.index()];
                        TransferOp { src, dst, bytes }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Plans `traffic` on `platform` with the chosen algorithm and validates
/// the result. Used for the initial plan and for every residual replan.
pub fn plan(
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta_seconds: f64,
    scale: kpbs::traffic::TickScale,
    algo: ReplanAlgo,
) -> Result<PlanRecord, ValidationError> {
    let (instance, endpoints) = traffic.to_instance(platform, beta_seconds, scale);
    let bytes: Vec<u64> = endpoints.iter().map(|&(i, j)| traffic.get(i, j)).collect();
    let report = plan_many_with(std::slice::from_ref(&instance), 1, |inst| algo.plan(inst));
    let schedule = report.schedules.into_iter().next().expect("one instance");
    schedule.validate(&instance)?;
    Ok(PlanRecord {
        instance,
        endpoints,
        bytes,
        schedule,
        work: report.merged,
    })
}

/// Plans `traffic` over a heterogeneous [`Topology`] with the chosen
/// algorithm: every traffic block is routed to its governing backbone,
/// planned under that backbone's own preemption bound `k_b`, and the
/// per-link schedules are composed and validated ([`kpbs::plan_topology`]).
/// The work snapshot captures the planning round's counter delta the same
/// way [`plan`] does through the batch discipline.
pub fn plan_topo(
    traffic: &TrafficMatrix,
    topo: &Topology,
    beta_seconds: f64,
    scale: kpbs::traffic::TickScale,
    algo: ReplanAlgo,
) -> Result<PlanRecord, TopoError> {
    let topo_algo = match algo {
        ReplanAlgo::Oggp => TopoAlgo::Oggp,
        ReplanAlgo::Ggp => TopoAlgo::Ggp,
    };
    let before = counters::local_snapshot();
    let plan = plan_topology(traffic, topo, beta_seconds, scale, topo_algo)?;
    let work = counters::local_snapshot().delta(&before);
    Ok(PlanRecord {
        instance: plan.instance,
        endpoints: plan.endpoints,
        bytes: plan.bytes,
        schedule: plan.schedule,
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpbs::traffic::TickScale;

    fn traffic() -> (TrafficMatrix, Platform) {
        let mut m = TrafficMatrix::zeros(3, 3);
        m.set(0, 0, 10_000_000);
        m.set(0, 1, 4_000_000);
        m.set(1, 1, 7_000_000);
        m.set(2, 2, 2_500_000);
        (m, Platform::new(3, 3, 100.0, 100.0, 200.0))
    }

    #[test]
    fn plan_validates_and_covers_bytes() {
        let (m, p) = traffic();
        for algo in [ReplanAlgo::Oggp, ReplanAlgo::Ggp] {
            let rec = plan(&m, &p, 0.05, TickScale::MILLIS, algo).unwrap();
            assert!(rec.schedule.validate(&rec.instance).is_ok());
            // Per-pair byte sums across step ops equal the matrix exactly.
            let mut seen = TrafficMatrix::zeros(3, 3);
            for step in rec.step_ops() {
                for op in step {
                    seen.set(op.src, op.dst, seen.get(op.src, op.dst) + op.bytes);
                }
            }
            assert_eq!(seen, m, "{algo:?} byte coverage");
        }
    }

    #[test]
    fn plan_topo_homogeneous_matches_platform_plan() {
        let (m, p) = traffic();
        let topo = Topology::from_platform(&p);
        for algo in [ReplanAlgo::Oggp, ReplanAlgo::Ggp] {
            let flat = plan(&m, &p, 0.05, TickScale::MILLIS, algo).unwrap();
            let via_topo = plan_topo(&m, &topo, 0.05, TickScale::MILLIS, algo).unwrap();
            assert_eq!(via_topo.schedule, flat.schedule, "{algo:?} oracle");
            assert_eq!(via_topo.endpoints, flat.endpoints);
            assert_eq!(via_topo.bytes, flat.bytes);
        }
    }

    #[test]
    fn plan_topo_covers_bytes_on_two_backbones() {
        let topo = kpbs::instances::two_backbone_topology(2, 100.0, 50.0, 200.0, 60.0);
        let mut m = TrafficMatrix::zeros(4, 4);
        m.set(0, 1, 9_000_000);
        m.set(1, 0, 4_000_000);
        m.set(2, 3, 6_000_000);
        m.set(3, 2, 2_000_000);
        let rec = plan_topo(&m, &topo, 0.05, TickScale::MILLIS, ReplanAlgo::Oggp).unwrap();
        rec.schedule.validate(&rec.instance).unwrap();
        let mut seen = TrafficMatrix::zeros(4, 4);
        for step in rec.step_ops() {
            for op in step {
                seen.set(op.src, op.dst, seen.get(op.src, op.dst) + op.bytes);
            }
        }
        assert_eq!(seen, m, "byte coverage through composition");

        // Unroutable traffic is a planning error, not a silent drop.
        m.set(0, 3, 1_000_000);
        let err = plan_topo(&m, &topo, 0.05, TickScale::MILLIS, ReplanAlgo::Oggp).unwrap_err();
        assert!(matches!(err, TopoError::Unroutable { .. }), "{err}");
    }

    #[test]
    fn empty_matrix_plans_to_empty_schedule() {
        let p = Platform::new(2, 2, 100.0, 100.0, 200.0);
        let rec = plan(
            &TrafficMatrix::zeros(2, 2),
            &p,
            0.05,
            TickScale::MILLIS,
            ReplanAlgo::Oggp,
        )
        .unwrap();
        assert_eq!(rec.schedule.num_steps(), 0);
        assert!(rec.step_ops().is_empty());
    }
}
