//! Fault-tolerant execution of K-PBS schedules.
//!
//! The planners in [`kpbs`] answer *what to send when*; this crate drives
//! such a plan to completion over an unreliable medium. A
//! [`Runtime`] walks the schedule step by step over a pluggable
//! [`Transport`] (in-memory loopback with analytic 1-port timing, or the
//! [`flowsim`] max–min fair fluid engine), while a seeded, fully
//! deterministic [`FaultPlan`] injects three kinds of trouble:
//!
//! * **transient transfer failures** — retried with capped exponential
//!   backoff up to a per-transfer attempt budget,
//! * **permanent node drops** — the node's remaining demand is written off,
//! * **per-step slowdowns** — stretch the step; breaching the per-step
//!   timeout aborts it.
//!
//! Whenever a failure cannot be retried away, the runtime computes the
//! *residual* traffic matrix — original demand minus the transport's
//! delivery ledger, restricted to surviving nodes (see [`kpbs::residual`])
//! — re-plans it through GGP/OGGP, validates the fresh schedule and splices
//! its steps in place of everything not yet executed.
//!
//! The delivery invariant, enforced across a 200-seed fault campaign by
//! proptest: pairs whose endpoints survive receive **exactly** their bytes,
//! no pair ever over-delivers, every spliced schedule passes
//! [`kpbs::validate`], and a zero-fault run is byte-identical to plain
//! schedule execution.
//!
//! # Quickstart
//!
//! ```
//! use kpbs::{Platform, TrafficMatrix, traffic::TickScale};
//! use redistexec::{plan_and_execute, ExecConfig, FaultPlan, FaultSpec, LoopbackTransport};
//!
//! let platform = Platform::new(3, 3, 100.0, 100.0, 200.0);
//! let mut traffic = TrafficMatrix::zeros(3, 3);
//! traffic.set(0, 0, 10_000_000);
//! traffic.set(1, 2, 25_000_000);
//! traffic.set(2, 1, 5_000_000);
//!
//! let faults = FaultPlan::generate(7, 3, 3, &FaultSpec::default());
//! let transport = LoopbackTransport::for_platform(&platform);
//! let (_, report) = plan_and_execute(
//!     &traffic, &platform, 0.05, TickScale::MILLIS,
//!     transport, faults, ExecConfig::default(),
//! ).unwrap();
//! report.verify_against(&traffic).unwrap();
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod replan;
pub mod residual;
pub mod runtime;
pub mod transport;

pub use faults::{FaultPlan, FaultSpec, NodeRef};
pub use replan::{plan, plan_topo, PlanRecord, ReplanAlgo};
pub use residual::{outstanding, Liveness};
pub use runtime::{
    plan_and_execute, plan_and_execute_observed, plan_and_execute_topo, ExecConfig, ExecError,
    ExecMetrics, ExecReport, ExecutedStep, Runtime,
};
pub use transport::{LoopbackTransport, SimTransport, StepFaults, TransferOp, Transport};
