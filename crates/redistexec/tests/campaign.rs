//! The fault campaign: 200 seeded fault plans over random workloads.
//!
//! The delivery invariant under arbitrary (plan-generated) faults:
//!
//! * every `(sender, receiver)` pair whose endpoints survive receives
//!   **exactly** its bytes,
//! * no pair ever receives more than its demand,
//! * every schedule spliced in by residual re-planning passes
//!   [`kpbs::validate`],
//! * a zero-fault execution is byte-identical to the plain
//!   [`kpbs::Schedule::byte_slices`] expansion of the initial plan.

use kpbs::traffic::TickScale;
use kpbs::{Platform, TrafficMatrix};
use proptest::prelude::*;
use redistexec::{
    plan_and_execute, ExecConfig, FaultPlan, FaultSpec, LoopbackTransport, ReplanAlgo,
};

/// A random workload small enough to plan 200 times but rich enough to
/// yield multi-step schedules: up to 6×6 nodes, cells up to 30 MB.
fn workload_strategy() -> impl Strategy<Value = (TrafficMatrix, Platform, f64)> {
    (2usize..=6, 2usize..=6)
        .prop_flat_map(|(n1, n2)| {
            let cells = proptest::collection::vec(0u64..=30_000_000, n1 * n2);
            // Backbone multiplier chooses k between 1 and min(n1, n2)-ish.
            (Just((n1, n2)), cells, 1usize..=4, 0u64..=200)
        })
        .prop_map(|((n1, n2), cells, kmul, beta_ms)| {
            let traffic = TrafficMatrix::from_rows(n1, n2, cells);
            let platform = Platform::new(n1, n2, 100.0, 100.0, 100.0 * kmul as f64);
            (traffic, platform, beta_ms as f64 / 1_000.0)
        })
}

fn fault_spec_strategy() -> impl Strategy<Value = FaultSpec> {
    (
        (0usize..=8, 1u32..=6, 0usize..=2, 0usize..=3, 4u64..=24),
        (0usize..=4, 0usize..=3),
    )
        .prop_map(
            |(
                (transients, max_consecutive, node_drops, slowdowns, horizon),
                (nic_slowdowns, link_degradations),
            )| FaultSpec {
                transients,
                max_consecutive,
                node_drops,
                slowdowns,
                horizon,
                nic_slowdowns,
                link_degradations,
                links: 1,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn delivery_invariant_under_seeded_faults(
        (traffic, platform, beta) in workload_strategy(),
        spec in fault_spec_strategy(),
        fault_seed in 0u64..=u64::MAX,
        algo_bit in 0u8..=1,
    ) {
        let faults = FaultPlan::generate(
            fault_seed,
            traffic.senders(),
            traffic.receivers(),
            &spec,
        );
        let config = ExecConfig {
            algo: if algo_bit == 1 { ReplanAlgo::Ggp } else { ReplanAlgo::Oggp },
            ..ExecConfig::default()
        };
        let transport = LoopbackTransport::for_platform(&platform);
        let (initial, report) = plan_and_execute(
            &traffic,
            &platform,
            beta,
            TickScale::MILLIS,
            transport,
            faults,
            config,
        )
        .map_err(|e| TestCaseError::fail(format!("execution failed: {e}")))?;

        // Exactness on surviving pairs, no over-delivery anywhere.
        if let Err(e) = report.verify_against(&traffic) {
            return Err(TestCaseError::fail(e));
        }
        // Per-pair accounting recomputed from the executed-step log agrees
        // with the transport ledger.
        let mut from_log = TrafficMatrix::zeros(traffic.senders(), traffic.receivers());
        for step in &report.steps {
            for op in &step.ops {
                from_log.set(op.src, op.dst, from_log.get(op.src, op.dst) + op.bytes);
            }
        }
        prop_assert_eq!(&from_log, &report.delivered, "step log vs ledger");
        // Every spliced schedule validates against its residual instance.
        for rec in &report.plans {
            prop_assert!(
                rec.schedule.validate(&rec.instance).is_ok(),
                "spliced schedule failed kpbs::validate"
            );
        }
        // The initial plan validated too (plan_and_execute guarantees it,
        // but the invariant is cheap to restate).
        prop_assert!(initial.schedule.validate(&initial.instance).is_ok());
    }

    #[test]
    fn zero_fault_run_is_plain_execution(
        (traffic, platform, beta) in workload_strategy(),
    ) {
        let transport = LoopbackTransport::for_platform(&platform);
        let (initial, report) = plan_and_execute(
            &traffic,
            &platform,
            beta,
            TickScale::MILLIS,
            transport,
            FaultPlan::none(),
            ExecConfig::default(),
        )
        .map_err(|e| TestCaseError::fail(format!("execution failed: {e}")))?;

        prop_assert_eq!(report.retries, 0);
        prop_assert_eq!(report.replans, 0);
        prop_assert_eq!(report.faults_injected, 0);
        prop_assert_eq!(report.steps_spliced, 0);
        prop_assert_eq!(report.timeouts, 0);
        if let Err(e) = report.verify_against(&traffic) {
            return Err(TestCaseError::fail(e));
        }
        prop_assert_eq!(report.delivered.total_bytes(), traffic.total_bytes());

        // Byte-identical to the plain byte_slices expansion of the plan.
        let plain = initial.step_ops();
        prop_assert_eq!(report.steps.len(), plain.len());
        for (got, want) in report.steps.iter().zip(&plain) {
            prop_assert_eq!(&got.ops, want, "zero-fault step diverged");
            prop_assert!(got.backoff_seconds == 0.0);
            prop_assert!(!got.timed_out);
        }
    }
}
