//! Stress and integration tests of the threaded runtime: bigger worlds,
//! randomised sparse traffic, concurrent collectives — the kind of abuse a
//! redistribution library meets in production.

use bytes::Bytes;
use kpbs::traffic::TickScale;
use kpbs::{oggp, Platform, TrafficMatrix};
use mpilite::{
    alltoallv_recv, alltoallv_send, run_brute_force, run_schedule, FabricConfig, Rank, World,
    WorldConfig,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn fast_fabric() -> FabricConfig {
    FabricConfig {
        out_bytes_per_s: 4e9,
        in_bytes_per_s: 4e9,
        backbone_bytes_per_s: 8e9,
        chunk_bytes: 64 * 1024,
    }
}

#[test]
fn eight_by_eight_scheduled_run() {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut traffic = TrafficMatrix::zeros(8, 8);
    for i in 0..8 {
        for j in 0..8 {
            if rng.gen_bool(0.6) {
                traffic.set(i, j, rng.gen_range(1_000..200_000));
            }
        }
    }
    let platform = Platform::new(8, 8, 100.0, 100.0, 400.0); // k = 4
    let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
    let schedule = oggp(&inst);
    schedule.validate(&inst).unwrap();
    let r = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
    assert_eq!(r.bytes_moved, traffic.total_bytes());
}

#[test]
fn repeated_runs_stay_consistent() {
    // The same plan executed several times must always deliver everything
    // (exercises barrier reuse and channel reuse across worlds).
    let mut traffic = TrafficMatrix::zeros(3, 3);
    traffic.set(0, 1, 40_000);
    traffic.set(1, 2, 50_000);
    traffic.set(2, 0, 60_000);
    let platform = Platform::new(3, 3, 100.0, 100.0, 300.0);
    let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
    let schedule = oggp(&inst);
    for _ in 0..5 {
        let r = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
        assert_eq!(r.bytes_moved, 150_000);
    }
}

#[test]
fn brute_force_heavy_fanin() {
    // Every sender hammers one receiver: 1-port is deliberately violated by
    // the brute-force pattern; the runtime must still deliver.
    let mut traffic = TrafficMatrix::zeros(6, 2);
    for i in 0..6 {
        traffic.set(i, 0, 30_000);
    }
    let r = run_brute_force(&traffic, fast_fabric());
    assert_eq!(r.bytes_moved, 180_000);
}

#[test]
fn back_to_back_collectives() {
    // Two alltoallv rounds in one world; plans are recomputed per round and
    // barriers keep rounds from bleeding into each other.
    let n = 4;
    let mut sizes1 = TrafficMatrix::zeros(n, n);
    let mut sizes2 = TrafficMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            sizes1.set(i, j, (1 + i + j) as u64 * 1000);
            sizes2.set(i, j, (1 + i * j) as u64 * 500);
        }
    }
    let world = World::new(WorldConfig {
        senders: n,
        receivers: n,
        fabric: fast_fabric(),
    });
    let (s1, s2) = (&sizes1, &sizes2);
    world.run(|comm| {
        for (round, sizes) in [s1, s2].into_iter().enumerate() {
            match comm.rank() {
                Rank::Sender(s) => {
                    let data: Vec<Bytes> = (0..n)
                        .map(|d| {
                            Bytes::from(vec![
                                (round * 100 + s * 10 + d) as u8;
                                sizes.get(s, d) as usize
                            ])
                        })
                        .collect();
                    alltoallv_send(comm, sizes, 2, &data);
                }
                Rank::Receiver(d) => {
                    let got = alltoallv_recv(comm, sizes, 2);
                    for (s, buf) in got.iter().enumerate() {
                        assert_eq!(buf.len() as u64, sizes.get(s, d));
                        assert!(buf.iter().all(|&b| b == (round * 100 + s * 10 + d) as u8));
                    }
                }
            }
        }
    });
}

#[test]
fn single_pair_world() {
    // Degenerate world sizes must not deadlock.
    let mut traffic = TrafficMatrix::zeros(1, 1);
    traffic.set(0, 0, 123_456);
    let platform = Platform::new(1, 1, 100.0, 100.0, 100.0);
    let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
    let schedule = oggp(&inst);
    let r = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
    assert_eq!(r.bytes_moved, 123_456);
}
