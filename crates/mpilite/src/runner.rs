//! Executes redistributions on the threaded runtime and measures wall-clock
//! time — the in-process analogue of the paper's MPICH experiments.
//!
//! Two modes, matching Section 5.2:
//!
//! * [`run_schedule`] — the scheduled arm: communication proceeds in steps
//!   synchronised by a global barrier; within a step each sender performs at
//!   most one synchronous send.
//! * [`run_brute_force`] — the TCP arm: every sender opens all its
//!   connections at once (one helper thread per destination) and the shaped
//!   fabric sorts out the contention.
//!
//! Every received buffer is integrity-checked (length and fill pattern), so
//! these runs double as end-to-end correctness tests of the scheduler: a
//! 1-port violation would deadlock, a coverage error would corrupt counts.

use crate::comm::{Rank, World, WorldConfig};
use crate::fabric::FabricConfig;
use bytes::Bytes;
use kpbs::{Instance, Schedule, TrafficMatrix};
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of a runtime execution.
#[derive(Debug, Clone, Copy)]
pub struct RunnerReport {
    /// Measured wall-clock duration of the redistribution.
    pub seconds: f64,
    /// Total bytes delivered and verified.
    pub bytes_moved: u64,
    /// Number of barrier-separated steps (0 for brute force).
    pub steps: usize,
}

/// Deterministic fill byte for a message, so receivers can verify payloads.
fn fill_byte(src: usize, dst: usize) -> u8 {
    (src.wrapping_mul(31).wrapping_add(dst.wrapping_mul(17)) % 251) as u8
}

fn verify(buf: &Bytes, src: usize, dst: usize, expected_len: u64) {
    assert_eq!(
        buf.len() as u64,
        expected_len,
        "message {src}->{dst} truncated"
    );
    let fill = fill_byte(src, dst);
    assert!(
        buf.first() == Some(&fill) && buf.last() == Some(&fill),
        "message {src}->{dst} corrupted"
    );
}

/// Executes `schedule` over the threaded runtime. `inst` and `endpoints`
/// must come from the [`TrafficMatrix::to_instance`] call that produced the
/// schedule.
pub fn run_schedule(
    traffic: &TrafficMatrix,
    inst: &Instance,
    endpoints: &[(usize, usize)],
    schedule: &Schedule,
    fabric: FabricConfig,
) -> RunnerReport {
    let _span = telemetry::span("mpilite.run_schedule");
    let bytes: Vec<u64> = endpoints.iter().map(|&(s, d)| traffic.get(s, d)).collect();
    let slices = schedule.byte_slices(inst, &bytes);
    let n_steps = slices.len();

    // Per-step scripts: what each sender sends / receiver expects.
    let senders = traffic.senders();
    let receivers = traffic.receivers();
    let mut send_script: Vec<Vec<Option<(usize, u64)>>> = vec![vec![None; senders]; n_steps];
    let mut recv_script: Vec<Vec<Option<(usize, u64)>>> = vec![vec![None; receivers]; n_steps];
    for (step, slice) in slices.iter().enumerate() {
        for &(e, b) in slice {
            let (s, d) = endpoints[e.index()];
            assert!(
                send_script[step][s].is_none() && recv_script[step][d].is_none(),
                "schedule step {step} violates the 1-port model"
            );
            send_script[step][s] = Some((d, b));
            recv_script[step][d] = Some((s, b));
        }
    }

    let world = World::new(WorldConfig {
        senders,
        receivers,
        fabric,
    });
    let moved = AtomicU64::new(0);
    let elapsed = world.run(|comm| {
        for step in 0..n_steps {
            match comm.rank() {
                Rank::Sender(s) => {
                    if let Some((d, b)) = send_script[step][s] {
                        let buf = Bytes::from(vec![fill_byte(s, d); b as usize]);
                        comm.send(d, buf);
                    }
                }
                Rank::Receiver(d) => {
                    if let Some((s, b)) = recv_script[step][d] {
                        let buf = comm.recv(s);
                        verify(&buf, s, d, b);
                        moved.fetch_add(b, Ordering::Relaxed);
                    }
                }
            }
            comm.barrier();
        }
    });
    RunnerReport {
        seconds: elapsed.as_secs_f64(),
        bytes_moved: moved.load(Ordering::Relaxed),
        steps: n_steps,
    }
}

/// Executes the brute-force pattern: all messages at once, the transport
/// (here: the shaped fabric) left to arbitrate.
pub fn run_brute_force(traffic: &TrafficMatrix, fabric: FabricConfig) -> RunnerReport {
    let _span = telemetry::span("mpilite.run_brute_force");
    let senders = traffic.senders();
    let receivers = traffic.receivers();
    let world = World::new(WorldConfig {
        senders,
        receivers,
        fabric,
    });
    let moved = AtomicU64::new(0);
    let elapsed = world.run(|comm| match comm.rank() {
        Rank::Sender(s) => {
            // One helper thread per destination: all connections at once.
            std::thread::scope(|scope| {
                for d in 0..receivers {
                    let b = traffic.get(s, d);
                    if b > 0 {
                        let comm = &comm;
                        scope.spawn(move || {
                            comm.send(d, Bytes::from(vec![fill_byte(s, d); b as usize]));
                        });
                    }
                }
            });
        }
        Rank::Receiver(d) => {
            std::thread::scope(|scope| {
                for s in 0..senders {
                    let b = traffic.get(s, d);
                    if b > 0 {
                        let comm = &comm;
                        let moved = &moved;
                        scope.spawn(move || {
                            let buf = comm.recv(s);
                            verify(&buf, s, d, b);
                            moved.fetch_add(b, Ordering::Relaxed);
                        });
                    }
                }
            });
        }
    });
    RunnerReport {
        seconds: elapsed.as_secs_f64(),
        bytes_moved: moved.load(Ordering::Relaxed),
        steps: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpbs::traffic::TickScale;
    use kpbs::{ggp, oggp, Platform};

    fn fast_fabric() -> FabricConfig {
        FabricConfig {
            out_bytes_per_s: 2e9,
            in_bytes_per_s: 2e9,
            backbone_bytes_per_s: 2e9,
            chunk_bytes: 64 * 1024,
        }
    }

    fn small_workload(salt: u64) -> (TrafficMatrix, Platform) {
        // Keep volumes small: these move real bytes through real threads.
        let mut traffic = TrafficMatrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                traffic.set(i, j, 10_000 + ((i * 4 + j) as u64 + salt) * 1000);
            }
        }
        (traffic, Platform::new(4, 4, 100.0, 100.0, 200.0))
    }

    #[test]
    fn scheduled_run_delivers_every_byte() {
        let (traffic, platform) = small_workload(1);
        let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
        let schedule = oggp(&inst);
        schedule.validate(&inst).unwrap();
        let r = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
        assert_eq!(r.bytes_moved, traffic.total_bytes());
        assert_eq!(r.steps, schedule.num_steps());
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn ggp_schedule_also_runs() {
        let (traffic, platform) = small_workload(2);
        let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
        let schedule = ggp(&inst);
        let r = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
        assert_eq!(r.bytes_moved, traffic.total_bytes());
    }

    #[test]
    fn scheduled_run_counts_barrier_waits() {
        use telemetry::counters::{self, Counter};
        let (traffic, platform) = small_workload(5);
        let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
        let schedule = oggp(&inst);
        // Counters are process-global and other tests run concurrently, so
        // assert with >= on a global delta.
        counters::enable();
        let before = counters::global_snapshot();
        let r = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
        let delta = counters::global_snapshot().delta(&before);
        counters::disable();
        // Every rank waits on the barrier once per step.
        let parties = (traffic.senders() + traffic.receivers()) as u64;
        assert!(
            delta.get(Counter::BarrierWaits) >= parties * r.steps as u64,
            "expected >= {} barrier waits, got {delta:?}",
            parties * r.steps as u64
        );
    }

    #[test]
    fn brute_force_delivers_every_byte() {
        let (traffic, _) = small_workload(3);
        let r = run_brute_force(&traffic, fast_fabric());
        assert_eq!(r.bytes_moved, traffic.total_bytes());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn sparse_traffic_supported() {
        let mut traffic = TrafficMatrix::zeros(3, 3);
        traffic.set(0, 2, 5000);
        traffic.set(2, 0, 7000);
        let platform = Platform::new(3, 3, 100.0, 100.0, 200.0);
        let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
        let schedule = oggp(&inst);
        let r = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
        assert_eq!(r.bytes_moved, 12_000);
        let rb = run_brute_force(&traffic, fast_fabric());
        assert_eq!(rb.bytes_moved, 12_000);
    }

    #[test]
    fn shaped_fabric_slows_transfers() {
        // Same workload, 100× slower fabric → measurably longer run.
        let (traffic, platform) = small_workload(4);
        let (inst, endpoints) = traffic.to_instance(&platform, 0.0, TickScale::MILLIS);
        let schedule = oggp(&inst);
        let fast = run_schedule(&traffic, &inst, &endpoints, &schedule, fast_fabric());
        let slow_cfg = FabricConfig {
            out_bytes_per_s: 2e6,
            in_bytes_per_s: 2e6,
            backbone_bytes_per_s: 4e6,
            chunk_bytes: 16 * 1024,
        };
        let slow = run_schedule(&traffic, &inst, &endpoints, &schedule, slow_cfg);
        assert!(
            slow.seconds > fast.seconds,
            "shaping had no effect: fast {} slow {}",
            fast.seconds,
            slow.seconds
        );
    }
}
