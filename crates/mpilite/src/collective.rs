//! A scheduled `alltoallv` collective — the paper's concluding goal ("a
//! fully working redistribution library", with the redGRID project) as a
//! library call.
//!
//! Every rank knows the global size matrix (as in `MPI_Alltoallv`), so every
//! rank deterministically computes the *same* OGGP schedule and plays its
//! part: senders slice their buffers along the schedule's preemption points,
//! receivers reassemble, and a barrier separates steps. No coordinator is
//! needed.

use crate::comm::{Comm, Rank};
use bipartite::Graph;
use bytes::{Bytes, BytesMut};
use kpbs::{oggp, Instance, TrafficMatrix};

/// The shared plan both sides derive from the size matrix: per step, the
/// byte ranges each sender transmits / receiver expects.
struct Plan {
    /// `steps[i][sender] = Some((dst, offset, len))`.
    send: Vec<Vec<Option<(usize, usize, usize)>>>,
    /// `steps[i][receiver] = Some((src, len))`.
    recv: Vec<Vec<Option<(usize, usize)>>>,
}

fn plan(sizes: &TrafficMatrix, k: usize) -> Plan {
    let n1 = sizes.senders();
    let n2 = sizes.receivers();
    // Weights are the byte counts themselves: the schedule's preemption
    // points then are byte offsets directly (β = 0: barriers are the only
    // setup cost in-process).
    let mut g = Graph::new(n1, n2);
    let mut endpoints = Vec::new();
    for i in 0..n1 {
        for j in 0..n2 {
            let b = sizes.get(i, j);
            if b > 0 {
                g.add_edge(i, j, b);
                endpoints.push((i, j));
            }
        }
    }
    let inst = Instance::new(g, k.max(1), 0);
    let schedule = oggp(&inst);
    debug_assert!(schedule.validate(&inst).is_ok());

    let mut send = Vec::with_capacity(schedule.num_steps());
    let mut recv = Vec::with_capacity(schedule.num_steps());
    // Track per-edge progress so slices carry their buffer offsets.
    let mut offset = vec![0usize; endpoints.len()];
    for step in &schedule.steps {
        let mut srow: Vec<Option<(usize, usize, usize)>> = vec![None; n1];
        let mut rrow: Vec<Option<(usize, usize)>> = vec![None; n2];
        for t in &step.transfers {
            let idx = t.edge.index();
            let (s, d) = endpoints[idx];
            let len = t.amount as usize;
            debug_assert!(srow[s].is_none() && rrow[d].is_none(), "1-port");
            srow[s] = Some((d, offset[idx], len));
            rrow[d] = Some((s, len));
            offset[idx] += len;
        }
        send.push(srow);
        recv.push(rrow);
    }
    Plan { send, recv }
}

/// Sender-side half of the collective: `data[j]` is the payload for
/// receiver `j` and must be exactly `sizes.get(my_rank, j)` bytes.
///
/// # Panics
///
/// Panics when called from a receiver rank or when a buffer length does not
/// match the size matrix.
pub fn alltoallv_send(comm: &Comm, sizes: &TrafficMatrix, k: usize, data: &[Bytes]) {
    let me = match comm.rank() {
        Rank::Sender(s) => s,
        Rank::Receiver(_) => panic!("alltoallv_send called from a receiver rank"),
    };
    assert_eq!(data.len(), sizes.receivers(), "one buffer per receiver");
    for (j, buf) in data.iter().enumerate() {
        assert_eq!(
            buf.len() as u64,
            sizes.get(me, j),
            "buffer {me}->{j} length mismatch"
        );
    }
    let p = plan(sizes, k);
    for step in &p.send {
        if let Some((dst, off, len)) = step[me] {
            comm.send(dst, data[dst].slice(off..off + len));
        }
        comm.barrier();
    }
}

/// Receiver-side half: returns the reassembled payload from each sender
/// (`result[i]` has `sizes.get(i, my_rank)` bytes).
///
/// # Panics
///
/// Panics when called from a sender rank.
pub fn alltoallv_recv(comm: &Comm, sizes: &TrafficMatrix, k: usize) -> Vec<Bytes> {
    let me = match comm.rank() {
        Rank::Receiver(d) => d,
        Rank::Sender(_) => panic!("alltoallv_recv called from a sender rank"),
    };
    let p = plan(sizes, k);
    let mut parts: Vec<BytesMut> = (0..sizes.senders())
        .map(|i| BytesMut::with_capacity(sizes.get(i, me) as usize))
        .collect();
    for step in &p.recv {
        if let Some((src, len)) = step[me] {
            let buf = comm.recv(src);
            assert_eq!(buf.len(), len, "slice {src}->{me} length mismatch");
            parts[src].extend_from_slice(&buf);
        }
        comm.barrier();
    }
    parts.into_iter().map(BytesMut::freeze).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{World, WorldConfig};
    use crate::fabric::FabricConfig;

    fn fast_fabric() -> FabricConfig {
        FabricConfig {
            out_bytes_per_s: 2e9,
            in_bytes_per_s: 2e9,
            backbone_bytes_per_s: 2e9,
            chunk_bytes: 64 * 1024,
        }
    }

    fn payload(src: usize, dst: usize, len: usize) -> Bytes {
        // Position-dependent pattern: catches reassembly-order bugs that a
        // constant fill would miss.
        Bytes::from(
            (0..len)
                .map(|p| (src * 7 + dst * 13 + p) as u8)
                .collect::<Vec<u8>>(),
        )
    }

    fn run_alltoallv(n1: usize, n2: usize, k: usize, sizes: TrafficMatrix) {
        let world = World::new(WorldConfig {
            senders: n1,
            receivers: n2,
            fabric: fast_fabric(),
        });
        let sizes = &sizes;
        world.run(|comm| match comm.rank() {
            Rank::Sender(s) => {
                let data: Vec<Bytes> = (0..n2)
                    .map(|d| payload(s, d, sizes.get(s, d) as usize))
                    .collect();
                alltoallv_send(comm, sizes, k, &data);
            }
            Rank::Receiver(d) => {
                let got = alltoallv_recv(comm, sizes, k);
                for (s, buf) in got.iter().enumerate() {
                    let want = payload(s, d, sizes.get(s, d) as usize);
                    assert_eq!(buf, &want, "payload {s}->{d} corrupted");
                }
            }
        });
    }

    #[test]
    fn dense_alltoallv_roundtrip() {
        let mut sizes = TrafficMatrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                sizes.set(i, j, 1000 + (i * 4 + j) as u64 * 333);
            }
        }
        run_alltoallv(4, 4, 2, sizes);
    }

    #[test]
    fn sparse_alltoallv_roundtrip() {
        let mut sizes = TrafficMatrix::zeros(5, 3);
        sizes.set(0, 2, 4096);
        sizes.set(3, 0, 1);
        sizes.set(4, 1, 70_000);
        run_alltoallv(5, 3, 2, sizes);
    }

    #[test]
    fn k_one_serialises_but_delivers() {
        let mut sizes = TrafficMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                sizes.set(i, j, 2000);
            }
        }
        run_alltoallv(3, 3, 1, sizes);
    }

    #[test]
    fn empty_matrix_no_deadlock() {
        run_alltoallv(2, 2, 1, TrafficMatrix::zeros(2, 2));
    }

    #[test]
    fn preemption_reassembly() {
        // One very large message alongside small ones forces OGGP to
        // preempt; reassembly must restore byte order.
        let mut sizes = TrafficMatrix::zeros(2, 2);
        sizes.set(0, 0, 100_000);
        sizes.set(0, 1, 1_000);
        sizes.set(1, 0, 1_000);
        sizes.set(1, 1, 50_000);
        run_alltoallv(2, 2, 2, sizes);
    }
}
