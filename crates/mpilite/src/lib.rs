//! An in-process MPI-like message-passing runtime.
//!
//! The paper's real-world experiments (Section 5.2) run MPICH programs on
//! two clusters whose NICs are shaped to `100/k` Mbit/s by the `rshaper`
//! token-bucket kernel module. This crate reproduces that software stack in
//! process:
//!
//! * ranks are OS threads ([`comm`]),
//! * point-to-point sends are synchronous rendezvous transfers of real byte
//!   buffers ([`comm::Comm::send`] blocks until the receiver accepts, like
//!   `MPI_Ssend`),
//! * a shared [`fabric`] rate-limits every transfer through three
//!   token buckets — sender NIC, receiver NIC, backbone — mirroring
//!   `rshaper` ([`shaper`]),
//! * global [`barrier`]s separate communication steps,
//! * [`runner`] executes a `kpbs` [`Schedule`](kpbs::Schedule) (or the
//!   brute-force all-at-once pattern) and measures wall-clock time, the
//!   in-process analogue of the paper's `ntp_gettime` measurements.
//!
//! Bandwidths are configurable so tests run in milliseconds; the *structure*
//! (who waits on whom, what is shaped where) matches the paper's setup.

#![warn(missing_docs)]

pub mod barrier;
pub mod collective;
pub mod comm;
pub mod fabric;
pub mod runner;
pub mod shaper;

pub use collective::{alltoallv_recv, alltoallv_send};
pub use comm::{Comm, Rank, World, WorldConfig};
pub use fabric::FabricConfig;
pub use runner::{run_brute_force, run_schedule, RunnerReport};
