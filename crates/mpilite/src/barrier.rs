//! A reusable sense-reversing barrier built on a mutex + condvar, the
//! synchronisation separating communication steps (the paper's
//! `MPI_Barrier` between steps).

use parking_lot::{Condvar, Mutex};
use telemetry::counters::{self, Counter};

struct State {
    waiting: usize,
    generation: u64,
}

/// A reusable barrier for a fixed number of participants.
pub struct Barrier {
    parties: usize,
    state: Mutex<State>,
    cvar: Condvar,
}

impl Barrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        Barrier {
            parties,
            state: Mutex::new(State {
                waiting: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all `parties` threads have called `wait` for this
    /// generation. Returns `true` for exactly one "leader" thread per
    /// generation.
    pub fn wait(&self) -> bool {
        counters::incr(Counter::BarrierWaits);
        let mut s = self.state.lock();
        let gen = s.generation;
        s.waiting += 1;
        if s.waiting == self.parties {
            s.waiting = 0;
            s.generation += 1;
            self.cvar.notify_all();
            true
        } else {
            while s.generation == gen {
                self.cvar.wait(&mut s);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn synchronises_phases() {
        // No thread may enter phase p+1 before all finished phase p.
        let n = 8;
        let b = Arc::new(Barrier::new(n));
        let phase_count = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = b.clone();
            let pc = phase_count.clone();
            handles.push(std::thread::spawn(move || {
                for phase in 0..20 {
                    pc.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    // After the barrier, all n increments of this phase are
                    // visible.
                    assert!(pc.load(Ordering::SeqCst) >= n * (phase + 1));
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase_count.load(Ordering::SeqCst), n * 20);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let n = 4;
        let b = Arc::new(Barrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = b.clone();
            let l = leaders.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    if b.wait() {
                        l.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_parties_rejected() {
        Barrier::new(0);
    }
}
