//! Ranks, the world, and point-to-point communication.
//!
//! A [`World`] spawns one OS thread per rank: `senders` ranks in cluster
//! `C1` and `receivers` ranks in cluster `C2`. [`Comm::send`] is
//! *synchronous* (rendezvous, like `MPI_Ssend`): the payload is first shaped
//! through the [`Fabric`] token buckets and the call
//! returns only when the receiver has accepted the message.

use crate::barrier::Barrier;
use crate::fabric::{Fabric, FabricConfig};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

/// Identity of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rank {
    /// Node `i` of the sending cluster `C1`.
    Sender(usize),
    /// Node `j` of the receiving cluster `C2`.
    Receiver(usize),
}

/// World construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Nodes in `C1`.
    pub senders: usize,
    /// Nodes in `C2`.
    pub receivers: usize,
    /// Fabric bandwidths.
    pub fabric: FabricConfig,
}

struct Shared {
    fabric: Fabric,
    barrier: Barrier,
    // channels[s][d]: rendezvous channel sender s → receiver d.
    tx: Vec<Vec<Sender<Bytes>>>,
    rx: Vec<Vec<Receiver<Bytes>>>,
    senders: usize,
    receivers: usize,
}

/// The set of ranks plus the fabric connecting them.
///
/// ```
/// use bytes::Bytes;
/// use mpilite::{FabricConfig, Rank, World, WorldConfig};
///
/// let world = World::new(WorldConfig {
///     senders: 1,
///     receivers: 1,
///     fabric: FabricConfig {
///         out_bytes_per_s: 1e9,
///         in_bytes_per_s: 1e9,
///         backbone_bytes_per_s: 1e9,
///         chunk_bytes: 64 * 1024,
///     },
/// });
/// world.run(|comm| match comm.rank() {
///     Rank::Sender(0) => comm.send(0, Bytes::from_static(b"hello")),
///     Rank::Receiver(0) => assert_eq!(&comm.recv(0)[..], b"hello"),
///     _ => unreachable!(),
/// });
/// ```
pub struct World {
    shared: Shared,
}

impl World {
    /// Builds a world (no threads yet; they start in [`World::run`]).
    pub fn new(config: WorldConfig) -> Self {
        assert!(config.senders >= 1 && config.receivers >= 1);
        let mut tx = Vec::with_capacity(config.senders);
        let mut rx = Vec::with_capacity(config.senders);
        for _ in 0..config.senders {
            let mut trow = Vec::with_capacity(config.receivers);
            let mut rrow = Vec::with_capacity(config.receivers);
            for _ in 0..config.receivers {
                // bounded(0) = rendezvous: send blocks until recv.
                let (t, r) = bounded(0);
                trow.push(t);
                rrow.push(r);
            }
            tx.push(trow);
            rx.push(rrow);
        }
        World {
            shared: Shared {
                fabric: Fabric::new(config.senders, config.receivers, &config.fabric),
                barrier: Barrier::new(config.senders + config.receivers),
                tx,
                rx,
                senders: config.senders,
                receivers: config.receivers,
            },
        }
    }

    /// Runs `f` once per rank, each on its own thread, and returns the
    /// wall-clock duration from the moment all ranks were released to the
    /// moment the last one finished (the paper's measured redistribution
    /// time).
    pub fn run<F>(&self, f: F) -> std::time::Duration
    where
        F: Fn(&Comm) + Send + Sync,
    {
        let shared = &self.shared;
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for s in 0..shared.senders {
                let f = &f;
                scope.spawn(move || {
                    let comm = Comm {
                        rank: Rank::Sender(s),
                        shared,
                    };
                    // Align all ranks before doing timed work.
                    comm.barrier();
                    f(&comm);
                });
            }
            for d in 0..shared.receivers {
                let f = &f;
                scope.spawn(move || {
                    let comm = Comm {
                        rank: Rank::Receiver(d),
                        shared,
                    };
                    comm.barrier();
                    f(&comm);
                });
            }
        });
        start.elapsed()
    }
}

/// A rank's handle on the world. `Sync`: brute-force senders share it across
/// helper threads to open concurrent connections.
pub struct Comm<'w> {
    rank: Rank,
    shared: &'w Shared,
}

impl Comm<'_> {
    /// This rank's identity.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of sender ranks.
    pub fn senders(&self) -> usize {
        self.shared.senders
    }

    /// Number of receiver ranks.
    pub fn receivers(&self) -> usize {
        self.shared.receivers
    }

    /// Synchronously sends `data` to receiver `dst`: shapes the bytes
    /// through the fabric, then hands the buffer over (blocking until the
    /// receiver accepts it).
    ///
    /// # Panics
    ///
    /// Panics when called from a receiver rank (receivers have no uplink in
    /// the model) or when `dst` is out of range.
    pub fn send(&self, dst: usize, data: Bytes) {
        let src = match self.rank {
            Rank::Sender(s) => s,
            Rank::Receiver(_) => panic!("receiver ranks cannot send"),
        };
        self.shared.fabric.transmit(src, dst, data.len());
        self.shared.tx[src][dst]
            .send(data)
            .expect("receiver hung up");
    }

    /// Receives the next message from sender `src` (blocking).
    ///
    /// # Panics
    ///
    /// Panics when called from a sender rank or when `src` is out of range.
    pub fn recv(&self, src: usize) -> Bytes {
        let dst = match self.rank {
            Rank::Receiver(d) => d,
            Rank::Sender(_) => panic!("sender ranks cannot receive"),
        };
        self.shared.rx[src][dst].recv().expect("sender hung up")
    }

    /// Global barrier across every rank of the world.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_fabric() -> FabricConfig {
        FabricConfig {
            out_bytes_per_s: 1e9,
            in_bytes_per_s: 1e9,
            backbone_bytes_per_s: 1e9,
            chunk_bytes: 64 * 1024,
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let world = World::new(WorldConfig {
            senders: 1,
            receivers: 1,
            fabric: fast_fabric(),
        });
        world.run(|comm| match comm.rank() {
            Rank::Sender(0) => comm.send(0, Bytes::from(vec![7u8; 1024])),
            Rank::Receiver(0) => {
                let m = comm.recv(0);
                assert_eq!(m.len(), 1024);
                assert!(m.iter().all(|&b| b == 7));
            }
            _ => unreachable!(),
        });
    }

    #[test]
    fn all_to_all_delivery() {
        let n = 4;
        let world = World::new(WorldConfig {
            senders: n,
            receivers: n,
            fabric: fast_fabric(),
        });
        world.run(|comm| match comm.rank() {
            Rank::Sender(s) => {
                for d in 0..n {
                    comm.send(d, Bytes::from(vec![(s * n + d) as u8; 256]));
                }
            }
            Rank::Receiver(d) => {
                for s in 0..n {
                    let m = comm.recv(s);
                    assert!(m.iter().all(|&b| b == (s * n + d) as u8));
                }
            }
        });
    }

    #[test]
    fn barrier_steps_synchronise() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let world = World::new(WorldConfig {
            senders: 2,
            receivers: 2,
            fabric: fast_fabric(),
        });
        let counter = AtomicUsize::new(0);
        world.run(|comm| {
            for step in 0..5 {
                counter.fetch_add(1, Ordering::SeqCst);
                comm.barrier();
                assert!(counter.load(Ordering::SeqCst) >= 4 * (step + 1));
                comm.barrier();
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn send_is_rendezvous() {
        // The sender cannot complete before the receiver posts its recv.
        use std::time::{Duration, Instant};
        let world = World::new(WorldConfig {
            senders: 1,
            receivers: 1,
            fabric: fast_fabric(),
        });
        let elapsed = world.run(|comm| match comm.rank() {
            Rank::Sender(0) => {
                comm.send(0, Bytes::from(vec![1u8; 16]));
            }
            Rank::Receiver(0) => {
                std::thread::sleep(Duration::from_millis(60));
                let t0 = Instant::now();
                let _ = comm.recv(0);
                assert!(t0.elapsed() < Duration::from_millis(50));
            }
            _ => unreachable!(),
        });
        assert!(
            elapsed >= Duration::from_millis(55),
            "sender returned early"
        );
    }

    #[test]
    #[should_panic]
    fn receiver_cannot_send() {
        let world = World::new(WorldConfig {
            senders: 1,
            receivers: 1,
            fabric: fast_fabric(),
        });
        world.run(|comm| {
            if let Rank::Receiver(_) = comm.rank() {
                comm.send(0, Bytes::from_static(b"x"));
            } else {
                let _ = comm.recv(0); // keep the pair symmetric: also panics
            }
        });
    }
}
