//! The shared network fabric: every byte a rank sends is charged against
//! three token buckets — its own NIC, the destination NIC, and the backbone
//! — chunk by chunk, reproducing the paper's `rshaper`-limited Ethernet.

use crate::shaper::TokenBucket;

/// Fabric bandwidth configuration. Bandwidths in bytes/s (tests scale these
/// up so transfers complete in milliseconds).
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Egress rate of each sender NIC.
    pub out_bytes_per_s: f64,
    /// Ingress rate of each receiver NIC.
    pub in_bytes_per_s: f64,
    /// Backbone rate shared by all transfers.
    pub backbone_bytes_per_s: f64,
    /// Chunk size for shaping (the "packet" granularity).
    pub chunk_bytes: usize,
}

impl FabricConfig {
    /// The paper's testbed for parallelism `k`, scaled by `speedup` so a
    /// simulated "100 Mbit/s" moves `speedup × 12.5 MB/s` (tests typically
    /// use large speedups to finish fast).
    pub fn testbed(k: usize, speedup: f64) -> Self {
        assert!(k >= 1);
        let nic = 100.0 / k as f64 * 1e6 / 8.0 * speedup;
        FabricConfig {
            out_bytes_per_s: nic,
            in_bytes_per_s: nic,
            backbone_bytes_per_s: 100.0 * 1e6 / 8.0 * speedup,
            chunk_bytes: 16 * 1024,
        }
    }
}

/// The instantiated fabric: one bucket per NIC plus the backbone bucket.
pub struct Fabric {
    out: Vec<TokenBucket>,
    in_: Vec<TokenBucket>,
    backbone: TokenBucket,
    chunk: usize,
}

impl Fabric {
    /// Builds the fabric for `senders` × `receivers` nodes.
    pub fn new(senders: usize, receivers: usize, cfg: &FabricConfig) -> Self {
        assert!(cfg.chunk_bytes > 0);
        let burst = |rate: f64| (rate * 0.005).max(cfg.chunk_bytes as f64);
        Fabric {
            out: (0..senders)
                .map(|_| TokenBucket::new(cfg.out_bytes_per_s, burst(cfg.out_bytes_per_s)))
                .collect(),
            in_: (0..receivers)
                .map(|_| TokenBucket::new(cfg.in_bytes_per_s, burst(cfg.in_bytes_per_s)))
                .collect(),
            backbone: TokenBucket::new(cfg.backbone_bytes_per_s, burst(cfg.backbone_bytes_per_s)),
            chunk: cfg.chunk_bytes,
        }
    }

    /// Blocks the calling thread while `bytes` are shaped through sender
    /// `src`'s NIC, the backbone, and receiver `dst`'s NIC.
    pub fn transmit(&self, src: usize, dst: usize, bytes: usize) {
        let mut left = bytes;
        while left > 0 {
            let n = left.min(self.chunk);
            self.out[src].acquire(n);
            self.backbone.acquire(n);
            self.in_[dst].acquire(n);
            left -= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn single_transfer_paced_by_slowest_bucket() {
        // Sender NIC 10 MB/s is the bottleneck (backbone 100 MB/s).
        let cfg = FabricConfig {
            out_bytes_per_s: 10e6,
            in_bytes_per_s: 100e6,
            backbone_bytes_per_s: 100e6,
            chunk_bytes: 4096,
        };
        let f = Fabric::new(1, 1, &cfg);
        let t0 = Instant::now();
        f.transmit(0, 0, 1_000_000); // ≈ 0.1 s at 10 MB/s
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.06, "too fast: {dt}");
        assert!(dt < 0.5, "too slow: {dt}");
    }

    #[test]
    fn parallel_transfers_share_backbone() {
        // Two disjoint pairs, NICs 100 MB/s, backbone 10 MB/s: 1 MB + 1 MB
        // through a 10 MB/s backbone ≈ 0.2 s (sequential pacing of the
        // shared bucket).
        let cfg = FabricConfig {
            out_bytes_per_s: 100e6,
            in_bytes_per_s: 100e6,
            backbone_bytes_per_s: 10e6,
            chunk_bytes: 4096,
        };
        let f = Arc::new(Fabric::new(2, 2, &cfg));
        let t0 = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|i| {
                let f = f.clone();
                std::thread::spawn(move || f.transmit(i, i, 1_000_000))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.12, "backbone not enforced: {dt}");
        assert!(dt < 0.8, "too slow: {dt}");
    }

    #[test]
    fn distinct_nics_do_not_interfere() {
        // Two disjoint pairs with a fat backbone run in parallel: 1 MB each
        // at 10 MB/s NICs ≈ 0.1 s total, not 0.2.
        let cfg = FabricConfig {
            out_bytes_per_s: 10e6,
            in_bytes_per_s: 10e6,
            backbone_bytes_per_s: 1000e6,
            chunk_bytes: 4096,
        };
        let f = Arc::new(Fabric::new(2, 2, &cfg));
        let t0 = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|i| {
                let f = f.clone();
                std::thread::spawn(move || f.transmit(i, i, 1_000_000))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt < 0.25, "pairs should not serialise: {dt}");
    }

    #[test]
    fn testbed_config_scales() {
        let c = FabricConfig::testbed(5, 2.0);
        assert!((c.out_bytes_per_s - 20.0 / 8.0 * 1e6 * 2.0).abs() < 1.0);
        assert!((c.backbone_bytes_per_s - 100.0 / 8.0 * 1e6 * 2.0).abs() < 1.0);
    }
}
