//! Token-bucket rate shaping — the `rshaper` stand-in.
//!
//! A bucket refills continuously at `rate` bytes/s up to a `burst` cap.
//! [`TokenBucket::acquire`] blocks the calling thread until the requested
//! tokens are available, which is how a kernel shaper delays a socket.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

struct State {
    tokens: f64,
    last_refill: Instant,
}

/// A thread-safe blocking token bucket.
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<State>,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate_bytes_per_s`, holding at most
    /// `burst_bytes`, starting full.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(rate_bytes_per_s: f64, burst_bytes: f64) -> Self {
        assert!(rate_bytes_per_s > 0.0 && rate_bytes_per_s.is_finite());
        assert!(burst_bytes > 0.0 && burst_bytes.is_finite());
        TokenBucket {
            rate: rate_bytes_per_s,
            burst: burst_bytes,
            state: Mutex::new(State {
                tokens: burst_bytes,
                last_refill: Instant::now(),
            }),
        }
    }

    /// The refill rate in bytes/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Blocks until `bytes` tokens are available, then consumes them.
    /// Requests larger than the burst are served in burst-sized gulps.
    pub fn acquire(&self, bytes: usize) {
        let mut need = bytes as f64;
        while need > 0.0 {
            let chunk = need.min(self.burst);
            self.acquire_chunk(chunk);
            need -= chunk;
        }
    }

    fn acquire_chunk(&self, chunk: f64) {
        loop {
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(s.last_refill).as_secs_f64();
                s.tokens = (s.tokens + elapsed * self.rate).min(self.burst);
                s.last_refill = now;
                if s.tokens >= chunk {
                    s.tokens -= chunk;
                    return;
                }
                (chunk - s.tokens) / self.rate
            };
            // Sleep outside the lock so other threads can drain too.
            std::thread::sleep(Duration::from_secs_f64(wait.min(0.05)));
        }
    }

    /// Tokens currently available (refreshes the bucket; for tests).
    pub fn available(&self) -> f64 {
        let mut s = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(s.last_refill).as_secs_f64();
        s.tokens = (s.tokens + elapsed * self.rate).min(self.burst);
        s.last_refill = now;
        s.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn burst_served_immediately() {
        let b = TokenBucket::new(1000.0, 10_000.0);
        let t0 = Instant::now();
        b.acquire(5_000);
        assert!(t0.elapsed().as_secs_f64() < 0.1);
    }

    #[test]
    fn sustained_rate_enforced() {
        // 1 MB/s bucket with 10 KB burst: moving 60 KB beyond the burst
        // takes ≈ 50 ms.
        let b = TokenBucket::new(1_000_000.0, 10_000.0);
        let t0 = Instant::now();
        b.acquire(60_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.04, "finished too fast: {dt}s");
        assert!(dt < 0.5, "finished too slow: {dt}s");
    }

    #[test]
    fn concurrent_acquirers_share() {
        // Two threads drawing 30 KB each from a 1 MB/s bucket (10 KB burst):
        // total 60 KB → ≈ 50 ms wall-clock, not 100 (they interleave but the
        // bucket is the shared limit).
        let b = Arc::new(TokenBucket::new(1_000_000.0, 10_000.0));
        let t0 = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || b.acquire(30_000))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.04, "too fast: {dt}");
        assert!(dt < 0.6, "too slow: {dt}");
    }

    #[test]
    fn oversized_request_chunked() {
        let b = TokenBucket::new(10_000_000.0, 1_000.0);
        // 100 KB through a 1 KB-burst bucket at 10 MB/s ≈ 10 ms.
        let t0 = Instant::now();
        b.acquire(100_000);
        assert!(t0.elapsed().as_secs_f64() < 1.0);
    }

    #[test]
    #[should_panic]
    fn invalid_rate_rejected() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    fn available_reports_refill() {
        let b = TokenBucket::new(1_000_000.0, 1_000.0);
        b.acquire(1_000);
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.available() > 0.0);
    }
}
