//! Windowed metrics registry with Prometheus text exposition.
//!
//! A [`Registry`] holds three kinds of instruments, all registered by name
//! plus a (possibly empty) label set:
//!
//! * [`CounterHandle`] — a monotonic `u64` with a sliding-window
//!   [`rate`](CounterHandle::rate) derived from totals captured at window
//!   boundaries,
//! * [`GaugeHandle`] — a settable `f64` (also how derived values like
//!   rates are exported: the owner computes and sets them before a render),
//! * [`SummaryHandle`] — an HDR [`Histogram`] pair: a cumulative one for
//!   `_sum`/`_count` and a ring of per-window histograms merged on the fly
//!   for sliding-window quantiles.
//!
//! Windows advance only when [`Registry::advance`] is called — directly in
//! tests (deterministic under the logical clock, golden-testable) or via
//! [`Registry::tick`] from serving code when `auto_advance` is on. Nothing
//! in this module reads the wall clock on its own.
//!
//! [`Registry::render`] emits Prometheus text exposition format: families
//! sorted by name, series sorted by label string, `# HELP`/`# TYPE` before
//! samples — byte-stable for a fixed sequence of updates.
//! [`validate_exposition`] checks well-formedness (the `scripts/check.sh`
//! scrape step runs it against a live server) and [`find_sample`] pulls
//! individual values back out of scraped text (`redistload` embeds these in
//! `BENCH_serve.json`).
//!
//! Instrument updates are a few relaxed atomic ops; registration and
//! rendering take the registry lock. The disabled/idle path — instruments
//! registered but a request path that never renders — stays near zero cost
//! (pinned by `crates/bench/benches/observability.rs`).

use crate::histogram::Histogram;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Quantiles every summary exports, matching the serving layer's reporting
/// (`STATS` p50/p99 plus a p90 midpoint).
pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Registry construction parameters.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Completed windows retained for rate/quantile views.
    pub windows: usize,
    /// Nominal seconds per window — the denominator of
    /// [`CounterHandle::rate`]. Purely declarative: the registry never
    /// reads a clock; window boundaries are wherever `advance()` is called.
    pub window_seconds: u64,
    /// When true, [`Registry::tick`] advances once `window_seconds` of wall
    /// time have passed since the last advance. Leave false in tests and
    /// drive [`Registry::advance`] manually for deterministic output.
    pub auto_advance: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            windows: 6,
            window_seconds: 10,
            auto_advance: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Summary,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Summary => "summary",
        }
    }
}

#[derive(Debug)]
struct CounterCore {
    total: AtomicU64,
    /// Totals captured at each `advance()` boundary, oldest first; at most
    /// `windows + 1` entries, so front-to-back spans `windows` windows.
    marks: Mutex<VecDeque<u64>>,
    window_seconds: u64,
}

#[derive(Debug)]
struct GaugeCore {
    /// f64 bits; gauges are set/added from one logical owner at a time so
    /// relaxed atomics suffice.
    bits: AtomicU64,
}

#[derive(Debug)]
struct SummaryCore {
    /// All samples ever — `_sum`, `_count`, and lifetime quantiles.
    cumulative: Histogram,
    /// `windows + 1` slots: the active one collects the current partial
    /// window, the rest hold completed windows. `advance()` resets the
    /// next slot and moves the active index onto it.
    ring: Vec<Histogram>,
    active: AtomicUsize,
}

#[derive(Debug)]
enum Instrument {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Summary(Arc<SummaryCore>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label string (`{a="x",b="y"}` or empty) —
    /// which is also the render sort order.
    series: BTreeMap<String, Instrument>,
}

/// A registered monotonic counter. Cloning shares the underlying series.
#[derive(Debug, Clone)]
pub struct CounterHandle(Arc<CounterCore>);

impl CounterHandle {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (counters only go up; there is no subtract).
    pub fn add(&self, n: u64) {
        self.0.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Lifetime total.
    pub fn value(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Events per second over the retained completed windows: the delta
    /// between the newest and oldest boundary marks divided by the nominal
    /// seconds they span. 0.0 until two boundaries exist.
    pub fn rate(&self) -> f64 {
        let marks = self.0.marks.lock().unwrap_or_else(|e| e.into_inner());
        if marks.len() < 2 {
            return 0.0;
        }
        let delta = marks.back().unwrap() - marks.front().unwrap();
        let span = (marks.len() - 1) as u64 * self.0.window_seconds;
        delta as f64 / span as f64
    }
}

/// A registered gauge. Cloning shares the underlying series.
#[derive(Debug, Clone)]
pub struct GaugeHandle(Arc<GaugeCore>);

impl GaugeHandle {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; fine for low-rate updates).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

/// A registered summary. Cloning shares the underlying series.
#[derive(Debug, Clone)]
pub struct SummaryHandle(Arc<SummaryCore>);

impl SummaryHandle {
    /// Records one sample into both the cumulative histogram and the
    /// current window slot. Lock-free.
    pub fn observe(&self, v: u64) {
        self.0.cumulative.record(v);
        let active = self.0.active.load(Ordering::Relaxed);
        self.0.ring[active].record(v);
    }

    /// Lifetime sample count.
    pub fn count(&self) -> u64 {
        self.0.cumulative.count()
    }

    /// Lifetime sample sum.
    pub fn sum(&self) -> u64 {
        self.0.cumulative.sum()
    }

    /// Lifetime quantile (see [`Histogram::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.cumulative.quantile(q)
    }

    /// Quantile over the sliding window: the retained completed windows
    /// plus the current partial one, merged on the fly.
    pub fn windowed_quantile(&self, q: f64) -> u64 {
        let parts: Vec<&Histogram> = self.0.ring.iter().collect();
        Histogram::merged_quantile(&parts, q)
    }

    /// Sample count inside the sliding window.
    pub fn windowed_count(&self) -> u64 {
        let parts: Vec<&Histogram> = self.0.ring.iter().collect();
        Histogram::merged_count(&parts)
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
fn escape_help(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders a label set as `{k="v",...}` with escaped values, or `""` when
/// empty. Labels render in the order given (callers pass a fixed order, so
/// series keys — and therefore render order — are stable).
fn label_string(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, &mut out);
        out.push('"');
    }
    out.push('}');
    out
}

/// Merges a series' base label string with extra labels (used for summary
/// `quantile` labels).
fn label_string_with(base: &str, extra: &[(&str, &str)]) -> String {
    if extra.is_empty() {
        return base.to_string();
    }
    let extra_str = label_string(extra);
    if base.is_empty() {
        return extra_str;
    }
    // `{a="x"}` + `{q="y"}` → `{a="x",q="y"}`
    format!("{},{}", &base[..base.len() - 1], &extra_str[1..])
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The metrics registry. Cheap to share via `Arc`; instrument handles stay
/// valid for the registry's lifetime.
#[derive(Debug)]
pub struct Registry {
    config: RegistryConfig,
    families: Mutex<BTreeMap<String, Family>>,
    last_advance: Mutex<Instant>,
    advances: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new(RegistryConfig::default())
    }
}

impl Registry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        let config = RegistryConfig {
            windows: config.windows.max(1),
            window_seconds: config.window_seconds.max(1),
            ..config
        };
        Registry {
            config,
            families: Mutex::new(BTreeMap::new()),
            last_advance: Mutex::new(Instant::now()),
            advances: AtomicU64::new(0),
        }
    }

    /// Number of `advance()` calls so far (each one is a window boundary).
    pub fn advances(&self) -> u64 {
        self.advances.load(Ordering::Relaxed)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce(&RegistryConfig) -> Instrument,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
            assert!(
                *k != "quantile",
                "label name 'quantile' is reserved (summary {name})"
            );
        }
        let key = label_string(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as {}",
            family.kind.as_str()
        );
        match family
            .series
            .entry(key)
            .or_insert_with(|| make(&self.config))
        {
            Instrument::Counter(c) => Instrument::Counter(c.clone()),
            Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
            Instrument::Summary(s) => Instrument::Summary(s.clone()),
        }
    }

    /// Registers (or fetches, if already registered with the same labels) a
    /// monotonic counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterHandle {
        match self.register(name, help, labels, Kind::Counter, |cfg| {
            Instrument::Counter(Arc::new(CounterCore {
                total: AtomicU64::new(0),
                marks: Mutex::new(VecDeque::with_capacity(cfg.windows + 1)),
                window_seconds: cfg.window_seconds,
            }))
        }) {
            Instrument::Counter(c) => CounterHandle(c),
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        match self.register(name, help, labels, Kind::Gauge, |_| {
            Instrument::Gauge(Arc::new(GaugeCore {
                bits: AtomicU64::new(0f64.to_bits()),
            }))
        }) {
            Instrument::Gauge(g) => GaugeHandle(g),
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) a summary.
    pub fn summary(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> SummaryHandle {
        match self.register(name, help, labels, Kind::Summary, |cfg| {
            Instrument::Summary(Arc::new(SummaryCore {
                cumulative: Histogram::new(),
                ring: (0..cfg.windows + 1).map(|_| Histogram::new()).collect(),
                active: AtomicUsize::new(0),
            }))
        }) {
            Instrument::Summary(s) => SummaryHandle(s),
            _ => unreachable!(),
        }
    }

    /// Closes the current window on every instrument: counters capture
    /// their total as a boundary mark, summaries rotate their ring onto a
    /// freshly reset slot. Call this manually in tests; serving code can
    /// let [`Registry::tick`] drive it from wall time.
    pub fn advance(&self) {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        for family in families.values() {
            for inst in family.series.values() {
                match inst {
                    Instrument::Counter(c) => {
                        let mut marks = c.marks.lock().unwrap_or_else(|e| e.into_inner());
                        marks.push_back(c.total.load(Ordering::Relaxed));
                        while marks.len() > self.config.windows + 1 {
                            marks.pop_front();
                        }
                    }
                    Instrument::Summary(s) => {
                        let next = (s.active.load(Ordering::Relaxed) + 1) % s.ring.len();
                        s.ring[next].reset();
                        s.active.store(next, Ordering::Relaxed);
                    }
                    Instrument::Gauge(_) => {}
                }
            }
        }
        self.advances.fetch_add(1, Ordering::Relaxed);
    }

    /// Advances if `auto_advance` is on and a window's worth of wall time
    /// has passed since the last boundary. Cheap when it does nothing; call
    /// it opportunistically from serving loops.
    pub fn tick(&self) {
        if !self.config.auto_advance {
            return;
        }
        {
            let mut last = self.last_advance.lock().unwrap_or_else(|e| e.into_inner());
            if last.elapsed().as_secs() < self.config.window_seconds {
                return;
            }
            *last = Instant::now();
        }
        self.advance();
    }

    /// Renders every registered instrument in Prometheus text exposition
    /// format: families sorted by name, series sorted by label string,
    /// `# HELP` and `# TYPE` preceding each family's samples. Byte-stable
    /// for a fixed sequence of updates and advances.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::with_capacity(1024);
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            escape_help(&family.help, &mut out);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {} {}", name, family.kind.as_str());
            for (labels, inst) in family.series.iter() {
                match inst {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.total.load(Ordering::Relaxed));
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{labels} {}",
                            f64::from_bits(g.bits.load(Ordering::Relaxed))
                        );
                    }
                    Instrument::Summary(s) => {
                        let parts: Vec<&Histogram> = s.ring.iter().collect();
                        for q in SUMMARY_QUANTILES {
                            let ls = label_string_with(labels, &[("quantile", &format!("{q}"))]);
                            let _ = writeln!(
                                out,
                                "{name}{ls} {}",
                                Histogram::merged_quantile(&parts, q)
                            );
                        }
                        let _ = writeln!(out, "{name}_sum{labels} {}", s.cumulative.sum());
                        let _ = writeln!(out, "{name}_count{labels} {}", s.cumulative.count());
                    }
                }
            }
        }
        out
    }
}

/// One parsed sample line: metric name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name as it appeared on the line (including `_sum`/`_count`).
    pub name: String,
    /// Label pairs in line order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    // `s` is the text between `{` and `}`.
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value not quoted near {rest:?}"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, '\\')) => value.push('\\'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {rest:?}"))?;
        labels.push((name.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err("trailing comma in label set".to_string());
            }
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

fn parse_sample_line(line: &str) -> Result<Sample, String> {
    // name[{labels}] value
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value on line {line:?}"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("unparseable value {value:?} on {line:?}"))?;
    let (name, labels) = match name_labels.find('{') {
        Some(open) => {
            let close = name_labels
                .rfind('}')
                .filter(|&c| c == name_labels.len() - 1)
                .ok_or_else(|| format!("unterminated label set on {line:?}"))?;
            (
                &name_labels[..open],
                parse_labels(&name_labels[open + 1..close])?,
            )
        }
        None => (name_labels, Vec::new()),
    };
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?} on {line:?}"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses every sample line of an exposition body (comments and blank
/// lines skipped). Errors on the first malformed line.
pub fn parse_samples(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample_line(line)?);
    }
    Ok(out)
}

/// Checks exposition well-formedness: every non-comment line parses as a
/// sample, `# TYPE` lines carry a known type and precede their family's
/// samples, no family is declared twice, and the body ends with a newline.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Ok(());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if parts.next().is_some() {
                return Err(format!("malformed TYPE line: {line:?}"));
            }
            if !valid_metric_name(name) {
                return Err(format!("invalid metric name in TYPE line: {line:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("unknown type {kind:?} on {line:?}"));
            }
            if typed.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("family {name:?} declared twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let sample = parse_sample_line(line)?;
        // Summary _sum/_count legs belong to the base family declaration.
        let base = sample
            .name
            .strip_suffix("_sum")
            .or_else(|| sample.name.strip_suffix("_count"))
            .filter(|b| typed.get(*b).map(String::as_str) == Some("summary"));
        let family = base.unwrap_or(&sample.name);
        if !typed.contains_key(family) {
            return Err(format!(
                "sample {:?} precedes (or lacks) its TYPE declaration",
                sample.name
            ));
        }
    }
    Ok(())
}

/// Finds the first sample matching `name` whose labels include every pair
/// in `labels` (extra labels on the sample are fine). Returns `None` on
/// parse failure or no match.
pub fn find_sample(text: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let samples = parse_samples(text).ok()?;
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_registry() -> Registry {
        Registry::new(RegistryConfig {
            windows: 3,
            window_seconds: 10,
            auto_advance: false,
        })
    }

    #[test]
    fn counter_totals_and_reregistration_share_state() {
        let r = test_registry();
        let a = r.counter(
            "redistd_requests_total",
            "Requests.",
            &[("outcome", "planned")],
        );
        let b = r.counter(
            "redistd_requests_total",
            "Requests.",
            &[("outcome", "planned")],
        );
        a.inc();
        b.add(4);
        assert_eq!(a.value(), 5);
        assert_eq!(b.value(), 5);
        // A different label set is a different series.
        let c = r.counter(
            "redistd_requests_total",
            "Requests.",
            &[("outcome", "shed")],
        );
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_rate_spans_completed_windows() {
        let r = test_registry();
        let c = r.counter("reqs_total", "Requests.", &[]);
        assert_eq!(c.rate(), 0.0, "no boundaries yet");
        c.add(100);
        r.advance(); // mark: 100
        assert_eq!(c.rate(), 0.0, "one boundary is not a window");
        c.add(50);
        r.advance(); // mark: 150
        assert_eq!(c.rate(), 5.0, "50 events over one 10s window");
        c.add(30);
        r.advance(); // marks: 100, 150, 180
        assert_eq!(c.rate(), 4.0, "80 events over two windows");
        // Marks are capped at windows+1: push beyond and the oldest drops.
        r.advance();
        r.advance(); // marks now: 150, 180, 180, 180
        assert_eq!(c.rate(), 1.0, "30 events over three windows");
    }

    #[test]
    fn gauge_set_add_roundtrip() {
        let r = test_registry();
        let g = r.gauge("queue_depth", "Depth.", &[]);
        assert_eq!(g.value(), 0.0);
        g.set(3.5);
        g.add(1.5);
        assert_eq!(g.value(), 5.0);
        g.add(-5.0);
        assert_eq!(g.value(), 0.0);
    }

    #[test]
    fn summary_windowed_quantiles_age_out() {
        let r = test_registry();
        let s = r.summary("lat_us", "Latency.", &[]);
        for v in 1..=100u64 {
            s.observe(v);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        assert_eq!(s.windowed_quantile(0.99), s.quantile(0.99));
        // Rotate past every retained window: windowed view drains,
        // cumulative view keeps everything.
        for _ in 0..4 {
            r.advance();
        }
        assert_eq!(s.windowed_count(), 0);
        assert_eq!(s.windowed_quantile(0.99), 0);
        assert_eq!(s.count(), 100);
        s.observe(7);
        assert_eq!(s.windowed_count(), 1);
        assert_eq!(s.windowed_quantile(0.5), 7);
    }

    #[test]
    fn render_is_golden() {
        let r = test_registry();
        let c = r.counter(
            "app_requests_total",
            "Total requests.",
            &[("outcome", "ok")],
        );
        let c2 = r.counter(
            "app_requests_total",
            "Total requests.",
            &[("outcome", "shed")],
        );
        let g = r.gauge("app_queue_depth", "Current queue depth.", &[]);
        let s = r.summary("app_latency_us", "Request latency.", &[]);
        c.add(12);
        c2.inc();
        g.set(4.0);
        for v in 1..=100u64 {
            s.observe(v);
        }
        let expected = "\
# HELP app_latency_us Request latency.
# TYPE app_latency_us summary
app_latency_us{quantile=\"0.5\"} 51
app_latency_us{quantile=\"0.9\"} 91
app_latency_us{quantile=\"0.99\"} 99
app_latency_us_sum 5050
app_latency_us_count 100
# HELP app_queue_depth Current queue depth.
# TYPE app_queue_depth gauge
app_queue_depth 4
# HELP app_requests_total Total requests.
# TYPE app_requests_total counter
app_requests_total{outcome=\"ok\"} 12
app_requests_total{outcome=\"shed\"} 1
";
        assert_eq!(r.render(), expected);
        // Rendering is repeatable byte-for-byte.
        assert_eq!(r.render(), expected);
        validate_exposition(&r.render()).expect("golden render validates");
    }

    #[test]
    fn label_values_escape_and_roundtrip() {
        let r = test_registry();
        let tricky = "a\\b\"c\nd";
        let c = r.counter("esc_total", "Escapes.", &[("path", tricky)]);
        c.add(3);
        let text = r.render();
        assert!(
            text.contains("esc_total{path=\"a\\\\b\\\"c\\nd\"} 3"),
            "escaped render: {text}"
        );
        validate_exposition(&text).expect("escaped exposition validates");
        let samples = parse_samples(&text).unwrap();
        let s = samples.iter().find(|s| s.name == "esc_total").unwrap();
        assert_eq!(s.labels, vec![("path".to_string(), tricky.to_string())]);
        assert_eq!(
            find_sample(&text, "esc_total", &[("path", tricky)]),
            Some(3.0)
        );
    }

    #[test]
    fn find_sample_matches_subset_of_labels() {
        let text = "\
# TYPE x summary
x{shard=\"0\",quantile=\"0.5\"} 10
x{shard=\"1\",quantile=\"0.5\"} 20
x_sum 30
x_count 2
";
        validate_exposition(text).unwrap();
        assert_eq!(find_sample(text, "x", &[("shard", "1")]), Some(20.0));
        assert_eq!(
            find_sample(text, "x", &[("shard", "0"), ("quantile", "0.5")]),
            Some(10.0)
        );
        assert_eq!(find_sample(text, "x_count", &[]), Some(2.0));
        assert_eq!(find_sample(text, "x", &[("shard", "9")]), None);
        assert_eq!(find_sample(text, "nope", &[]), None);
    }

    #[test]
    fn validation_rejects_malformed_bodies() {
        for (body, why) in [
            ("no_type_line 1\n", "sample without TYPE"),
            ("# TYPE a counter\na 1", "missing trailing newline"),
            ("# TYPE a counter\na{x=\"1} 1\n", "unterminated label value"),
            ("# TYPE a counter\na 1 2 3\n", "junk after value"),
            ("# TYPE a counter\na{9bad=\"v\"} 1\n", "bad label name"),
            ("# TYPE a frobnicator\na 1\n", "unknown type"),
            (
                "# TYPE a counter\n# TYPE a counter\na 1\n",
                "family declared twice",
            ),
            ("# TYPE a counter\na nan-ish\n", "unparseable value"),
        ] {
            assert!(validate_exposition(body).is_err(), "should reject: {why}");
        }
        validate_exposition("").expect("empty body is fine");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = test_registry();
        r.counter("dual", "One.", &[]);
        r.gauge("dual", "Two.", &[]);
    }

    #[test]
    fn tick_is_inert_without_auto_advance() {
        let r = test_registry();
        r.tick();
        r.tick();
        assert_eq!(r.advances(), 0);
    }
}
