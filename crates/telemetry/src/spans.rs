//! Lightweight spans and instant events with thread-local collectors.
//!
//! A span is a begin/end pair bracketing a region of work; an instant is a
//! single point. Recording is gated by one global atomic: when disabled,
//! [`span`] returns an inert guard after a relaxed load and a branch — no
//! thread-local access, no allocation, no clock read. When enabled, events
//! accumulate in a per-thread buffer (no locking on the hot path); a
//! thread's buffer flushes into a global registry when the thread exits, so
//! after worker threads are joined [`drain_all`] sees everything.
//!
//! # Clocks
//!
//! Two clock modes ([`set_clock`]):
//!
//! * [`ClockMode::Wall`] (default) — microseconds since a process-wide
//!   epoch, the right choice for real traces viewed in Perfetto.
//! * [`ClockMode::Logical`] — a per-thread sequence number. Timestamps are
//!   then a pure function of the code path, so fixed-seed runs export
//!   byte-identical traces; the golden-file tests use this mode.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Kind of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Region start (Chrome trace `"B"`).
    Begin,
    /// Region end (Chrome trace `"E"`).
    End,
    /// A single point in time (Chrome trace `"i"`).
    Instant,
}

/// Maximum number of key/value pairs a [`SpanArgs`] can carry.
pub const MAX_ARGS: usize = 4;

/// A small, fixed-capacity set of `(key, u64)` pairs attached to an event.
///
/// Keys are `'static` and values are integers so that attaching arguments
/// never allocates — the correlation ids the serving and execution layers
/// attach (request id, execution slot, transfer endpoints) are all small
/// integers. Pairs beyond [`MAX_ARGS`] are silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanArgs {
    keys: [&'static str; MAX_ARGS],
    vals: [u64; MAX_ARGS],
    len: u8,
}

impl SpanArgs {
    /// Builds args from at most [`MAX_ARGS`] pairs (extras are dropped).
    pub fn new(pairs: &[(&'static str, u64)]) -> SpanArgs {
        let mut a = SpanArgs {
            keys: [""; MAX_ARGS],
            vals: [0; MAX_ARGS],
            len: 0,
        };
        for &(k, v) in pairs.iter().take(MAX_ARGS) {
            a.keys[a.len as usize] = k;
            a.vals[a.len as usize] = v;
            a.len += 1;
        }
        a
    }

    /// True when no pairs are attached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the attached `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        (0..self.len as usize).map(|i| (self.keys[i], self.vals[i]))
    }

    /// Value of `key`, if attached.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.iter().find_map(|(k, v)| (k == key).then_some(v))
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Static name of the span or instant.
    pub name: &'static str,
    /// Begin, end, or instant.
    pub phase: SpanPhase,
    /// Timestamp in microseconds — wall-clock since the process epoch, or
    /// the per-thread sequence number in logical mode.
    pub ts: f64,
    /// Recording thread (dense ids in first-use order).
    pub tid: u64,
    /// Correlation arguments (empty for most events).
    pub args: SpanArgs,
}

/// Timestamp source for recorded events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Microseconds since the process epoch (default).
    Wall,
    /// Per-thread sequence numbers; deterministic for fixed-seed runs.
    Logical,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static LOGICAL: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static GLOBAL: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct LocalSpans {
    tid: u64,
    logical_now: u64,
    events: Vec<SpanEvent>,
}

impl LocalSpans {
    fn new() -> Self {
        LocalSpans {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            logical_now: 0,
            events: Vec::new(),
        }
    }

    fn record(&mut self, name: &'static str, phase: SpanPhase, args: SpanArgs) {
        let ts = if LOGICAL.load(Ordering::Relaxed) {
            let t = self.logical_now;
            self.logical_now += 1;
            t as f64
        } else {
            epoch().elapsed().as_secs_f64() * 1e6
        };
        self.events.push(SpanEvent {
            name,
            phase,
            ts,
            tid: self.tid,
            args,
        });
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            if let Ok(mut g) = GLOBAL.lock() {
                g.append(&mut self.events);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSpans> = RefCell::new(LocalSpans::new());
}

/// Turns span recording on (process-wide).
pub fn enable() {
    // Pin the epoch before the first event so wall timestamps start small.
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span recording off (process-wide). Open [`SpanGuard`]s still
/// record their end event, keeping traces balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether span recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Selects the timestamp source. Call from a quiescent point (mixing modes
/// within one trace produces meaningless timelines, though still balanced).
pub fn set_clock(mode: ClockMode) {
    LOGICAL.store(mode == ClockMode::Logical, Ordering::Relaxed);
}

fn record(name: &'static str, phase: SpanPhase, args: SpanArgs) {
    // Ignore events during thread teardown (TLS already destroyed).
    let _ = LOCAL.try_with(|l| l.borrow_mut().record(name, phase, args));
}

/// RAII guard for a span: records `Begin` on creation (when enabled) and
/// the matching `End` on drop. Inert — no allocation, no TLS — when
/// recording was disabled at creation.
#[must_use = "a span guard records its end when dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            record(self.name, SpanPhase::End, SpanArgs::default());
        }
    }
}

/// Opens a span named `name`. `name` must be `'static` so that recording
/// never allocates.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span carrying correlation arguments on its begin event — e.g.
/// `span_with("redistd.plan", &[("rid", request_id)])`. The matching end
/// event carries no args (the begin's args identify the span).
#[inline]
pub fn span_with(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            active: false,
        };
    }
    record(name, SpanPhase::Begin, SpanArgs::new(args));
    SpanGuard { name, active: true }
}

/// Records an instant event (a single point in the timeline); no-op when
/// disabled.
#[inline]
pub fn instant(name: &'static str) {
    instant_with(name, &[]);
}

/// Records an instant event carrying correlation arguments; no-op when
/// disabled.
#[inline]
pub fn instant_with(name: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    record(name, SpanPhase::Instant, SpanArgs::new(args));
}

/// Takes (and clears) the calling thread's recorded events. Unaffected by
/// other threads — single-threaded tests and the golden-file exports use
/// this.
pub fn drain_thread() -> Vec<SpanEvent> {
    LOCAL
        .try_with(|l| std::mem::take(&mut l.borrow_mut().events))
        .unwrap_or_default()
}

/// Takes (and clears) every flushed event plus the calling thread's buffer,
/// sorted by timestamp (stable, so per-thread order is preserved). Call
/// after joining worker threads for a complete trace.
pub fn drain_all() -> Vec<SpanEvent> {
    let mut events = GLOBAL
        .lock()
        .map(|mut g| std::mem::take(&mut *g))
        .unwrap_or_default();
    events.extend(drain_thread());
    events.sort_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal));
    events
}

/// Discards all recorded events (global registry and the calling thread's
/// buffer) and restarts the calling thread's logical clock at zero. Other
/// live threads' buffers are untouched; call from a quiescent point.
pub fn reset() {
    if let Ok(mut g) = GLOBAL.lock() {
        g.clear();
    }
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        l.events.clear();
        l.logical_now = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Spans are process-global; tests that toggle them must not overlap.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = LOCK.lock().unwrap();
        disable();
        drain_thread();
        {
            let _s = span("quiet");
            instant("also quiet");
        }
        assert!(drain_thread().is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            instant("tick");
        }
        disable();
        let ev = drain_thread();
        let names: Vec<(&str, SpanPhase)> = ev.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            names,
            vec![
                ("outer", SpanPhase::Begin),
                ("inner", SpanPhase::Begin),
                ("inner", SpanPhase::End),
                ("tick", SpanPhase::Instant),
                ("outer", SpanPhase::End),
            ]
        );
        for w in ev.windows(2) {
            assert!(w[0].ts <= w[1].ts, "timestamps must be monotone");
        }
    }

    #[test]
    fn logical_clock_is_deterministic() {
        let _g = LOCK.lock().unwrap();
        set_clock(ClockMode::Logical);
        enable();
        let run = || {
            reset();
            {
                let _s = span("a");
                instant("b");
            }
            drain_thread()
        };
        let e1 = run();
        let e2 = run();
        disable();
        set_clock(ClockMode::Wall);
        assert_eq!(e1, e2);
        assert_eq!(e1[0].ts, 0.0);
        assert_eq!(e1[1].ts, 1.0);
        assert_eq!(e1[2].ts, 2.0);
    }

    #[test]
    fn args_attach_to_begin_and_instant_events() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        {
            let _s = span_with("labelled", &[("rid", 7), ("slot", 3)]);
            instant_with("point", &[("edge", 9)]);
        }
        disable();
        let ev = drain_thread();
        assert_eq!(ev[0].args.get("rid"), Some(7));
        assert_eq!(ev[0].args.get("slot"), Some(3));
        assert_eq!(ev[0].args.get("missing"), None);
        assert_eq!(ev[1].args.get("edge"), Some(9));
        // End events carry no args; the begin identifies the span.
        assert!(ev[2].args.is_empty());
        // Pairs beyond MAX_ARGS are dropped, not panicked on.
        let a = SpanArgs::new(&[("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5)]);
        assert_eq!(a.iter().count(), MAX_ARGS);
        assert_eq!(a.get("e"), None);
    }

    #[test]
    fn guard_open_across_disable_still_balances() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        let s = span("crossing");
        disable();
        drop(s);
        let ev = drain_thread();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].phase, SpanPhase::End);
    }

    #[test]
    fn worker_thread_events_flush_to_drain_all() {
        let _g = LOCK.lock().unwrap();
        reset();
        enable();
        std::thread::spawn(|| {
            let _s = span("worker");
        })
        .join()
        .unwrap();
        let _s = span("main");
        drop(_s);
        disable();
        let ev = drain_all();
        assert!(ev.iter().any(|e| e.name == "worker"));
        assert!(ev.iter().any(|e| e.name == "main"));
        assert!(drain_all().is_empty(), "drain_all clears the registry");
    }
}
