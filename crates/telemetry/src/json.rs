//! Minimal recursive-descent JSON parser.
//!
//! Exists so the trace-export tests (and downstream golden tests) can
//! validate emitted JSON without an external crate — the workspace vendors
//! only offline stubs. Supports the full JSON grammar the exporters emit:
//! objects, arrays, strings with escapes, numbers, booleans, null. Not a
//! general-purpose parser: numbers go through `f64`, and very deep nesting
//! is rejected rather than handled iteratively.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if `self` is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value map, if `self` is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses `input` as a single JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        };
        self.depth -= 1;
        v
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \u-escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control char at byte {}", self.pos))
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via the str view).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("3.25").unwrap(), Value::Num(3.25));
        assert_eq!(parse("-17").unwrap(), Value::Num(-17.0));
        assert_eq!(parse("1e3").unwrap(), Value::Num(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.as_obj().unwrap().len(), 2);
    }

    #[test]
    fn resolves_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn resolves_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
