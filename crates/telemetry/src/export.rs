//! Exporters: Chrome trace-event JSON and human-readable summary tables.
//!
//! [`chrome_trace`] serialises span events into the Chrome trace-event
//! format (the JSON-array flavour), which Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing` load directly. [`span_summary`] and
//! [`counter_summary`] render plain-text tables for terminal output.
//!
//! Output is deterministic given deterministic input: events are emitted in
//! slice order, thread ids are remapped densely in first-appearance order,
//! and timestamps are formatted with a fixed precision — so a logical-clock
//! trace of a fixed-seed run is byte-identical across runs and machines.

use crate::counters::Snapshot;
use crate::spans::{SpanEvent, SpanPhase};
use std::collections::HashMap;
use std::fmt::Write as _;

impl SpanPhase {
    fn chrome_ph(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
        }
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialises `events` as Chrome trace-event JSON.
///
/// Events keep their slice order; thread ids are renumbered densely from 0
/// in first-appearance order so the output does not depend on how many
/// threads the process created before tracing started. Timestamps are
/// printed with three decimals (nanosecond resolution under the microsecond
/// unit), which keeps output byte-stable for logical-clock traces.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut tid_map: HashMap<u64, u64> = HashMap::new();
    let mut out = String::with_capacity(64 + events.len() * 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        let next = tid_map.len() as u64;
        let tid = *tid_map.entry(e.tid).or_insert(next);
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json(e.name, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
            e.phase.chrome_ph(),
            e.ts,
            tid
        );
        if e.phase == SpanPhase::Instant {
            // Thread-scoped instants render as small arrows in Perfetto.
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(k, &mut out);
                let _ = write!(out, "\":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a per-span-name summary table: call count and inclusive time
/// (sum of begin→end durations, matched per thread with a stack; unmatched
/// events are counted but contribute no time). Columns are sorted by
/// inclusive time, ties broken by name.
pub fn span_summary(events: &[SpanEvent]) -> String {
    struct Stat {
        count: u64,
        total: f64,
    }
    let mut stats: HashMap<&'static str, Stat> = HashMap::new();
    let mut stacks: HashMap<u64, Vec<(&'static str, f64)>> = HashMap::new();
    for e in events {
        match e.phase {
            SpanPhase::Begin => {
                stacks.entry(e.tid).or_default().push((e.name, e.ts));
                stats
                    .entry(e.name)
                    .or_insert(Stat {
                        count: 0,
                        total: 0.0,
                    })
                    .count += 1;
            }
            SpanPhase::End => {
                let stack = stacks.entry(e.tid).or_default();
                // Pop to the matching begin; tolerates truncated traces.
                if let Some(pos) = stack.iter().rposition(|&(n, _)| n == e.name) {
                    let (_, begin_ts) = stack.remove(pos);
                    stats
                        .entry(e.name)
                        .or_insert(Stat {
                            count: 0,
                            total: 0.0,
                        })
                        .total += e.ts - begin_ts;
                }
            }
            SpanPhase::Instant => {
                stats
                    .entry(e.name)
                    .or_insert(Stat {
                        count: 0,
                        total: 0.0,
                    })
                    .count += 1;
            }
        }
    }
    let mut rows: Vec<(&'static str, Stat)> = stats.into_iter().collect();
    rows.sort_by(|a, b| {
        b.1.total
            .partial_cmp(&a.1.total)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(b.0))
    });
    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>10}  {:>14}",
        "span", "count", "total_us"
    );
    for (name, s) in &rows {
        let _ = writeln!(out, "{:<name_w$}  {:>10}  {:>14.3}", name, s.count, s.total);
    }
    out
}

/// Renders a counter snapshot as an aligned two-column table in
/// [`crate::Counter::ALL`] order (fixed order keeps diffs readable).
pub fn counter_summary(snapshot: &Snapshot) -> String {
    let name_w = snapshot
        .iter()
        .map(|(c, _)| c.key().len())
        .chain(std::iter::once("counter".len()))
        .max()
        .unwrap_or(7);
    let mut out = String::new();
    let _ = writeln!(out, "{:<name_w$}  {:>14}", "counter", "value");
    for (c, v) in snapshot.iter() {
        let _ = writeln!(out, "{:<name_w$}  {:>14}", c.key(), v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(name: &'static str, phase: SpanPhase, ts: f64, tid: u64) -> SpanEvent {
        SpanEvent {
            name,
            phase,
            ts,
            tid,
            args: crate::spans::SpanArgs::default(),
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let events = vec![
            ev("plan", SpanPhase::Begin, 0.0, 42),
            ev("peel", SpanPhase::Begin, 1.0, 42),
            ev("peel", SpanPhase::End, 2.0, 42),
            ev("note", SpanPhase::Instant, 2.5, 7),
            ev("plan", SpanPhase::End, 3.0, 42),
        ];
        let out = chrome_trace(&events);
        let v = json::parse(&out).expect("trace must parse as JSON");
        let arr = v
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents array");
        assert_eq!(arr.len(), 5);
        assert_eq!(
            arr[0].get("name").and_then(json::Value::as_str),
            Some("plan")
        );
        assert_eq!(arr[0].get("ph").and_then(json::Value::as_str), Some("B"));
        assert_eq!(arr[0].get("ts").and_then(json::Value::as_f64), Some(0.0));
        // tids are remapped densely in first-appearance order: 42 -> 0, 7 -> 1.
        assert_eq!(arr[0].get("tid").and_then(json::Value::as_f64), Some(0.0));
        assert_eq!(arr[3].get("tid").and_then(json::Value::as_f64), Some(1.0));
        assert_eq!(arr[3].get("s").and_then(json::Value::as_str), Some("t"));
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let events = vec![ev("a\"b\\c", SpanPhase::Instant, 0.0, 0)];
        let out = chrome_trace(&events);
        let v = json::parse(&out).expect("escaped trace must parse");
        let arr = v.get("traceEvents").and_then(json::Value::as_arr).unwrap();
        assert_eq!(
            arr[0].get("name").and_then(json::Value::as_str),
            Some("a\"b\\c")
        );
    }

    #[test]
    fn chrome_trace_renders_args_objects() {
        let mut e = ev("redistd.plan", SpanPhase::Begin, 0.0, 0);
        e.args = crate::spans::SpanArgs::new(&[("rid", 42), ("slot", 3)]);
        let out = chrome_trace(&[e, ev("redistd.plan", SpanPhase::End, 1.0, 0)]);
        let v = json::parse(&out).expect("trace with args must parse");
        let arr = v.get("traceEvents").and_then(json::Value::as_arr).unwrap();
        let args = arr[0].get("args").expect("begin event carries args");
        assert_eq!(args.get("rid").and_then(json::Value::as_f64), Some(42.0));
        assert_eq!(args.get("slot").and_then(json::Value::as_f64), Some(3.0));
        // Arg-free events omit the object entirely (byte-stable goldens).
        assert!(arr[1].get("args").is_none());
    }

    #[test]
    fn chrome_trace_of_empty_slice_is_valid() {
        let out = chrome_trace(&[]);
        let v = json::parse(&out).unwrap();
        assert_eq!(
            v.get("traceEvents")
                .and_then(json::Value::as_arr)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn span_summary_sums_inclusive_time() {
        let events = vec![
            ev("outer", SpanPhase::Begin, 0.0, 0),
            ev("inner", SpanPhase::Begin, 1.0, 0),
            ev("inner", SpanPhase::End, 3.0, 0),
            ev("outer", SpanPhase::End, 10.0, 0),
            ev("inner", SpanPhase::Begin, 20.0, 1),
            ev("inner", SpanPhase::End, 21.5, 1),
        ];
        let table = span_summary(&events);
        let outer_line = table.lines().find(|l| l.starts_with("outer")).unwrap();
        let inner_line = table.lines().find(|l| l.starts_with("inner")).unwrap();
        assert!(
            outer_line.contains("10.000"),
            "outer spans 0..10: {outer_line}"
        );
        assert!(
            inner_line.contains("3.500"),
            "inner spans 2 + 1.5: {inner_line}"
        );
        assert!(inner_line.contains('2'), "inner called twice: {inner_line}");
    }

    #[test]
    fn counter_summary_lists_every_counter() {
        let table = counter_summary(&Snapshot::default());
        for c in crate::Counter::ALL {
            assert!(table.contains(c.key()), "missing {}", c.key());
        }
    }
}
