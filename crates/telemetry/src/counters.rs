//! Deterministic work counters.
//!
//! Each counter measures *algorithmic* work — loop iterations, search
//! attempts, synthetic edges built — never time. On a fixed seed every
//! counted quantity is a pure function of the input, so two runs of the
//! same campaign produce byte-identical counter values, on any machine, at
//! any load. That makes the counters a wall-clock-free perf-regression
//! signal: `scripts/check.sh` replays a fixed-seed campaign and compares
//! against the checked-in `BENCH_counters.json`.
//!
//! # Model
//!
//! * A single global enable flag gates every increment: when disabled,
//!   [`add`]/[`incr`] cost one relaxed atomic load and a branch.
//! * Increments land in plain thread-local cells (no atomic RMW on the hot
//!   path). When a thread exits, its cells flush into global atomic totals.
//! * [`local_snapshot`] reads the calling thread's cells only — immune to
//!   concurrent threads, which is what tests should diff.
//!   [`global_snapshot`] adds the flushed totals of exited threads, which
//!   is what single-process tools report after joining their workers.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The work being counted. Every variant is deterministic for a fixed
/// input: none of them depends on time, scheduling or memory layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Hopcroft–Karp BFS/DFS phases (`hk_augment_to_maximum` loop turns).
    HkPhases,
    /// Kuhn augmenting-path searches started from a free left node.
    KuhnAttempts,
    /// Edges examined by augmenting-path DFS (Hopcroft–Karp and Kuhn).
    DfsEdgeVisits,
    /// Max–min bottleneck threshold probes (warm batches, descending-sweep
    /// steps and binary-search probes all count one each).
    ThresholdProbes,
    /// O(m) sorted-order merge passes repairing the engine's edge order.
    MergePasses,
    /// Full CSR adjacency (re)builds from a graph scan. The incremental
    /// engine performs exactly one per peeling run (at `begin`); every
    /// from-scratch matching call performs at least one. Zero growth across
    /// the peels of a run is the "no rebuilds after warm-up" guarantee.
    AdjRebuilds,
    /// Full O(n) clears of the epoch-stamped search scratch. These happen
    /// only when the 32-bit epoch wraps (once per ~4 billion searches), so
    /// any non-zero delta over a normal run is a regression: it means a
    /// per-search full-array clear crept back in.
    EpochResets,
    /// WRGP peels extracted (matchings subtracted from the regular graph).
    Peels,
    /// Filler edges added by regularisation (case 2 of Section 4.2.2).
    RegularizeFillerEdges,
    /// Pad edges added by regularisation (case 1 of Section 4.2.2).
    RegularizePadEdges,
    /// Progressive-filling rounds of the max–min fair allocator.
    FairshareRounds,
    /// Events processed by the flowsim loop (completions and breakpoints).
    FlowsimEvents,
    /// Threads arriving at an mpilite barrier.
    BarrierWaits,
    /// Planning requests admitted and served by the `redistd` serving layer
    /// (cache hits and misses both count; rejected requests do not).
    ServeRequests,
    /// Served requests answered from the plan cache without re-planning.
    ServeCacheHits,
    /// Requests rejected by admission control (queue full or matrix too
    /// large) before reaching a worker.
    ServeRejected,
    /// Transfer attempts re-issued by the execution runtime after a
    /// transient fault (each re-attempt counts one).
    ExecRetries,
    /// Residual re-planning rounds run by the execution runtime (node drop,
    /// retry exhaustion or step timeout each force at most one round).
    ExecReplans,
    /// Fault events injected into an execution (transient failures, node
    /// drops and step slowdowns all count one each).
    ExecFaultsInjected,
    /// Steps spliced into a running schedule by residual re-planning.
    ExecStepsSpliced,
    /// Node-to-block assignments performed by the hierarchical planner's
    /// partition pass (initial placement and every affinity-sweep move
    /// count one each).
    HierPartitionAssigns,
    /// Block sub-instances planned by the hierarchical planner (one per
    /// active block pair).
    HierBlockPlans,
    /// Steps emitted by the hierarchical planner's composition phase.
    HierComposeSteps,
    /// Delta replans absorbed entirely by level-0 schedule repair (trims
    /// and slack insertions; no peeling ran).
    DeltaRepairs,
    /// Delta replans that fell back to a bounded re-peel of the residual
    /// increase graph (level 1 of the repair ladder).
    DeltaRePeels,
    /// Delta replans that fell all the way back to a cold plan of the
    /// post-delta instance (level 2, including cost-ceiling rejections).
    DeltaColdFallbacks,
    /// Delta-planning sessions opened (one per `DeltaPlanner` built from a
    /// cold plan, locally or via a `redistd` OPEN frame).
    DeltaSessionsOpened,
    /// Per-bottleneck preemption bounds derived from a topology (one per
    /// backbone link each time a topology's `k_b` values are computed).
    TopoDeriveK,
    /// Traffic-matrix messages routed to their governing backbone by the
    /// topology planning adapter (one per non-zero cell).
    TopoRouteMessages,
    /// Steps emitted by the topology adapter's per-backbone schedule
    /// composition.
    TopoComposeSteps,
}

/// Number of distinct counters.
pub const COUNTER_COUNT: usize = 30;

impl Counter {
    /// Every counter, in declaration (and export) order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::HkPhases,
        Counter::KuhnAttempts,
        Counter::DfsEdgeVisits,
        Counter::ThresholdProbes,
        Counter::MergePasses,
        Counter::AdjRebuilds,
        Counter::EpochResets,
        Counter::Peels,
        Counter::RegularizeFillerEdges,
        Counter::RegularizePadEdges,
        Counter::FairshareRounds,
        Counter::FlowsimEvents,
        Counter::BarrierWaits,
        Counter::ServeRequests,
        Counter::ServeCacheHits,
        Counter::ServeRejected,
        Counter::ExecRetries,
        Counter::ExecReplans,
        Counter::ExecFaultsInjected,
        Counter::ExecStepsSpliced,
        Counter::HierPartitionAssigns,
        Counter::HierBlockPlans,
        Counter::HierComposeSteps,
        Counter::DeltaRepairs,
        Counter::DeltaRePeels,
        Counter::DeltaColdFallbacks,
        Counter::DeltaSessionsOpened,
        Counter::TopoDeriveK,
        Counter::TopoRouteMessages,
        Counter::TopoComposeSteps,
    ];

    /// Stable snake_case key used in JSON exports and summary tables.
    pub fn key(self) -> &'static str {
        match self {
            Counter::HkPhases => "hk_phases",
            Counter::KuhnAttempts => "kuhn_attempts",
            Counter::DfsEdgeVisits => "dfs_edge_visits",
            Counter::ThresholdProbes => "threshold_probes",
            Counter::MergePasses => "merge_passes",
            Counter::AdjRebuilds => "adj_rebuilds",
            Counter::EpochResets => "epoch_resets",
            Counter::Peels => "peels",
            Counter::RegularizeFillerEdges => "regularize_filler_edges",
            Counter::RegularizePadEdges => "regularize_pad_edges",
            Counter::FairshareRounds => "fairshare_rounds",
            Counter::FlowsimEvents => "flowsim_events",
            Counter::BarrierWaits => "barrier_waits",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeRejected => "serve_rejected",
            Counter::ExecRetries => "exec_retries",
            Counter::ExecReplans => "exec_replans",
            Counter::ExecFaultsInjected => "exec_faults_injected",
            Counter::ExecStepsSpliced => "exec_steps_spliced",
            Counter::HierPartitionAssigns => "hier_partition",
            Counter::HierBlockPlans => "hier_block_plans",
            Counter::HierComposeSteps => "hier_compose",
            Counter::DeltaRepairs => "delta_repairs",
            Counter::DeltaRePeels => "delta_repeels",
            Counter::DeltaColdFallbacks => "delta_cold_fallbacks",
            Counter::DeltaSessionsOpened => "delta_sessions_opened",
            Counter::TopoDeriveK => "topo_derive_k",
            Counter::TopoRouteMessages => "topo_route",
            Counter::TopoComposeSteps => "topo_compose",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global totals, fed by thread-local cells when their thread exits.
static GLOBAL: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];

struct LocalCounters {
    vals: [Cell<u64>; COUNTER_COUNT],
}

impl Drop for LocalCounters {
    fn drop(&mut self) {
        for (cell, total) in self.vals.iter().zip(GLOBAL.iter()) {
            let v = cell.get();
            if v != 0 {
                total.fetch_add(v, Ordering::Relaxed);
            }
        }
    }
}

thread_local! {
    static LOCAL: LocalCounters = const {
        LocalCounters { vals: [const { Cell::new(0) }; COUNTER_COUNT] }
    };
}

/// Turns counting on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns counting off (process-wide). Accumulated values are kept.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether counting is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to `c` on the calling thread. No-op (one relaxed load and a
/// branch, no TLS access) when counting is disabled.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    // Ignore increments during thread teardown, when the TLS slot is gone.
    let _ = LOCAL.try_with(|l| {
        let cell = &l.vals[c as usize];
        cell.set(cell.get() + n);
    });
}

/// Adds 1 to `c` on the calling thread; no-op when disabled.
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// A point-in-time copy of counter values. Obtain one via
/// [`local_snapshot`] or [`global_snapshot`]; subtract snapshots with
/// [`Snapshot::delta`] to isolate one region's work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    vals: [u64; COUNTER_COUNT],
}

impl Snapshot {
    /// Value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// `self - earlier`, counter by counter (counters are monotone while a
    /// thread runs, so the subtraction is saturating only defensively).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for i in 0..COUNTER_COUNT {
            out.vals[i] = self.vals[i].saturating_sub(earlier.vals[i]);
        }
        out
    }

    /// Adds `other` into `self`, counter by counter. This is the merge the
    /// parallel planners use: each worker measures its own instances with
    /// [`local_snapshot`] deltas (exact, because counters are thread-local)
    /// and the coordinator merges the per-worker deltas into one report.
    pub fn merge(&mut self, other: &Snapshot) {
        for i in 0..COUNTER_COUNT {
            self.vals[i] = self.vals[i].saturating_add(other.vals[i]);
        }
    }

    /// Sums any number of snapshots (e.g. per-instance deltas from a batch
    /// run) into one. The sum over a batch is independent of how instances
    /// were distributed over worker threads.
    pub fn sum<'a, I: IntoIterator<Item = &'a Snapshot>>(parts: I) -> Snapshot {
        let mut out = Snapshot::default();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// Iterates `(counter, value)` pairs in [`Counter::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c, self.get(c)))
    }
}

/// Snapshot of the calling thread's counters only. Unaffected by other
/// threads, so tests diff this around the region they measure.
pub fn local_snapshot() -> Snapshot {
    let mut s = Snapshot::default();
    let _ = LOCAL.try_with(|l| {
        for (v, cell) in s.vals.iter_mut().zip(l.vals.iter()) {
            *v = cell.get();
        }
    });
    s
}

/// Snapshot of the global totals (threads that have exited) plus the
/// calling thread's cells. Call after joining worker threads for a full
/// process view; live threads' unflushed work is not included.
pub fn global_snapshot() -> Snapshot {
    let mut s = local_snapshot();
    for (v, total) in s.vals.iter_mut().zip(GLOBAL.iter()) {
        *v += total.load(Ordering::Relaxed);
    }
    s
}

/// Zeroes the global totals and the calling thread's cells. Other live
/// threads' cells are untouched; call from a quiescent point.
pub fn reset() {
    for total in GLOBAL.iter() {
        total.store(0, Ordering::Relaxed);
    }
    let _ = LOCAL.try_with(|l| {
        for cell in l.vals.iter() {
            cell.set(0);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Counters are process-global; tests that toggle them must not overlap.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_increments_are_dropped() {
        let _g = LOCK.lock().unwrap();
        disable();
        let before = local_snapshot();
        add(Counter::HkPhases, 100);
        incr(Counter::Peels);
        assert_eq!(local_snapshot().delta(&before), Snapshot::default());
    }

    #[test]
    fn enabled_increments_accumulate() {
        let _g = LOCK.lock().unwrap();
        enable();
        let before = local_snapshot();
        add(Counter::DfsEdgeVisits, 3);
        incr(Counter::DfsEdgeVisits);
        incr(Counter::MergePasses);
        let d = local_snapshot().delta(&before);
        disable();
        assert_eq!(d.get(Counter::DfsEdgeVisits), 4);
        assert_eq!(d.get(Counter::MergePasses), 1);
        assert_eq!(d.get(Counter::HkPhases), 0);
        assert!(!d.is_zero());
    }

    #[test]
    fn worker_threads_flush_into_global_totals() {
        let _g = LOCK.lock().unwrap();
        enable();
        let before = global_snapshot();
        std::thread::spawn(|| add(Counter::BarrierWaits, 7))
            .join()
            .unwrap();
        let d = global_snapshot().delta(&before);
        disable();
        assert_eq!(d.get(Counter::BarrierWaits), 7);
    }

    #[test]
    fn keys_are_unique_and_ordered() {
        let keys: Vec<&str> = Counter::ALL.iter().map(|c| c.key()).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), COUNTER_COUNT);
        assert_eq!(Counter::ALL[0] as usize, 0);
        assert_eq!(Counter::ALL[COUNTER_COUNT - 1] as usize, COUNTER_COUNT - 1);
    }

    #[test]
    fn merge_and_sum_accumulate_per_worker_deltas() {
        let _g = LOCK.lock().unwrap();
        enable();
        let mut parts = Vec::new();
        for n in [2u64, 3, 5] {
            let before = local_snapshot();
            add(Counter::AdjRebuilds, n);
            incr(Counter::EpochResets);
            parts.push(local_snapshot().delta(&before));
        }
        disable();
        let total = Snapshot::sum(parts.iter());
        assert_eq!(total.get(Counter::AdjRebuilds), 10);
        assert_eq!(total.get(Counter::EpochResets), 3);
        let mut manual = Snapshot::default();
        for p in &parts {
            manual.merge(p);
        }
        assert_eq!(manual, total);
    }

    #[test]
    fn snapshot_iter_matches_get() {
        let _g = LOCK.lock().unwrap();
        enable();
        let before = local_snapshot();
        add(Counter::FlowsimEvents, 5);
        let d = local_snapshot().delta(&before);
        disable();
        for (c, v) in d.iter() {
            assert_eq!(v, d.get(c));
        }
    }
}
