//! Always-on flight recorder: a fixed-capacity ring of per-request records.
//!
//! A [`FlightRecorder`] keeps the last `capacity` [`FlightRecord`]s pushed
//! into it. The intended use is post-hoc explanation: when a request sheds,
//! errors, or lands in the p99 tail, its record — queue depth at admission,
//! queue wait, plan time, cache outcome, worker id, and (for executed
//! schedules) retry/replan/fault counts — is still in the ring and can be
//! dumped via the `FLIGHT` admin command or `redistd --flight-dump` without
//! having had tracing enabled ahead of time.
//!
//! # Concurrency
//!
//! Pushing is lock-cheap: a single atomic ticket fetch picks the slot, and
//! only that slot's mutex is held while the record is written. Writers on
//! different slots never contend; two writers racing a full lap apart on the
//! same slot resolve by sequence number (the newer record wins). Dumping
//! locks one slot at a time and sorts by sequence, so a dump is a consistent
//! "newest N" view even while traffic continues.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a request left the serving path — the one-word explanation a flight
/// record leads with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// Planned cold (cache miss) and the schedule was returned.
    Planned,
    /// Served byte-identically from the plan cache.
    CacheHit,
    /// Shed at admission: the bounded queue was full.
    ShedQueueFull,
    /// Shed at admission: the instance exceeded the configured size cap.
    ShedTooLarge,
    /// The request failed after admission (decode or internal error).
    Error,
    /// Planned and then executed through `redistexec` (retry/replan/fault
    /// counts are meaningful only for this outcome).
    Executed,
}

impl FlightOutcome {
    /// Stable lowercase token used in dumps and metrics labels.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightOutcome::Planned => "planned",
            FlightOutcome::CacheHit => "cache_hit",
            FlightOutcome::ShedQueueFull => "shed_queue_full",
            FlightOutcome::ShedTooLarge => "shed_too_large",
            FlightOutcome::Error => "error",
            FlightOutcome::Executed => "executed",
        }
    }
}

/// One request's life, compressed to a fixed-size record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Server-minted request id (matches the wire header and span labels).
    pub rid: u64,
    /// Client-supplied request id from the wire header.
    pub client_id: u64,
    /// Total bytes in the redistribution instance.
    pub bytes: u64,
    /// Sender count.
    pub n1: u32,
    /// Receiver count.
    pub n2: u32,
    /// Admission-queue depth observed when this request was admitted
    /// (sheds record the depth that rejected them).
    pub queue_depth: u32,
    /// Microseconds from admission to worker pickup (0 for sheds).
    pub queue_wait_us: u64,
    /// Microseconds spent planning (0 for cache hits and sheds).
    pub plan_us: u64,
    /// How the request left the system.
    pub outcome: FlightOutcome,
    /// Worker that served the request (`u32::MAX` when no worker touched
    /// it, i.e. sheds and pre-admission errors).
    pub worker: u32,
    /// Execution retries (meaningful for [`FlightOutcome::Executed`]).
    pub retries: u32,
    /// Execution replans.
    pub replans: u32,
    /// Faults injected/observed during execution.
    pub faults: u32,
    /// Steps spliced in by replanning.
    pub spliced: u32,
}

impl FlightRecord {
    /// A record for a request no worker served yet: everything zeroed,
    /// worker marked absent. Callers fill in what they know.
    pub fn new(rid: u64, outcome: FlightOutcome) -> Self {
        FlightRecord {
            rid,
            client_id: 0,
            bytes: 0,
            n1: 0,
            n2: 0,
            queue_depth: 0,
            queue_wait_us: 0,
            plan_us: 0,
            outcome,
            worker: u32::MAX,
            retries: 0,
            replans: 0,
            faults: 0,
            spliced: 0,
        }
    }

    /// Renders the record as one `key=value` line (no trailing newline).
    /// Field order is fixed so dumps are stable and greppable.
    fn render(&self, seq: u64, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "seq={} rid={} client_id={} outcome={} bytes={} n1={} n2={} \
             queue_depth={} queue_wait_us={} plan_us={} worker={} \
             retries={} replans={} faults={} spliced={}",
            seq,
            self.rid,
            self.client_id,
            self.outcome.as_str(),
            self.bytes,
            self.n1,
            self.n2,
            self.queue_depth,
            self.queue_wait_us,
            self.plan_us,
            if self.worker == u32::MAX {
                -1i64
            } else {
                self.worker as i64
            },
            self.retries,
            self.replans,
            self.faults,
            self.spliced,
        );
    }
}

/// Fixed-capacity ring buffer of [`FlightRecord`]s. See the module docs for
/// the concurrency story.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, FlightRecord)>>>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the newest `capacity` records (capacity is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (not capped by capacity).
    pub fn total(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records one request. Lock-cheap: one atomic ticket plus one per-slot
    /// mutex; concurrent pushes to different slots do not contend.
    pub fn push(&self, record: FlightRecord) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        // A writer a full lap behind must not clobber a newer record.
        match *guard {
            Some((existing, _)) if existing > seq => {}
            _ => *guard = Some((seq, record)),
        }
    }

    /// Snapshot of the ring, oldest first, as `(seq, record)` pairs.
    pub fn dump(&self) -> Vec<(u64, FlightRecord)> {
        let mut out: Vec<(u64, FlightRecord)> = self
            .slots
            .iter()
            .filter_map(|s| *s.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        out.sort_by_key(|&(seq, _)| seq);
        out
    }

    /// Renders the ring as plain text: a header line
    /// `redistd flight records=K capacity=C total=T` followed by one
    /// `key=value` line per record, oldest first.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let records = self.dump();
        let mut out = String::with_capacity(64 + records.len() * 160);
        let _ = writeln!(
            out,
            "redistd flight records={} capacity={} total={}",
            records.len(),
            self.capacity(),
            self.total()
        );
        for (seq, r) in &records {
            r.render(*seq, &mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rid: u64) -> FlightRecord {
        FlightRecord::new(rid, FlightOutcome::Planned)
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let fr = FlightRecorder::new(8);
        for rid in 0..5 {
            fr.push(rec(rid));
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 5);
        assert_eq!(fr.total(), 5);
        let rids: Vec<u64> = dump.iter().map(|(_, r)| r.rid).collect();
        assert_eq!(rids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_on_wraparound() {
        let fr = FlightRecorder::new(4);
        for rid in 0..10 {
            fr.push(rec(rid));
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 4);
        assert_eq!(fr.total(), 10);
        let rids: Vec<u64> = dump.iter().map(|(_, r)| r.rid).collect();
        assert_eq!(rids, vec![6, 7, 8, 9], "newest 4 survive, oldest first");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        fr.push(rec(1));
        fr.push(rec(2));
        assert_eq!(fr.dump().len(), 1);
        assert_eq!(fr.dump()[0].1.rid, 2);
    }

    #[test]
    fn render_has_header_and_stable_fields() {
        let fr = FlightRecorder::new(4);
        let mut r = rec(7);
        r.client_id = 99;
        r.bytes = 1234;
        r.n1 = 3;
        r.n2 = 5;
        r.queue_depth = 2;
        r.queue_wait_us = 40;
        r.plan_us = 150;
        r.worker = 1;
        fr.push(r);
        let mut shed = FlightRecord::new(8, FlightOutcome::ShedQueueFull);
        shed.queue_depth = 16;
        fr.push(shed);
        let text = fr.render();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "redistd flight records=2 capacity=4 total=2"
        );
        assert_eq!(
            lines.next().unwrap(),
            "seq=0 rid=7 client_id=99 outcome=planned bytes=1234 n1=3 n2=5 \
             queue_depth=2 queue_wait_us=40 plan_us=150 worker=1 \
             retries=0 replans=0 faults=0 spliced=0"
        );
        // Sheds render worker=-1 (no worker ever touched the request).
        let shed_line = lines.next().unwrap();
        assert!(shed_line.contains("outcome=shed_queue_full"), "{shed_line}");
        assert!(shed_line.contains("worker=-1"), "{shed_line}");
        assert!(shed_line.contains("queue_depth=16"), "{shed_line}");
    }

    #[test]
    fn concurrent_pushes_keep_ring_consistent() {
        let fr = std::sync::Arc::new(FlightRecorder::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let fr = fr.clone();
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        fr.push(rec(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(fr.total(), 1024);
        let dump = fr.dump();
        assert_eq!(dump.len(), 64);
        // Sequence numbers are strictly increasing and all from the last lap.
        for w in dump.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(dump[0].0 >= 1024 - 64);
    }

    #[test]
    fn outcome_tokens_are_stable() {
        for (o, s) in [
            (FlightOutcome::Planned, "planned"),
            (FlightOutcome::CacheHit, "cache_hit"),
            (FlightOutcome::ShedQueueFull, "shed_queue_full"),
            (FlightOutcome::ShedTooLarge, "shed_too_large"),
            (FlightOutcome::Error, "error"),
            (FlightOutcome::Executed, "executed"),
        ] {
            assert_eq!(o.as_str(), s);
        }
    }
}
