//! Zero-dependency telemetry for the redistribution suite.
//!
//! The schedulers ([`kpbs`](../kpbs/index.html)), the matching engine
//! ([`bipartite`](../bipartite/index.html)), the network simulator
//! ([`flowsim`](../flowsim/index.html)) and the threaded runtime
//! ([`mpilite`](../mpilite/index.html)) are instrumented against this crate.
//! It provides three things, all built on `std` only (external crates are
//! vendored offline stubs, so nothing here may depend on one):
//!
//! * [`spans`] — a lightweight span/event API. Each thread records into a
//!   thread-local buffer; buffers flush into a global registry when the
//!   thread exits (or on [`spans::drain_all`]). Recording is gated by one
//!   global atomic flag: when spans are disabled, [`spans::span`] costs a
//!   relaxed atomic load and a branch, touches no thread-local storage, and
//!   allocates nothing.
//!
//! * [`counters`] — *deterministic work counters*: monotone counters of
//!   algorithmic work (Hopcroft–Karp phases, Kuhn augmentation attempts,
//!   DFS edge visits, max–min threshold probes, …). Because every counted
//!   quantity is a function of the input alone — never of wall-clock time —
//!   fixed-seed runs reproduce counter values exactly, which makes them a
//!   machine-checkable perf-regression signal (`BENCH_counters.json`,
//!   enforced by `scripts/check.sh`). Counters are thread-local on the hot
//!   path (no atomic contention) and aggregate into global totals when a
//!   thread exits.
//!
//! * [`export`] — exporters: Chrome trace-event JSON (loadable in Perfetto
//!   or `chrome://tracing`) for span timelines, and human-readable summary
//!   tables for spans and counters. [`json`] is the minimal JSON parser the
//!   exporters' tests validate output with.
//!
//! * [`histogram`] — fixed-bucket concurrent latency histograms (p50/p99
//!   without allocation), used by the `redistd` serving layer for its
//!   `STATS` report and by `redistload` for `BENCH_serve.json`.
//!
//! * [`metrics`] — a windowed metrics registry (monotonic counters, gauges,
//!   sliding-window summary quantiles over [`histogram`]) rendered in
//!   Prometheus text exposition format. Windows advance only on explicit
//!   calls, so output is deterministic and golden-testable; the `redistd`
//!   `METRICS` admin command serves [`metrics::Registry::render`] directly.
//!
//! * [`flight`] — an always-on flight recorder: a fixed-capacity,
//!   lock-cheap ring of per-request [`flight::FlightRecord`]s (queue depth,
//!   queue wait, plan time, cache outcome, execution retry/replan counts)
//!   so a shed or p99 request can be explained after the fact without
//!   having had tracing enabled.
//!
//! # Quickstart
//!
//! ```
//! use telemetry::counters::{self, Counter};
//!
//! counters::enable();
//! let before = counters::local_snapshot();
//! // ... run instrumented code ...
//! telemetry::counters::add(Counter::DfsEdgeVisits, 3);
//! let work = counters::local_snapshot().delta(&before);
//! assert_eq!(work.get(Counter::DfsEdgeVisits), 3);
//! counters::disable();
//! ```
//!
//! ```
//! use telemetry::{export, spans};
//!
//! spans::enable();
//! {
//!     let _s = telemetry::span("demo.phase");
//!     // ... work ...
//! }
//! let events = spans::drain_thread();
//! let json = export::chrome_trace(&events);
//! assert!(json.contains("\"ph\":\"B\""));
//! spans::disable();
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod spans;

pub use counters::Counter;
pub use flight::{FlightOutcome, FlightRecord, FlightRecorder};
pub use histogram::Histogram;
pub use metrics::{Registry, RegistryConfig};
pub use spans::{
    instant, instant_with, span, span_with, SpanArgs, SpanEvent, SpanGuard, SpanPhase,
};
