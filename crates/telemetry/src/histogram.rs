//! Fixed-bucket latency histograms.
//!
//! A [`Histogram`] is a lock-free, fixed-size array of power-of-two buckets
//! over `u64` samples (the serving layer records microseconds). Recording is
//! one relaxed atomic add — safe to call from many worker threads — and
//! quantile queries read a consistent-enough snapshot for operational
//! reporting (`STATS`, `BENCH_serve.json`). Memory is constant: no
//! allocation ever happens after construction, matching the crate's
//! zero-dependency, bounded-overhead discipline.
//!
//! Buckets are geometric: bucket `i` covers `[2^i, 2^(i+1))` with bucket 0
//! additionally holding zero samples. 40 buckets therefore cover
//! `[0, 2^40)` — in microseconds that is ~12.7 days, far beyond any service
//! time worth distinguishing; larger samples clamp into the last bucket.
//! A reported quantile is the *inclusive upper bound* of the bucket holding
//! the requested rank, so quantiles are conservative (never understate).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of geometric buckets. Bucket `i` covers `[2^i, 2^(i+1))`.
pub const BUCKET_COUNT: usize = 40;

/// A fixed-bucket concurrent histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample: `floor(log2(v))`, clamped to the table.
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        ((63 - v.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
    }

    /// Inclusive upper bound of bucket `i` (the value a quantile reports).
    /// The last bucket absorbs all clamped samples, so its bound is open.
    fn bucket_upper(i: usize) -> u64 {
        if i + 1 >= BUCKET_COUNT {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one sample. One relaxed `fetch_add` per atomic — callable
    /// concurrently from any number of threads.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing that rank; 0 when empty. `quantile(0.5)` is the median
    /// upper bound, `quantile(0.99)` the p99.
    pub fn quantile(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the requested quantile among `total` ordered samples,
        // 1-based and clamped: q = 0 → first sample, q = 1 → last.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(BUCKET_COUNT - 1)
    }

    /// Resets every bucket and the count/sum to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.mean(), 50);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // The true p50 is 50 (bucket [32,64) → upper 63); p99 is 99
        // (bucket [64,128) → upper 127).
        assert_eq!(p50, 63);
        assert_eq!(p99, 127);
        assert!(p50 <= p99);
        // Never understate: the reported quantile covers the true one.
        assert!(p50 >= 50);
        assert!(p99 >= 99);
    }

    #[test]
    fn single_sample_everywhere() {
        let h = Histogram::new();
        h.record(1000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= 1000, "q={q} gave {v}");
            assert!(v < 2048, "q={q} gave {v}");
        }
    }

    #[test]
    fn huge_samples_clamp_into_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
