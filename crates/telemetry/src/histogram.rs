//! Fixed-bucket latency histograms.
//!
//! A [`Histogram`] is a lock-free, fixed-size bucket array over `u64`
//! samples (the serving layer records microseconds). Recording is a handful
//! of relaxed atomic ops — safe to call from many worker threads — and
//! quantile queries read a consistent-enough snapshot for operational
//! reporting (`STATS`, `BENCH_serve.json`). Memory is constant: no
//! allocation ever happens after construction, matching the crate's
//! zero-dependency, bounded-overhead discipline.
//!
//! # Bucket layout (HDR-style)
//!
//! Plain power-of-two buckets report a quantile as the bucket's upper
//! bound, which can overstate by almost 2× (a p99 of 17 ms reads as
//! `32767 µs`). This histogram keeps the geometric range but subdivides it:
//!
//! * values `< 32` get one **exact** bucket each (error 0),
//! * each power-of-two major `[2^p, 2^(p+1))` for `p in 5..40` is split
//!   into 16 **linear sub-buckets**, bounding the relative quantile error
//!   by `1/16 ≈ 6%`,
//! * values `>= 2^40` (~12.7 days in µs) land in one **overflow** bucket
//!   whose largest sample is tracked exactly.
//!
//! A reported quantile is the *inclusive upper bound* of the sub-bucket
//! holding the requested rank, further capped by the largest sample seen —
//! conservative (never understates) but tight. When any sample has hit the
//! overflow bucket, [`Histogram::saturated`] returns `true` so exporters
//! can flag the tail as clipped (`"saturated"` in `BENCH_serve.json`);
//! quantiles landing there report the tracked maximum, a real number rather
//! than a cap.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this have an exact bucket each.
const EXACT_LIMIT: u64 = 32;
/// log2 of [`EXACT_LIMIT`]: the first subdivided major.
const FIRST_MAJOR: u32 = 5;
/// Majors `FIRST_MAJOR..LAST_MAJOR` are subdivided; `2^LAST_MAJOR` is the
/// start of the overflow bucket.
const LAST_MAJOR: u32 = 40;
/// Linear sub-buckets per major — the quantile resolution (`1/16`).
const SUB_BUCKETS: usize = 16;

/// Total bucket count: exact buckets, subdivided majors, one overflow.
pub const BUCKET_COUNT: usize =
    EXACT_LIMIT as usize + (LAST_MAJOR - FIRST_MAJOR) as usize * SUB_BUCKETS + 1;

/// Index of the overflow bucket (samples `>= 2^LAST_MAJOR`).
const OVERFLOW: usize = BUCKET_COUNT - 1;

/// A fixed-bucket concurrent histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample: exact below [`EXACT_LIMIT`], then the
    /// top 4 bits after the leading one select a linear sub-bucket within
    /// the sample's power-of-two major; `>= 2^LAST_MAJOR` overflows.
    fn bucket_of(v: u64) -> usize {
        if v < EXACT_LIMIT {
            return v as usize;
        }
        let p = 63 - v.leading_zeros();
        if p >= LAST_MAJOR {
            return OVERFLOW;
        }
        let sub = ((v >> (p - 4)) & (SUB_BUCKETS as u64 - 1)) as usize;
        EXACT_LIMIT as usize + (p - FIRST_MAJOR) as usize * SUB_BUCKETS + sub
    }

    /// Inclusive upper bound of bucket `i` (the value a quantile reports).
    /// The overflow bucket has no finite bound of its own; the tracked
    /// maximum stands in for it at query time.
    fn bucket_upper(i: usize) -> u64 {
        if i < EXACT_LIMIT as usize {
            return i as u64;
        }
        if i >= OVERFLOW {
            return u64::MAX;
        }
        let rel = i - EXACT_LIMIT as usize;
        let p = FIRST_MAJOR + (rel / SUB_BUCKETS) as u32;
        let sub = (rel % SUB_BUCKETS) as u64;
        // Sub-bucket width within major p is 2^(p-4).
        (1u64 << p) + (sub + 1) * (1u64 << (p - 4)) - 1
    }

    /// Records one sample. A few relaxed atomic ops — callable concurrently
    /// from any number of threads.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// True when at least one sample exceeded the bucketed range
    /// (`>= 2^40`): quantiles in that tail report the tracked maximum
    /// rather than a bucket bound, and exporters should flag the
    /// distribution as clipped.
    pub fn saturated(&self) -> bool {
        self.buckets[OVERFLOW].load(Ordering::Relaxed) > 0
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing that rank, capped by the largest recorded sample; 0 when
    /// empty. `quantile(0.5)` is the median upper bound, `quantile(0.99)`
    /// the p99. Error is at most `1/16` of the true value (exact below 32);
    /// ranks falling in the overflow bucket report the tracked maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the requested quantile among `total` ordered samples,
        // 1-based and clamped: q = 0 → first sample, q = 1 → last.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // max() also bounds every sample from above, so the min of
                // the two stays a conservative (never understating) report
                // and turns the unbounded overflow bucket into a number.
                return Self::bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Number of samples across `parts` (the count a merged view reports).
    pub fn merged_count(parts: &[&Histogram]) -> u64 {
        parts.iter().map(|h| h.count()).sum()
    }

    /// Largest sample across `parts` (0 when all are empty).
    pub fn merged_max(parts: &[&Histogram]) -> u64 {
        parts.iter().map(|h| h.max()).max().unwrap_or(0)
    }

    /// The `q`-quantile over the *union* of several histograms, computed by
    /// summing bucket counts across `parts` — no merged copy is built. This
    /// is what sliding-window views use: the window is a ring of per-slice
    /// histograms and a quantile query merges the ring on the fly. Same
    /// semantics as [`Histogram::quantile`] (conservative upper bound,
    /// capped by the largest sample seen in any part).
    pub fn merged_quantile(parts: &[&Histogram], q: f64) -> u64 {
        let mut total = 0u64;
        for h in parts {
            total += h.count.load(Ordering::Relaxed);
        }
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..BUCKET_COUNT {
            for h in parts {
                seen += h.buckets[i].load(Ordering::Relaxed);
            }
            if seen >= rank {
                return Self::bucket_upper(i).min(Self::merged_max(parts));
            }
        }
        Self::merged_max(parts)
    }

    /// Resets every bucket and the count/sum/max to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max(), 0);
        assert!(!h.saturated());
    }

    #[test]
    fn bucket_boundaries() {
        // Exact region: identity.
        for v in 0..EXACT_LIMIT {
            assert_eq!(Histogram::bucket_of(v), v as usize);
            assert_eq!(Histogram::bucket_upper(v as usize), v);
        }
        // First subdivided major: [32, 64) in 16 sub-buckets of width 2.
        assert_eq!(Histogram::bucket_of(32), 32);
        assert_eq!(Histogram::bucket_of(33), 32);
        assert_eq!(Histogram::bucket_of(34), 33);
        assert_eq!(Histogram::bucket_of(63), 47);
        assert_eq!(Histogram::bucket_upper(32), 33);
        assert_eq!(Histogram::bucket_upper(47), 63);
        // Next major starts a fresh run of 16.
        assert_eq!(Histogram::bucket_of(64), 48);
        assert_eq!(Histogram::bucket_upper(48), 67);
        // Overflow.
        assert_eq!(Histogram::bucket_of(1 << 40), BUCKET_COUNT - 1);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(Histogram::bucket_of((1 << 40) - 1), BUCKET_COUNT - 2);
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose upper bound covers it, and
        // bucket indices never decrease as values grow.
        let mut prev_bucket = 0usize;
        for shift in 0..63 {
            let lo = 1u64 << shift;
            let hi = (2u64 << shift) - 1;
            for &v in &[lo, lo + (hi - lo) / 2, hi] {
                let b = Histogram::bucket_of(v);
                assert!(b >= prev_bucket, "v={v}: bucket {b} < {prev_bucket}");
                assert!(Histogram::bucket_upper(b) >= v, "v={v} above its bound");
                prev_bucket = b;
            }
        }
    }

    #[test]
    fn quantiles_tight_and_conservative() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.mean(), 50);
        assert_eq!(h.max(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // True p50 is 50: sub-bucket [50, 52) → upper 51. True p99 is 99:
        // sub-bucket [96, 100) → upper 99. Both within 1/16, never below.
        assert_eq!(p50, 51);
        assert_eq!(p99, 99);
        assert!(p50 <= p99);
        assert!(p50 >= 50);
        assert!(p99 >= 99);
        assert!(!h.saturated());
    }

    #[test]
    fn quantile_error_bounded_by_sub_bucket_width() {
        let h = Histogram::new();
        for i in 0..1000u64 {
            h.record(10_000 + i * 40); // spread over [10000, 50000)
        }
        for q in [0.5f64, 0.9, 0.99] {
            let true_v = 10_000 + ((q * 1000.0).ceil() as u64 - 1) * 40;
            let got = h.quantile(q);
            assert!(got >= true_v, "q={q}: {got} understates {true_v}");
            assert!(
                got as f64 <= true_v as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64),
                "q={q}: {got} overstates {true_v} by more than 1/16"
            );
        }
    }

    #[test]
    fn single_sample_everywhere() {
        let h = Histogram::new();
        h.record(1000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            // One sample: every quantile is capped by max = the sample.
            assert_eq!(h.quantile(q), 1000, "q={q}");
        }
    }

    #[test]
    fn huge_samples_saturate_and_report_max() {
        let h = Histogram::new();
        h.record(u64::MAX - 5);
        h.record(1 << 41);
        assert_eq!(h.count(), 2);
        assert!(h.saturated());
        // The overflow tail reports the tracked maximum, a real number.
        assert_eq!(h.quantile(1.0), u64::MAX - 5);
        assert_eq!(h.quantile(0.99), u64::MAX - 5);
    }

    #[test]
    fn largest_bucketed_values_stay_unsaturated() {
        let h = Histogram::new();
        h.record((1 << 40) - 1);
        assert!(!h.saturated());
        assert_eq!(h.quantile(1.0), (1 << 40) - 1);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.record(1 << 50);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert!(!h.saturated());
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    fn merged_quantile_matches_single_histogram_union() {
        // Split 1..=100 across three histograms; the merged view must agree
        // with one histogram holding the union.
        let parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        let whole = Histogram::new();
        for v in 1..=100u64 {
            parts[(v % 3) as usize].record(v);
            whole.record(v);
        }
        let refs: Vec<&Histogram> = parts.iter().collect();
        assert_eq!(Histogram::merged_count(&refs), 100);
        assert_eq!(Histogram::merged_max(&refs), 100);
        for q in [0.0f64, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(Histogram::merged_quantile(&refs, q), whole.quantile(q));
        }
        // Empty union reports zero.
        assert_eq!(Histogram::merged_quantile(&[], 0.5), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }
}
