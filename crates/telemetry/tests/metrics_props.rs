//! Property tests of the metrics registry's exposition renderer: every
//! registered series appears exactly once, the output always validates,
//! and rendering is a pure function of registry state.

use proptest::prelude::*;
use telemetry::metrics::{self, Registry, RegistryConfig};

/// Fixed pools the strategy indexes into — the vendored proptest generates
/// integers, not strings, so names and labels are picked from these.
const NAMES: [&str; 5] = [
    "app_requests_total",
    "app_bytes_total",
    "app_sheds_total",
    "queue_events_total",
    "cache_probes_total",
];
const LABEL_KEYS: [&str; 3] = ["outcome", "shard", "worker"];
const LABEL_VALS: [&str; 4] = ["ok", "shed", "weird\"quote", "back\\slash\nnl"];

#[derive(Debug, Clone)]
struct Spec {
    name: usize,
    // (key index, value index); None = unlabeled series.
    label: Option<(usize, usize)>,
    adds: u64,
}

fn spec_strategy() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(
        (
            0..NAMES.len(),
            0..=LABEL_KEYS.len(),
            0..LABEL_VALS.len(),
            0u64..100,
        ),
        1..=12,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(name, key, val, adds)| Spec {
                name,
                // key == len encodes "no labels".
                label: (key < LABEL_KEYS.len()).then_some((key, val)),
                adds,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_registered_counter_renders_exactly_once(specs in spec_strategy()) {
        let registry = Registry::new(RegistryConfig {
            windows: 2,
            window_seconds: 1,
            auto_advance: false,
        });
        // Register (with get-or-create dedup) and accumulate expectations.
        let mut expected: std::collections::BTreeMap<(usize, Option<(usize, usize)>), u64> =
            std::collections::BTreeMap::new();
        for spec in &specs {
            let labels: Vec<(&str, &str)> = spec
                .label
                .iter()
                .map(|&(k, v)| (LABEL_KEYS[k], LABEL_VALS[v]))
                .collect();
            let c = registry.counter(NAMES[spec.name], "Prop test counter.", &labels);
            c.add(spec.adds);
            *expected.entry((spec.name, spec.label)).or_insert(0) += spec.adds;
        }

        let text = registry.render();
        prop_assert!(
            metrics::validate_exposition(&text).is_ok(),
            "render must validate: {}", text
        );
        let samples = metrics::parse_samples(&text).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(e)
        })?;

        // Exactly one sample per distinct registered series, with the
        // accumulated total, and no samples beyond those.
        prop_assert_eq!(samples.len(), expected.len());
        for (&(name, label), &total) in &expected {
            let labels: Vec<(&str, &str)> = label
                .iter()
                .map(|&(k, v)| (LABEL_KEYS[k], LABEL_VALS[v]))
                .collect();
            let matching: Vec<_> = samples
                .iter()
                .filter(|s| {
                    s.name == NAMES[name]
                        && s.labels.len() == labels.len()
                        && labels
                            .iter()
                            .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
                })
                .collect();
            prop_assert_eq!(
                matching.len(), 1,
                "series {}{:?} must appear exactly once in:\n{}", NAMES[name], labels, text
            );
            prop_assert_eq!(matching[0].value, total as f64);
        }

        // Rendering is pure: a second render is byte-identical.
        prop_assert_eq!(registry.render(), text);
    }
}
