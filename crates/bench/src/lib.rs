//! Shared helpers for the figure-regeneration binaries and criterion
//! benches: tiny CLI parsing and table printing (kept dependency-free).

/// Parses `--name value` style options from `std::env::args`, falling back
/// to `default` when absent or malformed.
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
            }
        }
    }
    default
}

/// True when `--name` is present as a flag.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Prints a row of right-aligned cells of width 12 (first cell width 8).
pub fn row(cells: &[String]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{c:>8}"));
        } else {
            line.push_str(&format!("{c:>12}"));
        }
    }
    println!("{line}");
}

/// Formats a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_default_when_missing() {
        assert_eq!(arg_or("definitely-not-passed", 42usize), 42);
    }

    #[test]
    fn formatting() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(f2(1.235), "1.24");
    }
}
