//! Shared helpers for the figure-regeneration binaries and criterion
//! benches: tiny CLI parsing and table printing (kept dependency-free).

/// Parses `--name value` style options from `std::env::args`, falling back
/// to `default` when absent or malformed.
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
            }
        }
    }
    default
}

/// True when `--name` is present as a flag.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Validates a worker-thread count: `0` threads cannot make progress, so it
/// is a configuration error, not a degenerate request.
pub fn validate_jobs(n: usize) -> Result<usize, String> {
    if n == 0 {
        Err("--jobs must be at least 1 (0 worker threads cannot plan anything)".into())
    } else {
        Ok(n)
    }
}

/// Parses `--jobs` (defaulting to `default`) and exits with a clear message
/// on `--jobs 0` instead of hanging or panicking deep in the thread pool.
pub fn jobs_or(default: usize) -> usize {
    validate_jobs(arg_or("jobs", default)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Prints a row of right-aligned cells of width 12 (first cell width 8).
pub fn row(cells: &[String]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{c:>8}"));
        } else {
            line.push_str(&format!("{c:>12}"));
        }
    }
    println!("{line}");
}

/// Formats a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_default_when_missing() {
        assert_eq!(arg_or("definitely-not-passed", 42usize), 42);
    }

    #[test]
    fn zero_jobs_is_rejected() {
        assert!(validate_jobs(0).is_err());
        assert_eq!(validate_jobs(1), Ok(1));
        assert_eq!(validate_jobs(8), Ok(8));
    }

    #[test]
    fn formatting() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(f2(1.235), "1.24");
    }
}
