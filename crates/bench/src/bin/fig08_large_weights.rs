//! Figure 8: evaluation ratios for large weights.
//!
//! Same experiment as Figure 7 but with edge weights uniform in [1, 10000]
//! (data volumes far exceeding the setup delay β = 1). Expected shape: both
//! algorithms within a fraction of a percent of the lower bound — the paper
//! reports a worst ratio of 1.00016.
//!
//! ```sh
//! cargo run --release -p bench --bin fig08_large_weights -- --trials 500
//! ```

use bench::{arg_or, flag, row};
use kpbs::stats::{run_campaign, CampaignConfig, KChoice};

fn main() {
    let trials: usize = arg_or("trials", 500);
    let kmax: usize = arg_or("kmax", 40);
    let seed: u64 = arg_or("seed", 8);
    let csv = flag("csv");

    if csv {
        println!("k,ggp_avg,ggp_max,oggp_avg,oggp_max");
    } else {
        println!(
            "Figure 8: evaluation ratios, weights U[1,10000], beta = 1, {trials} trials/point"
        );
        row(&[
            "k".into(),
            "GGP avg".into(),
            "GGP max".into(),
            "OGGP avg".into(),
            "OGGP max".into(),
        ]);
    }
    for k in 1..=kmax {
        let cfg = CampaignConfig {
            trials,
            max_nodes_per_side: 40,
            max_edges: 400,
            weight_range: (1, 10_000),
            beta: 1,
            k: KChoice::Fixed(k),
            seed: seed.wrapping_add(k as u64),
        };
        let r = run_campaign(&cfg);
        if csv {
            println!(
                "{k},{},{},{},{}",
                r.ggp.mean, r.ggp.max, r.oggp.mean, r.oggp.max
            );
        } else {
            row(&[
                k.to_string(),
                format!("{:.6}", r.ggp.mean),
                format!("{:.6}", r.ggp.max),
                format!("{:.6}", r.oggp.mean),
                format!("{:.6}", r.oggp.max),
            ]);
        }
    }
}
