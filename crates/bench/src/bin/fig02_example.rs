//! Figure 2 of the paper: the worked K-PBS example. The figure (an image in
//! the paper, so the exact edge set is reconstructed here) shows a solution
//! with k = 3 in 3 steps of durations 5, 3 and 4; with β = 1 the total cost
//! is (1+5) + (1+3) + (1+4) = 15, and preemption decomposes the weight-8
//! edge into two slices of 4.
//!
//! The graph below admits exactly that solution. The paper notes such a
//! hand schedule "may not be optimal" — the exact solver indeed finds a
//! cheaper one — and GGP/OGGP must stay within twice the optimum.
//!
//! ```sh
//! cargo run --release -p bench --bin fig02_example
//! ```

use bipartite::Graph;
use kpbs::schedule::{Schedule, Step, Transfer};
use kpbs::{exact, ggp, lower_bound, oggp, Instance};

fn main() {
    // A graph admitting the depicted solution: 3 senders, 3 receivers.
    let mut g = Graph::new(3, 3);
    let e0 = g.add_edge(0, 0, 5);
    let e1 = g.add_edge(1, 1, 8); // the preempted edge
    let e2 = g.add_edge(0, 1, 3);
    let e3 = g.add_edge(2, 0, 4);
    let e4 = g.add_edge(2, 2, 4);
    let inst = Instance::new(g, 3, 1);

    println!("Figure 2 instance (k = 3, beta = 1):");
    for (id, l, r, w) in inst.graph.edges() {
        println!("  e{}: C1 node {l} -> C2 node {r}, {w} time units", id.0);
    }

    // The paper's depicted 3-step solution, reconstructed and validated.
    let depicted = Schedule {
        steps: vec![
            Step {
                transfers: vec![
                    Transfer {
                        edge: e0,
                        amount: 5,
                    },
                    Transfer {
                        edge: e1,
                        amount: 4,
                    },
                    Transfer {
                        edge: e4,
                        amount: 4,
                    },
                ],
            },
            Step {
                transfers: vec![Transfer {
                    edge: e2,
                    amount: 3,
                }],
            },
            Step {
                transfers: vec![
                    Transfer {
                        edge: e1,
                        amount: 4,
                    },
                    Transfer {
                        edge: e3,
                        amount: 4,
                    },
                ],
            },
        ],
        beta: 1,
    };
    depicted
        .validate(&inst)
        .expect("the depicted solution must be feasible");
    println!(
        "\npaper's depicted solution: {} steps, durations {:?}, cost {}",
        depicted.num_steps(),
        depicted
            .steps
            .iter()
            .map(|s| s.duration())
            .collect::<Vec<_>>(),
        depicted.cost()
    );
    assert_eq!(depicted.cost(), 15, "matches the figure's arithmetic");

    println!("lower bound              : {}", lower_bound(&inst));
    match exact::optimal_cost(&inst, exact::Limits::default()) {
        Some(c) => println!("exact optimum            : {c}"),
        None => println!("exact optimum            : (beyond solver limits)"),
    }

    for (name, s) in [("GGP", ggp(&inst)), ("OGGP", oggp(&inst))] {
        s.validate(&inst).expect("feasible");
        println!("\n{name}: {} steps, cost {}", s.num_steps(), s.cost());
        for (i, step) in s.steps.iter().enumerate() {
            let slices: Vec<String> = step
                .transfers
                .iter()
                .map(|t| format!("e{}:{}", t.edge.0, t.amount))
                .collect();
            println!(
                "  step {i}: duration {} | {}",
                step.duration(),
                slices.join(" ")
            );
        }
    }
}
