//! Deterministic work-counter baseline: the wall-clock-free perf gate.
//!
//! Runs a small fixed-seed campaign across the scheduler (GGP and OGGP with
//! regularisation), the flow simulator and the threaded runtime, recording
//! the telemetry work counters of each phase. Every counted quantity is a
//! pure function of the fixed seeds, so the emitted JSON is byte-identical
//! across runs and machines — `scripts/check.sh` regenerates it and
//! byte-compares against the checked-in `BENCH_counters.json`, failing on
//! any unexplained change in algorithmic work.
//!
//! ```sh
//! cargo run --release -p bench --bin counters_baseline            # rewrite baseline
//! cargo run --release -p bench --bin counters_baseline -- --check # compare
//! ```
//!
//! Options: `--out PATH` baseline file (default `BENCH_counters.json`),
//! `--check` compare instead of write (exit 1 on mismatch), `--jobs N`
//! worker threads for the scheduler arm (counters are thread-local and each
//! case is measured on the thread that runs it, so the emitted JSON is
//! byte-identical for any N — `scripts/check.sh` verifies that too).

use bench::{arg_or, flag, jobs_or};
use bipartite::generate::complete_graph;
use flowsim::{scheduled_time, NetworkSpec, SimConfig};
use kpbs::batch::parallel_map;
use kpbs::traffic::TickScale;
use kpbs::{ggp, oggp, Instance, Platform, TrafficMatrix};
use mpilite::{run_schedule, FabricConfig};
use rand::{rngs::SmallRng, SeedableRng};
use telemetry::counters::{self, Snapshot};

/// One campaign case: the counter deltas a named phase produced.
fn counters_json(s: &Snapshot) -> String {
    let body: Vec<String> = s
        .iter()
        .map(|(c, v)| format!("        \"{}\": {}", c.key(), v))
        .collect();
    format!("{{\n{}\n      }}", body.join(",\n"))
}

fn main() {
    let out: String = arg_or("out", "BENCH_counters.json".to_string());
    let check = flag("check");
    let jobs: usize = jobs_or(1);

    counters::enable();
    let campaign_start = counters::global_snapshot();
    let mut cases: Vec<(String, Snapshot)> = Vec::new();

    // Scheduler arm: dense fixed-seed instances through both pipelines,
    // fanned out over `jobs` threads. Each case is measured with local
    // (per-thread) snapshots around its own run, so the deltas are exact
    // and independent of the thread assignment; results come back in input
    // order. With --jobs 1 everything runs inline on this thread.
    let mut rng = SmallRng::seed_from_u64(0xc0de);
    let mut scheduler_inputs: Vec<(String, bool, Instance)> = Vec::new();
    for &n in &[12usize, 16] {
        let g = complete_graph(&mut rng, n, n, (1, 500));
        let inst = Instance::new(g, n / 2, 1);
        scheduler_inputs.push((format!("oggp_complete_n{n}"), true, inst.clone()));
        scheduler_inputs.push((format!("ggp_complete_n{n}"), false, inst));
    }
    cases.extend(parallel_map(
        &scheduler_inputs,
        jobs,
        |(name, is_oggp, inst)| {
            let before = counters::local_snapshot();
            if *is_oggp {
                std::hint::black_box(oggp(inst));
            } else {
                std::hint::black_box(ggp(inst));
            }
            (name.clone(), counters::local_snapshot().delta(&before))
        },
    ));

    let mut record = |name: &str, f: &mut dyn FnMut()| {
        let before = counters::global_snapshot();
        f();
        cases.push((name.into(), counters::global_snapshot().delta(&before)));
    };

    // Hierarchical arm: the block-decomposed planner over a fixed-seed
    // clustered sparse instance. Partition assigns, block plans and
    // composed steps are pure functions of the seed, like everything else
    // here.
    let mut rng = SmallRng::seed_from_u64(0x41e5);
    let hier_inst = kpbs::instances::sparse_clustered(&mut rng, 64, 8, 4, 0.1, 100, 8, 1);
    record("hier_clustered_n64", &mut || {
        std::hint::black_box(kpbs::hier::hier(
            &hier_inst,
            &kpbs::hier::HierConfig::new(8),
        ));
    });

    // Topology arm: a fixed-seed heterogeneous plan through the
    // per-bottleneck planner; the derive-k, route and compose counters are
    // pure functions of the topology shape and the seeded matrix.
    let mut rng = SmallRng::seed_from_u64(0x7090);
    let topo = kpbs::instances::two_backbone_topology(4, 100.0, 40.0, 250.0, 80.0);
    let topo_traffic = kpbs::instances::routable_traffic(&mut rng, &topo, 12);
    record("topo_two_backbone_n8", &mut || {
        std::hint::black_box(
            kpbs::plan_topology(
                &topo_traffic,
                &topo,
                0.05,
                TickScale::MILLIS,
                kpbs::TopoAlgo::Oggp,
            )
            .expect("fixed-seed topology plan"),
        );
    });

    // Simulator arm: OGGP schedule executed on the ideal fluid network.
    let mut rng = SmallRng::seed_from_u64(0xf10e);
    let platform = Platform::testbed(4);
    let traffic = TrafficMatrix::uniform_mb(&mut rng, platform.n1, platform.n2, 1, 5);
    let (inst, endpoints) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
    let schedule = oggp(&inst);
    let spec = NetworkSpec::from_platform(&platform);
    record("flowsim_scheduled", &mut || {
        std::hint::black_box(scheduled_time(
            &traffic,
            &inst,
            &endpoints,
            &schedule,
            &spec,
            0.05,
            &SimConfig::default(),
        ));
    });

    // Runtime arm: the same plan moved as real bytes through the threaded
    // world (barrier waits per step are structural, hence deterministic).
    let mut small = TrafficMatrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            small.set(i, j, 8_000 + (i * 4 + j) as u64 * 1_000);
        }
    }
    let mplatform = Platform::new(4, 4, 100.0, 100.0, 200.0);
    let (minst, mendpoints) = small.to_instance(&mplatform, 0.0, TickScale::MILLIS);
    let mschedule = oggp(&minst);
    let fabric = FabricConfig {
        out_bytes_per_s: 2e9,
        in_bytes_per_s: 2e9,
        backbone_bytes_per_s: 2e9,
        chunk_bytes: 64 * 1024,
    };
    record("mpilite_scheduled", &mut || {
        std::hint::black_box(run_schedule(
            &small,
            &minst,
            &mendpoints,
            &mschedule,
            fabric,
        ));
    });

    let total = counters::global_snapshot().delta(&campaign_start);
    counters::disable();

    let case_objs: Vec<String> = cases
        .iter()
        .map(|(name, s)| {
            format!(
                "    {{\n      \"name\": \"{name}\",\n      \"counters\": {}\n    }}",
                counters_json(s)
            )
        })
        .collect();
    let total_body: Vec<String> = total
        .iter()
        .map(|(c, v)| format!("    \"{}\": {}", c.key(), v))
        .collect();
    let json = format!(
        "{{\n  \"campaign\": \"fixed_seed_counters_v1\",\n  \"cases\": [\n{}\n  ],\n  \"total\": {{\n{}\n  }}\n}}\n",
        case_objs.join(",\n"),
        total_body.join(",\n")
    );

    if check {
        let existing = std::fs::read_to_string(&out).unwrap_or_else(|e| {
            eprintln!("counters_baseline: cannot read baseline {out}: {e}");
            std::process::exit(1);
        });
        if existing == json {
            println!("work counters match {out}");
        } else {
            eprintln!(
                "counters_baseline: deterministic work counters diverged from {out}.\n\
                 If the change is an intended algorithmic change, regenerate with:\n\
                 \x20 cargo run --release -p bench --bin counters_baseline\n\
                 --- expected (checked in) ---\n{existing}\n--- got ---\n{json}"
            );
            std::process::exit(1);
        }
    } else {
        std::fs::write(&out, &json).expect("write baseline file");
        println!("wrote {out}");
    }
}
