//! Figure 7: evaluation ratios for small weights.
//!
//! Random bipartite graphs (≤ 40 nodes, ≤ 400 edges), edge weights uniform
//! in [1, 20], β = 1. For each k the average and maximum ratio of GGP and
//! OGGP cost to the lower bound over many trials. The paper used 100 000
//! trials per point; default here is 2 000 (see `--trials`).
//!
//! Expected shape: OGGP strictly below GGP, OGGP's *worst* case below GGP's
//! *average*, maximum ratios ≲ 1.15.
//!
//! ```sh
//! cargo run --release -p bench --bin fig07_small_weights -- --trials 2000
//! ```

use bench::{arg_or, f4, flag, row};
use kpbs::stats::{run_campaign, CampaignConfig, KChoice};

fn main() {
    let trials: usize = arg_or("trials", 2000);
    let kmax: usize = arg_or("kmax", 40);
    let seed: u64 = arg_or("seed", 7);
    let csv = flag("csv");

    if csv {
        println!("k,ggp_avg,ggp_max,seeded_avg,seeded_max,oggp_avg,oggp_max");
    } else {
        println!("Figure 7: evaluation ratios, weights U[1,20], beta = 1, {trials} trials/point");
        println!("(GGP* = GGP with a heaviest-seeded matching: same algorithm, the paper's");
        println!(" open matching choice biased towards heavy edges)");
        row(&[
            "k".into(),
            "GGP avg".into(),
            "GGP max".into(),
            "GGP* avg".into(),
            "GGP* max".into(),
            "OGGP avg".into(),
            "OGGP max".into(),
        ]);
    }
    for k in 1..=kmax {
        let cfg = CampaignConfig {
            trials,
            max_nodes_per_side: 40,
            max_edges: 400,
            weight_range: (1, 20),
            beta: 1,
            k: KChoice::Fixed(k),
            seed: seed.wrapping_add(k as u64),
        };
        let r = run_campaign(&cfg);
        if csv {
            println!(
                "{k},{},{},{},{},{},{}",
                r.ggp.mean, r.ggp.max, r.ggp_seeded.mean, r.ggp_seeded.max, r.oggp.mean, r.oggp.max
            );
        } else {
            row(&[
                k.to_string(),
                f4(r.ggp.mean),
                f4(r.ggp.max),
                f4(r.ggp_seeded.mean),
                f4(r.ggp_seeded.max),
                f4(r.oggp.mean),
                f4(r.oggp.max),
            ]);
        }
    }
}
