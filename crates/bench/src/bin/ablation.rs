//! Ablation study of the design choices DESIGN.md calls out:
//!
//! * **weight-regular peeling** (GGP) vs. plain greedy peeling without the
//!   regularisation (`preemptive_greedy`),
//! * **bottleneck matchings** (OGGP) vs. arbitrary perfect matchings (GGP),
//! * **peeling** altogether vs. the classical slot-splitting + edge-coloring
//!   scheduler (`coloring_schedule`) and non-preemptive list scheduling.
//!
//! Reports mean/max evaluation ratios and step counts over a seeded random
//! campaign for several β regimes.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation -- --trials 300
//! ```

use bench::{arg_or, f2, f4, row};
use bipartite::generate::{random_graph, GraphParams};
use kpbs::ggp::ggp_seeded;
use kpbs::stats::RatioStats;
use kpbs::{baselines, coloring, ggp, lower_bound, oggp, Instance};
use rand::{rngs::SmallRng, Rng, SeedableRng};

type Scheduler = fn(&Instance) -> kpbs::Schedule;

fn main() {
    let trials: usize = arg_or("trials", 300);
    let schedulers: Vec<(&str, Scheduler)> = vec![
        ("ggp", ggp),
        ("ggp-seed", ggp_seeded),
        ("oggp", oggp),
        ("greedy", baselines::preemptive_greedy),
        ("coloring", coloring::coloring_schedule),
        ("list", baselines::nonpreemptive_list),
        ("sequential", baselines::sequential),
    ];

    for beta in [0u64, 1, 5, 20] {
        println!("\n=== beta = {beta}, weights U[1,20], {trials} trials ===");
        row(&[
            "sched".into(),
            "avg ratio".into(),
            "max ratio".into(),
            "avg steps".into(),
        ]);
        let mut stats: Vec<(RatioStats, f64)> =
            vec![(RatioStats::default(), 0.0); schedulers.len()];
        let mut rng = SmallRng::seed_from_u64(600 + beta);
        let params = GraphParams {
            max_nodes_per_side: 12,
            max_edges: 120,
            weight_range: (1, 20),
        };
        for _ in 0..trials {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            let inst = Instance::new(g, k, beta);
            let lb = lower_bound(&inst) as f64;
            for (i, (name, f)) in schedulers.iter().enumerate() {
                let s = f(&inst);
                debug_assert!(s.validate(&inst).is_ok(), "{name}");
                stats[i].0.push(s.cost() as f64 / lb);
                stats[i].1 += s.num_steps() as f64;
            }
        }
        for (i, (name, _)) in schedulers.iter().enumerate() {
            row(&[
                (*name).into(),
                f4(stats[i].0.mean),
                f4(stats[i].0.max),
                f2(stats[i].1 / trials as f64),
            ]);
        }
    }
}
