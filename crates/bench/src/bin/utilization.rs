//! Why scheduling wins: backbone utilisation of the two experimental arms.
//!
//! The brute-force arm drives 100 flows through every shaper at once; the
//! TCP model's per-flow overhead leaves capacity on the floor. The
//! scheduled arm runs exactly `k` uncontended flows per step and saturates
//! the backbone. This harness measures the mean backbone utilisation of the
//! brute-force arm (from the simulator's rate trace) for k ∈ {3, 5, 7} and
//! relates it to the measured improvement — the mechanism behind
//! Figures 10–11.
//!
//! ```sh
//! cargo run --release -p bench --bin utilization
//! ```

use bench::{arg_or, row};
use flowsim::executor::brute_force_run;
use flowsim::network::BYTES_PER_S_PER_MBPS;
use flowsim::{scheduled_time, NetworkSpec, SimConfig, TcpModel};
use kpbs::traffic::TickScale;
use kpbs::{oggp, Platform, TrafficMatrix};
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let hi_mb: u64 = arg_or("size", 40);
    println!("backbone utilisation, 10x10 all-to-all, sizes U[10,{hi_mb}] MB:");
    row(&[
        "k".into(),
        "brute util".into(),
        "brute (s)".into(),
        "OGGP (s)".into(),
        "gain".into(),
    ]);
    for k in [3usize, 5, 7] {
        let platform = Platform::testbed(k);
        let spec = NetworkSpec::from_platform(&platform);
        let mut rng = SmallRng::seed_from_u64(300 + k as u64);
        let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, hi_mb);
        let cfg = SimConfig {
            tcp: TcpModel::default(),
            seed: 1,
            record_trace: true,
        };
        let brute = brute_force_run(&traffic, &spec, &cfg);
        let util = brute
            .trace
            .as_ref()
            .expect("trace requested")
            .mean_utilization(100.0 * BYTES_PER_S_PER_MBPS, brute.makespan);

        let (inst, endpoints) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
        let schedule = oggp(&inst);
        let sched = scheduled_time(&traffic, &inst, &endpoints, &schedule, &spec, 0.05, &cfg);
        row(&[
            k.to_string(),
            format!("{:.1}%", util * 100.0),
            format!("{:.1}", brute.makespan),
            format!("{:.1}", sched.total_seconds),
            format!(
                "{:.1}%",
                (1.0 - sched.total_seconds / brute.makespan) * 100.0
            ),
        ]);
    }
    println!(
        "\nthe brute-force arm's utilisation deficit tracks the scheduled arm's gain:\n\
         per-flow fair shares shrink as k grows (10/k Mbit/s), so TCP's fixed\n\
         per-flow overhead wastes a growing fraction of the backbone."
    );
}
