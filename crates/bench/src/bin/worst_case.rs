//! Worst-case and structured families: evaluation ratios of every scheduler
//! on the named instance corpus (`kpbs::instances`) at growing sizes. The
//! paper's tech report exhibits families approaching the approximation
//! ratio of 2; this harness tracks how close the implementation gets.
//!
//! ```sh
//! cargo run --release -p bench --bin worst_case
//! ```

use bench::{f4, row};
use kpbs::ggp::ggp_seeded;
use kpbs::{baselines, ggp, instances, lower_bound, oggp, Instance};

fn ratios(name: &str, inst: &Instance) {
    let lb = lower_bound(inst) as f64;
    let r = |s: kpbs::Schedule| {
        debug_assert!(s.validate(inst).is_ok());
        s.cost() as f64 / lb
    };
    row(&[
        name.into(),
        f4(r(ggp(inst))),
        f4(r(ggp_seeded(inst))),
        f4(r(oggp(inst))),
        f4(r(baselines::nonpreemptive_list(inst))),
        format!("{}", lb as u64),
    ]);
}

fn main() {
    row(&[
        "family".into(),
        "GGP".into(),
        "GGP*".into(),
        "OGGP".into(),
        "list".into(),
        "bound".into(),
    ]);
    for n in [4usize, 8, 16] {
        ratios(&format!("trap{n}"), &instances::beta_trap(n, 2 * n as u64));
        ratios(&format!("hoard{n}"), &instances::hoarding_sender(n, 5));
        ratios(
            &format!("unif{n}"),
            &instances::uniform_all_to_all(n, 7, n / 2 + 1, 1),
        );
        ratios(&format!("stair{n}"), &instances::staircase(n, 3));
    }
    use rand::{rngs::SmallRng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(1);
    for n in [8usize, 16] {
        ratios(
            &format!("plaw{n}"),
            &instances::power_law(&mut rng, n, 4 * n, 512, n / 2, 2),
        );
    }
}
