//! Replan-vs-cold speedup study: what a live [`kpbs::DeltaPlanner`]
//! session buys over stateless re-planning.
//!
//! For each matrix size (n = 64 / 256 / 1024, sparse fixed-seed instances)
//! and delta-batch size (1 / 4 / 16 edited cells), streams `reps` random
//! edit batches through a warm planner, timing each `replan` against a
//! cold OGGP plan of the same post-delta matrix (canonical row-major
//! construction — exactly what a stateless server would do). Every
//! replanned schedule is self-validating (the planner asserts feasibility
//! and exact delivery on each call), so a row in the output is also a
//! correctness witness.
//!
//! Writes `BENCH_delta.json` and exits non-zero when the headline gate —
//! single-cell replans at n = 256 at least 3× faster than cold planning —
//! does not hold. The checked-in copy is regenerated with:
//!
//! ```sh
//! cargo run --release -p bench --bin delta_bench
//! ```
//!
//! Options: `--reps N` batches per row (default 5, large sizes clamp to
//! 3), `--out PATH` (default `BENCH_delta.json`), `--smoke` n = 256 only,
//! writing `target/BENCH_delta_smoke.json` so the checked-in file is
//! never clobbered.

use bench::{arg_or, flag, row};
use bipartite::Graph;
use kpbs::{oggp, DeltaPlanner, Instance, MatrixDelta, RepairLevel};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;

const K: usize = 32;
const BETA: u64 = 1;
const MAX_W: u64 = 10_000;

/// Sizes with a density that keeps cold planning tractable while the
/// instance stays recognisably sparse (10–40%).
const SIZES: &[(usize, f64)] = &[(64, 0.4), (256, 0.2), (1024, 0.05)];
const DELTA_SIZES: &[usize] = &[1, 4, 16];

/// A deduplicated sparse instance (the planner refuses parallel edges),
/// built row-major so it is canonical from the start.
fn instance_at(n: usize, density: f64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(0xde17a + n as u64);
    let mut g = Graph::new(n, n);
    for l in 0..n {
        for r in 0..n {
            if rng.gen_bool(density) {
                g.add_edge(l, r, rng.gen_range(1..=MAX_W));
            }
        }
    }
    if g.is_empty() {
        g.add_edge(0, 0, MAX_W);
    }
    Instance::new(g, K, BETA)
}

/// The canonical cold instance of the planner's current matrix.
fn cold_instance(planner: &DeltaPlanner) -> Instance {
    let target = planner.target_matrix();
    let live = planner.instance();
    let mut g = Graph::new(live.graph.left_count(), live.graph.right_count());
    for i in 0..live.graph.left_count() {
        for j in 0..live.graph.right_count() {
            let w = target.get(i, j);
            if w > 0 {
                g.add_edge(i, j, w);
            }
        }
    }
    Instance::new(g, live.k, live.beta)
}

struct Row {
    n: usize,
    edges: usize,
    delta_cells: usize,
    reps: usize,
    replan_us: f64,
    cold_us: f64,
    cost_ratio: f64,
    repairs: u64,
    repeels: u64,
    colds: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_us / self.replan_us.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "    {{ \"n\": {}, \"edges\": {}, \"delta_cells\": {}, \"reps\": {}, \
             \"replan_us_mean\": {:.1}, \"cold_us_mean\": {:.1}, \"speedup\": {:.2}, \
             \"cost_vs_cold\": {:.4}, \
             \"levels\": {{ \"repair\": {}, \"repeel\": {}, \"cold\": {} }} }}",
            self.n,
            self.edges,
            self.delta_cells,
            self.reps,
            self.replan_us,
            self.cold_us,
            self.speedup(),
            self.cost_ratio,
            self.repairs,
            self.repeels,
            self.colds,
        )
    }
}

fn measure(n: usize, density: f64, delta_cells: usize, reps: usize) -> Row {
    let mut planner = DeltaPlanner::new(instance_at(n, density));
    let edges = planner.instance().graph.edge_count();
    let mut rng = SmallRng::seed_from_u64(0xba7c4 ^ ((n as u64) << 8) ^ delta_cells as u64);
    let mut row = Row {
        n,
        edges,
        delta_cells,
        reps,
        replan_us: 0.0,
        cold_us: 0.0,
        cost_ratio: 0.0,
        repairs: 0,
        repeels: 0,
        colds: 0,
    };
    for _ in 0..reps {
        // A coflow tick: mostly reshaped or new messages, some cancelled.
        let batch: Vec<MatrixDelta> = (0..delta_cells)
            .map(|_| MatrixDelta::Set {
                sender: rng.gen_range(0..n),
                receiver: rng.gen_range(0..n),
                ticks: if rng.gen_bool(0.25) {
                    0
                } else {
                    rng.gen_range(1..=MAX_W)
                },
            })
            .collect();
        let t = Instant::now();
        let outcome = std::hint::black_box(planner.replan(&batch));
        row.replan_us += t.elapsed().as_secs_f64() * 1e6;
        match outcome.level {
            RepairLevel::Repair => row.repairs += 1,
            RepairLevel::RePeel => row.repeels += 1,
            RepairLevel::Cold => row.colds += 1,
        }

        let cold_inst = cold_instance(&planner);
        let t = Instant::now();
        let cold = std::hint::black_box(oggp(&cold_inst));
        row.cold_us += t.elapsed().as_secs_f64() * 1e6;
        row.cost_ratio += outcome.cost as f64 / cold.cost().max(1) as f64;
    }
    row.replan_us /= reps as f64;
    row.cold_us /= reps as f64;
    row.cost_ratio /= reps as f64;
    row
}

fn main() {
    let smoke = flag("smoke");
    let reps_arg: usize = arg_or("reps", 5);
    let out: String = if smoke {
        arg_or("out", "target/BENCH_delta_smoke.json".to_string())
    } else {
        arg_or("out", "BENCH_delta.json".to_string())
    };

    let sizes: Vec<(usize, f64)> = SIZES
        .iter()
        .copied()
        .filter(|&(n, _)| !smoke || n == 256)
        .collect();

    row(&[
        "n".into(),
        "cells".into(),
        "replan_us".into(),
        "cold_us".into(),
        "speedup".into(),
        "cost/cold".into(),
    ]);
    let mut rows: Vec<Row> = Vec::new();
    for &(n, density) in &sizes {
        for &d in DELTA_SIZES {
            // Large instances pay seconds per cold plan; clamp the reps
            // there so the study stays a CI-friendly gate.
            let reps = if n >= 1024 { reps_arg.min(3) } else { reps_arg }.max(1);
            let r = measure(n, density, d, reps);
            row(&[
                format!("{n}"),
                format!("{d}"),
                format!("{:.0}", r.replan_us),
                format!("{:.0}", r.cold_us),
                format!("{:.1}x", r.speedup()),
                format!("{:.4}", r.cost_ratio),
            ]);
            rows.push(r);
        }
    }

    let gate = rows
        .iter()
        .find(|r| r.n == 256 && r.delta_cells == 1)
        .expect("the n=256 single-cell row is always measured");
    let gate_speedup = gate.speedup();

    let body: Vec<String> = rows.iter().map(Row::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"delta_replan_v1\",\n  \
         \"family\": \"sparse uniform, k={K}, beta={BETA}, weights 1..={MAX_W}\",\n  \
         \"timing\": \"mean over reps, us\",\n  \"rows\": [\n{}\n  ],\n  \
         \"gate_n256_single_cell_speedup\": {gate_speedup:.2},\n  \
         \"gate_threshold\": 3.0\n}}\n",
        body.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH_delta.json");
    println!("delta_bench: wrote {out}");

    if gate_speedup < 3.0 {
        eprintln!(
            "delta_bench: single-cell replan at n=256 only {gate_speedup:.2}x \
             faster than cold (gate: 3x)"
        );
        std::process::exit(1);
    }
}
