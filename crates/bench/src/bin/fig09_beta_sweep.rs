//! Figure 9: evaluation ratios as β increases.
//!
//! Weights uniform in [1, 20], k random per trial, β swept along the
//! x-axis. Expected shape: ratios peak (≈ 1.8 for GGP max, ≈ 1.6 for OGGP
//! max, ≈ 1.2 for the OGGP average) while β is comparable to the weights,
//! then fall because the optimal cost itself grows with β.
//!
//! ```sh
//! cargo run --release -p bench --bin fig09_beta_sweep -- --trials 2000
//! ```

use bench::{arg_or, f4, flag, row};
use kpbs::stats::{run_campaign, CampaignConfig, KChoice};

fn main() {
    let trials: usize = arg_or("trials", 2000);
    let seed: u64 = arg_or("seed", 9);
    let csv = flag("csv");
    let betas: Vec<u64> = vec![0, 1, 2, 3, 5, 8, 12, 16, 20, 30, 40, 60, 80, 100];

    if csv {
        println!("beta,ggp_avg,ggp_max,oggp_avg,oggp_max");
    } else {
        println!(
            "Figure 9: evaluation ratios vs beta, weights U[1,20], random k, {trials} trials/point"
        );
        row(&[
            "beta".into(),
            "GGP avg".into(),
            "GGP max".into(),
            "OGGP avg".into(),
            "OGGP max".into(),
        ]);
    }
    for &beta in &betas {
        let cfg = CampaignConfig {
            trials,
            max_nodes_per_side: 40,
            max_edges: 400,
            weight_range: (1, 20),
            beta,
            k: KChoice::Random,
            seed: seed.wrapping_add(beta),
        };
        let r = run_campaign(&cfg);
        if csv {
            println!(
                "{beta},{},{},{},{}",
                r.ggp.mean, r.ggp.max, r.oggp.mean, r.oggp.max
            );
        } else {
            row(&[
                beta.to_string(),
                f4(r.ggp.mean),
                f4(r.ggp.max),
                f4(r.oggp.mean),
                f4(r.oggp.max),
            ]);
        }
    }
}
