//! Cold vs incremental peeling wall-time comparison, machine readable.
//!
//! Runs the from-scratch oracle pipeline and the incremental-engine
//! pipeline on Figure-8-style large-weight instances (dense, n >= 32,
//! weights U[1, 10000], beta = 1), checks the OGGP schedules are
//! identical, and writes `BENCH_peeling.json` with instances, wall times,
//! speedups, peel counts and deterministic work counters (Hopcroft–Karp
//! phases, augmentation attempts, DFS edge visits, threshold probes, merge
//! passes, CSR adjacency rebuilds, epoch resets) so the cold-vs-incremental
//! speedups are explained by counted work, not just wall-clock. The
//! checked-in copy at the repository root is regenerated with:
//!
//! ```sh
//! cargo run --release -p bench --bin peel_speedup
//! ```
//!
//! Options: `--reps N` timing repetitions (default 7), `--out PATH` output
//! file (default `BENCH_peeling.json`), `--jobs N` worker threads for the
//! work-counter passes (default 1; counters are thread-local so the values
//! are identical for any N — timing passes always run sequentially).

use bench::{arg_or, jobs_or, row};
use bipartite::generate::complete_graph;
use bipartite::Graph;
use kpbs::batch::parallel_map;
use kpbs::ggp::{ggp, schedule_with};
use kpbs::normalize::normalize;
use kpbs::oggp::{oggp, oggp_reference};
use kpbs::regularize::regularize;
use kpbs::wrgp::{peel_all_incremental, IncrementalMaxMin};
use kpbs::{Instance, Schedule};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::time::Instant;
use telemetry::counters::{self, Counter, Snapshot};

/// Best-of-`reps` wall time in milliseconds, plus the (deterministic)
/// schedule the closure produces.
fn time_ms<F: FnMut() -> Schedule>(mut f: F, reps: usize) -> (f64, Schedule) {
    let mut out = f(); // warm-up, also the reported schedule
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        out = std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

/// Deterministic work counted over one run of `f` on the calling thread.
/// Counting must already be enabled; the timing loops run with it disabled
/// so the reported milliseconds stay telemetry-free.
fn work_of<F: FnMut() -> Schedule>(mut f: F) -> Snapshot {
    let before = counters::local_snapshot();
    std::hint::black_box(f());
    counters::local_snapshot().delta(&before)
}

/// The matching-work subset of the counters as a JSON object.
fn work_json(s: &Snapshot) -> String {
    format!(
        "{{ \"hk_phases\": {}, \"kuhn_attempts\": {}, \"dfs_edge_visits\": {}, \
         \"threshold_probes\": {}, \"merge_passes\": {}, \"adj_rebuilds\": {}, \
         \"epoch_resets\": {}, \"peels\": {} }}",
        s.get(Counter::HkPhases),
        s.get(Counter::KuhnAttempts),
        s.get(Counter::DfsEdgeVisits),
        s.get(Counter::ThresholdProbes),
        s.get(Counter::MergePasses),
        s.get(Counter::AdjRebuilds),
        s.get(Counter::EpochResets),
        s.get(Counter::Peels),
    )
}

struct Case {
    name: &'static str,
    inst: Instance,
}

fn cases() -> Vec<Case> {
    let mut rng = SmallRng::seed_from_u64(0xf1608);
    let mut v = Vec::new();
    for &n in &[32usize, 40] {
        let g = complete_graph(&mut rng, n, n, (1, 10_000));
        v.push(Case {
            name: if n == 32 {
                "complete_n32"
            } else {
                "complete_n40"
            },
            inst: Instance::new(g, n, 1),
        });
    }
    // Fig. 8 campaign shape: up to 400 edges over 32 + 32 nodes.
    let mut g = Graph::new(32, 32);
    for _ in 0..400 {
        g.add_edge(
            rng.gen_range(0..32),
            rng.gen_range(0..32),
            rng.gen_range(1..=10_000),
        );
    }
    v.push(Case {
        name: "dense_n32_m400",
        inst: Instance::new(g, 16, 1),
    });
    v
}

/// Number of WRGP peels for this instance (before synthetic-only steps are
/// dropped from the schedule).
fn peel_count(inst: &Instance) -> usize {
    let norm = normalize(inst);
    let reg = regularize(&norm.graph, inst.effective_k());
    let mut work = reg.graph;
    peel_all_incremental(&mut work, &mut IncrementalMaxMin::new()).len()
}

/// Per-case work counters: cold/incremental OGGP, cold/incremental GGP.
struct CaseWork {
    oggp_cold: Snapshot,
    oggp_incr: Snapshot,
    ggp_cold: Snapshot,
    ggp_incr: Snapshot,
}

fn main() {
    let reps: usize = arg_or("reps", 7);
    let out_path: String = arg_or("out", "BENCH_peeling.json".to_string());
    let jobs: usize = jobs_or(1);

    let cases = cases();

    // Counted work, measured before the timing passes (counting disabled
    // again below) and fanned out over `jobs` threads: thread-local counters
    // make the per-case deltas exact and identical for any jobs value.
    counters::enable();
    let works: Vec<CaseWork> = parallel_map(&cases, jobs, |case| {
        let inst = &case.inst;
        CaseWork {
            oggp_cold: work_of(|| oggp_reference(inst)),
            oggp_incr: work_of(|| oggp(inst)),
            ggp_cold: work_of(|| schedule_with(inst, &kpbs::wrgp::AnyPerfect)),
            ggp_incr: work_of(|| ggp(inst)),
        }
    });
    counters::disable();

    let mut entries = Vec::new();
    row(&[
        "case".into(),
        "algo".into(),
        "cold ms".into(),
        "incr ms".into(),
        "speedup".into(),
    ]);
    for (case, work) in cases.iter().zip(&works) {
        let inst = &case.inst;
        let (oggp_cold_ms, oggp_cold) = time_ms(|| oggp_reference(inst), reps);
        let (oggp_incr_ms, oggp_incr) = time_ms(|| oggp(inst), reps);
        assert_eq!(
            oggp_cold, oggp_incr,
            "incremental OGGP must reproduce the oracle schedule exactly"
        );
        let (ggp_cold_ms, ggp_cold) =
            time_ms(|| schedule_with(inst, &kpbs::wrgp::AnyPerfect), reps);
        let (ggp_incr_ms, ggp_incr) = time_ms(|| ggp(inst), reps);
        ggp_cold.validate(inst).expect("cold GGP schedule valid");
        ggp_incr
            .validate(inst)
            .expect("incremental GGP schedule valid");
        let peels = peel_count(inst);
        let oggp_speedup = oggp_cold_ms / oggp_incr_ms;
        let ggp_speedup = ggp_cold_ms / ggp_incr_ms;
        row(&[
            case.name.into(),
            "oggp".into(),
            format!("{oggp_cold_ms:.2}"),
            format!("{oggp_incr_ms:.2}"),
            format!("{oggp_speedup:.2}x"),
        ]);
        row(&[
            case.name.into(),
            "ggp".into(),
            format!("{ggp_cold_ms:.2}"),
            format!("{ggp_incr_ms:.2}"),
            format!("{ggp_speedup:.2}x"),
        ]);
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"left\": {}, \"right\": {}, \"edges\": {}, \"k\": {}, \"beta\": {},\n",
                "      \"weight_range\": [1, 10000],\n",
                "      \"peels\": {},\n",
                "      \"oggp\": {{ \"cold_ms\": {:.4}, \"incremental_ms\": {:.4}, ",
                "\"speedup\": {:.3}, \"steps\": {}, \"cost\": {}, \"identical\": true }},\n",
                "      \"ggp\": {{ \"cold_ms\": {:.4}, \"incremental_ms\": {:.4}, ",
                "\"speedup\": {:.3}, \"steps\": {}, \"cost\": {} }},\n",
                "      \"work\": {{\n",
                "        \"oggp_cold\": {},\n",
                "        \"oggp_incremental\": {},\n",
                "        \"ggp_cold\": {},\n",
                "        \"ggp_incremental\": {}\n",
                "      }}\n",
                "    }}"
            ),
            case.name,
            inst.graph.left_count(),
            inst.graph.right_count(),
            inst.graph.edge_count(),
            inst.k,
            inst.beta,
            peels,
            oggp_cold_ms,
            oggp_incr_ms,
            oggp_speedup,
            oggp_incr.num_steps(),
            oggp_incr.cost(),
            ggp_cold_ms,
            ggp_incr_ms,
            ggp_speedup,
            ggp_incr.num_steps(),
            ggp_incr.cost(),
            work_json(&work.oggp_cold),
            work_json(&work.oggp_incr),
            work_json(&work.ggp_cold),
            work_json(&work.ggp_incr),
        ));
    }
    let json = format!(
        "{{\n  \"campaign\": \"fig08_large_weights\",\n  \"timing\": \"best of {reps} runs, ms\",\n  \"instances\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write output file");
    println!("wrote {out_path}");
}
