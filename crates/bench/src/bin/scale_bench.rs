//! Scaling study: hierarchical vs flat planning at n = 256 / 1024 / 4096.
//!
//! Generates sparse clustered instances (`kpbs::instances::sparse_clustered`
//! — block-diagonal-plus-noise, the workload hierarchy is built for) at each
//! size, plans them with `kpbs::hier` (auto block count, `⌈√n⌉`) and with
//! flat OGGP up to the largest size flat can finish in reasonable time, and
//! writes `BENCH_scale.json` with:
//!
//! * best-of-`reps` planning wall times for both planners,
//! * the least-squares exponent of `log(time)` vs `log(n)` for each (the
//!   headline claim: hier's fitted exponent stays below 2 and below flat's,
//!   and the absolute speedup over flat widens with n),
//! * the evaluation-ratio price of hierarchy (hier cost / lower bound, flat
//!   cost / lower bound, hier / flat where flat completes).
//!
//! Every hierarchical schedule is checked with `kpbs::validate` before its
//! row is written. The checked-in copy at the repository root is regenerated
//! with:
//!
//! ```sh
//! cargo run --release -p bench --bin scale_bench
//! ```
//!
//! Options: `--reps N` timing repetitions (default 3), `--jobs N` worker
//! threads for block planning (default 1; the schedule is identical for any
//! value), `--flat-max N` largest size flat OGGP is attempted at (default
//! 4096), `--out PATH` output file (default `BENCH_scale.json`), `--smoke`
//! fast CI mode: n = 256 only, one rep, output to
//! `target/BENCH_scale_smoke.json` so the checked-in file is never
//! clobbered.

use bench::{arg_or, flag, jobs_or, row};
use kpbs::hier::{default_blocks, hier_report, HierConfig};
use kpbs::lower_bound::lower_bound;
use kpbs::oggp::oggp;
use kpbs::{instances, Instance};
use rand::{rngs::SmallRng, SeedableRng};
use std::time::Instant;

/// Backbone width shared by every size: a fixed physical backbone is the
/// paper's setting, and it keeps the planners' step widths comparable as n
/// grows.
const K: usize = 32;
const BETA: u64 = 1;

fn instance_at(n: usize) -> Instance {
    // One seeded generator per size keeps every row reproducible on its own.
    let mut rng = SmallRng::seed_from_u64(0x5ca1e + n as u64);
    let clusters = default_blocks(n);
    instances::sparse_clustered(&mut rng, n, clusters, 8, 0.1, 10_000, K, BETA)
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<R, F: FnMut() -> R>(mut f: F, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical growth
/// exponent. `None` with fewer than two points.
fn fit_exponent(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1e-9).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    Some((n * sxy - sx * sy) / (n * sxx - sx * sx))
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), |x| format!("{x:.4}"))
}

fn main() {
    let smoke = flag("smoke");
    let reps: usize = arg_or("reps", if smoke { 1 } else { 3 });
    let jobs: usize = jobs_or(1);
    let flat_max: usize = arg_or("flat-max", if smoke { 256 } else { 4096 });
    let default_out = if smoke {
        "target/BENCH_scale_smoke.json"
    } else {
        "BENCH_scale.json"
    };
    let out_path: String = arg_or("out", default_out.to_string());
    let sizes: &[usize] = if smoke { &[256] } else { &[256, 1024, 4096] };

    let mut hier_points: Vec<(f64, f64)> = Vec::new();
    let mut flat_points: Vec<(f64, f64)> = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    row(&[
        "n".into(),
        "edges".into(),
        "blocks".into(),
        "hier ms".into(),
        "flat ms".into(),
        "hier/lb".into(),
        "flat/lb".into(),
    ]);
    for &n in sizes {
        let inst = instance_at(n);
        let blocks = default_blocks(n);
        let cfg = HierConfig::new(blocks).with_jobs(jobs);

        let report = hier_report(&inst, &cfg);
        report
            .schedule
            .validate(&inst)
            .unwrap_or_else(|e| panic!("n={n}: hier schedule invalid: {e}"));
        let hier_ms = time_ms(|| hier_report(&inst, &cfg), reps);
        hier_points.push((n as f64, hier_ms));

        let lb = lower_bound(&inst) as f64;
        let hier_cost = report.schedule.cost() as f64;

        let flat = (n <= flat_max).then(|| {
            let s = oggp(&inst);
            s.validate(&inst)
                .unwrap_or_else(|e| panic!("n={n}: flat schedule invalid: {e}"));
            let ms = time_ms(|| oggp(&inst), reps);
            flat_points.push((n as f64, ms));
            (ms, s.cost() as f64)
        });
        let (flat_ms, flat_cost) = match flat {
            Some((ms, c)) => (Some(ms), Some(c)),
            None => (None, None),
        };

        row(&[
            n.to_string(),
            inst.graph.edge_count().to_string(),
            report.blocks.to_string(),
            format!("{hier_ms:.1}"),
            flat_ms.map_or("-".into(), |v| format!("{v:.1}")),
            format!("{:.3}", hier_cost / lb),
            flat_cost.map_or("-".into(), |c| format!("{:.3}", c / lb)),
        ]);
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {}, \"edges\": {}, \"k\": {}, \"beta\": {},\n",
                "      \"blocks\": {}, \"active_pairs\": {}, \"macro_steps\": {},\n",
                "      \"diagonal_fraction\": {:.4},\n",
                "      \"hier_ms\": {:.4}, \"hier_steps\": {}, \"hier_cost\": {}, ",
                "\"hier_valid\": true,\n",
                "      \"lower_bound\": {},\n",
                "      \"hier_ratio\": {:.4},\n",
                "      \"flat_ms\": {}, \"flat_cost\": {},\n",
                "      \"flat_ratio\": {}, \"hier_vs_flat_cost\": {}\n",
                "    }}"
            ),
            n,
            inst.graph.edge_count(),
            K,
            BETA,
            report.blocks,
            report.active_pairs,
            report.macro_steps,
            report.diagonal_fraction,
            hier_ms,
            report.schedule.num_steps(),
            hier_cost,
            lb,
            hier_cost / lb,
            json_opt(flat_ms),
            json_opt(flat_cost),
            json_opt(flat_cost.map(|c| c / lb)),
            json_opt(flat_cost.map(|c| hier_cost / c)),
        ));
    }

    let hier_exp = fit_exponent(&hier_points);
    let flat_exp = fit_exponent(&flat_points);
    let sub_quadratic = hier_exp.map(|e| e < 2.0);
    if let Some(e) = hier_exp {
        println!("hier fitted exponent: {e:.3} (sub-quadratic: {})", e < 2.0);
    }
    if let Some(e) = flat_exp {
        println!("flat fitted exponent: {e:.3}");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"campaign\": \"scale_hier\",\n",
            "  \"family\": \"sparse_clustered(clusters=sqrt(n), per_node=8, ",
            "noise=0.1, max_w=10000, k={}, beta={})\",\n",
            "  \"timing\": \"best of {} runs, ms\",\n",
            "  \"jobs\": {},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"hier_fitted_exponent\": {},\n",
            "  \"flat_fitted_exponent\": {},\n",
            "  \"sub_quadratic\": {}\n",
            "}}\n"
        ),
        K,
        BETA,
        reps,
        jobs,
        entries.join(",\n"),
        json_opt(hier_exp),
        json_opt(flat_exp),
        sub_quadratic.map_or("null".into(), |b| b.to_string()),
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
