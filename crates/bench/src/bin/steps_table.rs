//! In-text claim of Section 5.2: "OGGP algorithm has 50% less steps of
//! communication" than GGP (yet the same total time, because the barriers
//! are cheap). This harness measures the step-count ratio on both the
//! testbed workloads (Figs 10–11) and the random-graph campaign (Fig 7).
//!
//! ```sh
//! cargo run --release -p bench --bin steps_table
//! ```

use bench::{arg_or, f2, row};
use kpbs::stats::{run_campaign, CampaignConfig, KChoice};
use kpbs::traffic::TickScale;
use kpbs::{ggp, oggp, Platform, TrafficMatrix};
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let trials: usize = arg_or("trials", 300);

    println!("Testbed workloads (10x10 all-to-all, sizes U[10,50] MB):");
    row(&[
        "k".into(),
        "GGP steps".into(),
        "OGGP steps".into(),
        "ratio".into(),
    ]);
    for k in [3, 5, 7] {
        let platform = Platform::testbed(k);
        let mut rng = SmallRng::seed_from_u64(500 + k as u64);
        let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 50);
        let (inst, _) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
        let sg = ggp(&inst);
        let so = oggp(&inst);
        row(&[
            k.to_string(),
            sg.num_steps().to_string(),
            so.num_steps().to_string(),
            f2(sg.num_steps() as f64 / so.num_steps() as f64),
        ]);
    }

    println!("\nRandom-graph campaign (Fig 7 workload, {trials} trials/point):");
    row(&["k".into(), "avg GGP/OGGP step ratio".into(), "max".into()]);
    for k in [1, 2, 4, 8, 16] {
        let cfg = CampaignConfig {
            trials,
            max_nodes_per_side: 20,
            max_edges: 400,
            weight_range: (1, 20),
            beta: 1,
            k: KChoice::Fixed(k),
            seed: 90 + k as u64,
        };
        let r = run_campaign(&cfg);
        row(&[k.to_string(), f2(r.step_ratio.mean), f2(r.step_ratio.max)]);
    }
}
