//! Heterogeneous-platform campaign: plan and execute over topologies with
//! per-bottleneck preemption bounds, against the heterogeneity-aware lower
//! bound, with and without fault injection.
//!
//! Scenarios (each seeded, fully deterministic):
//!
//! * `homogeneous` — the paper's two-cluster platform expressed as a
//!   [`kpbs::Topology`]; planning through the topology path is asserted
//!   byte-identical to the [`kpbs::Platform`] oracle before anything runs.
//! * `star` — per-node NIC speeds drawn from a seeded range, one shared
//!   backbone (Marchal-style star).
//! * `two_backbone` — a fast and a slow cluster pair with disjoint
//!   backbones, each planned under its own `k_b`.
//!
//! Every scenario runs fault-free and, in the faulty arm, under a seeded
//! [`redistexec::FaultPlan`] with per-node NIC slowdowns and per-link
//! degradations. The gate fails (exit 1) on any validation error,
//! delivery-invariant violation, or a schedule whose cost beats its lower
//! bound. Results land in `BENCH_hetero.json` (cost-vs-bound ratios,
//! executed virtual seconds, fault counts).
//!
//! ```sh
//! cargo run --release -p bench --bin hetero_bench              # full campaign
//! cargo run --release -p bench --bin hetero_bench -- --smoke   # CI slice
//! cargo run --release -p bench --bin hetero_bench -- --out X   # custom path
//! ```

use bench::{arg_or, flag};
use kpbs::traffic::TickScale;
use kpbs::{oggp, plan_topology, Platform, TopoAlgo, Topology, TrafficMatrix};
use rand::{rngs::SmallRng, SeedableRng};
use redistexec::{plan_and_execute_topo, ExecConfig, FaultPlan, FaultSpec, SimTransport};

const BETA: f64 = 0.05;

struct ScenarioResult {
    name: String,
    faulty: bool,
    senders: usize,
    receivers: usize,
    links: usize,
    link_ks: Vec<usize>,
    plan_steps: usize,
    cost_ticks: u64,
    lower_bound_ticks: u64,
    ratio: f64,
    exec_seconds: f64,
    faults_injected: u64,
    replans: u64,
}

fn die(msg: &str) -> ! {
    eprintln!("hetero_bench: {msg}");
    std::process::exit(1);
}

/// Runs one scenario end to end: plan, check the bound, execute (fault-free
/// or under the seeded fault plan), verify delivery.
fn run_scenario(
    name: &str,
    topo: &Topology,
    traffic: &TrafficMatrix,
    faulty: bool,
    fault_seed: u64,
) -> ScenarioResult {
    topo.validate()
        .unwrap_or_else(|e| die(&format!("{name}: invalid topology: {e}")));
    let plan = plan_topology(traffic, topo, BETA, TickScale::MILLIS, TopoAlgo::Oggp)
        .unwrap_or_else(|e| die(&format!("{name}: planning failed: {e}")));
    plan.schedule
        .validate(&plan.instance)
        .unwrap_or_else(|e| die(&format!("{name}: composed schedule invalid: {e}")));
    if plan.schedule.cost() < plan.lower_bound {
        die(&format!(
            "{name}: cost {} beats the lower bound {}",
            plan.schedule.cost(),
            plan.lower_bound
        ));
    }

    let faults = if faulty {
        let spec = FaultSpec {
            transients: 4,
            node_drops: 1,
            slowdowns: 1,
            nic_slowdowns: 2,
            link_degradations: 2,
            links: topo.links.len(),
            ..FaultSpec::default()
        };
        FaultPlan::generate(fault_seed, topo.senders(), topo.receivers(), &spec)
    } else {
        FaultPlan::none()
    };
    let transport = SimTransport::for_topology(topo)
        .unwrap_or_else(|e| die(&format!("{name}: transport: {e}")));
    let (_, report) = plan_and_execute_topo(
        traffic,
        topo,
        BETA,
        TickScale::MILLIS,
        transport,
        faults,
        ExecConfig::default(),
    )
    .unwrap_or_else(|e| die(&format!("{name}: execution failed: {e}")));
    report
        .verify_against(traffic)
        .unwrap_or_else(|e| die(&format!("{name}: delivery invariant violated: {e}")));
    for rec in &report.plans {
        rec.schedule
            .validate(&rec.instance)
            .unwrap_or_else(|e| die(&format!("{name}: spliced schedule invalid: {e}")));
    }

    let ratio = if plan.lower_bound > 0 {
        plan.schedule.cost() as f64 / plan.lower_bound as f64
    } else {
        1.0
    };
    ScenarioResult {
        name: name.to_string(),
        faulty,
        senders: topo.senders(),
        receivers: topo.receivers(),
        links: topo.links.len(),
        link_ks: topo.link_ks(),
        plan_steps: plan.schedule.num_steps(),
        cost_ticks: plan.schedule.cost(),
        lower_bound_ticks: plan.lower_bound,
        ratio,
        exec_seconds: report.total_seconds,
        faults_injected: report.faults_injected,
        replans: report.replans,
    }
}

fn main() {
    let out: String = arg_or("out", "BENCH_hetero.json".to_string());
    let smoke = flag("smoke");

    // Scenario shapes. Smoke keeps one seed per scenario; the full
    // campaign sweeps several fault seeds.
    let n = if smoke { 4 } else { 6 };
    let fault_seeds: &[u64] = if smoke { &[11] } else { &[11, 12, 13, 14] };

    let mut rng = SmallRng::seed_from_u64(0x7e7e);

    // Homogeneous oracle: the two-cluster topology must plan byte-identically
    // to the Platform path before it is allowed into the campaign.
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let homo = Topology::from_platform(&platform);
    let homo_traffic = kpbs::instances::routable_traffic(&mut rng, &homo, 20);
    {
        let plan = plan_topology(
            &homo_traffic,
            &homo,
            BETA,
            TickScale::MILLIS,
            TopoAlgo::Oggp,
        )
        .unwrap_or_else(|e| die(&format!("homogeneous: planning failed: {e}")));
        let (inst, endpoints) = homo_traffic.to_instance(&platform, BETA, TickScale::MILLIS);
        if plan.schedule != oggp(&inst) || plan.endpoints != endpoints {
            die("homogeneous topology plan diverged from the Platform oracle");
        }
    }

    let star = kpbs::instances::star_topology(&mut rng, n, n, 40.0, 160.0, 250.0);
    let star_traffic = kpbs::instances::routable_traffic(&mut rng, &star, 20);

    let twob = kpbs::instances::two_backbone_topology(n / 2, 100.0, 40.0, 200.0, 60.0);
    let twob_traffic = kpbs::instances::routable_traffic(&mut rng, &twob, 20);

    let scenarios: [(&str, &Topology, &TrafficMatrix); 3] = [
        ("homogeneous", &homo, &homo_traffic),
        ("star", &star, &star_traffic),
        ("two_backbone", &twob, &twob_traffic),
    ];

    let mut results: Vec<ScenarioResult> = Vec::new();
    for (name, topo, traffic) in scenarios {
        results.push(run_scenario(name, topo, traffic, false, 0));
        for &seed in fault_seeds {
            results.push(run_scenario(name, topo, traffic, true, seed));
        }
    }

    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            let ks: Vec<String> = r.link_ks.iter().map(|k| k.to_string()).collect();
            format!(
                "    {{\n      \"scenario\": \"{}\",\n      \"faulty\": {},\n      \
                 \"senders\": {},\n      \"receivers\": {},\n      \"links\": {},\n      \
                 \"link_ks\": [{}],\n      \"plan_steps\": {},\n      \
                 \"cost_ticks\": {},\n      \"lower_bound_ticks\": {},\n      \
                 \"ratio\": {:.6},\n      \"exec_seconds\": {:.6},\n      \
                 \"faults_injected\": {},\n      \"replans\": {}\n    }}",
                r.name,
                r.faulty,
                r.senders,
                r.receivers,
                r.links,
                ks.join(", "),
                r.plan_steps,
                r.cost_ticks,
                r.lower_bound_ticks,
                r.ratio,
                r.exec_seconds,
                r.faults_injected,
                r.replans,
            )
        })
        .collect();
    let worst = results.iter().map(|r| r.ratio).fold(1.0f64, f64::max);
    let json = format!(
        "{{\n  \"campaign\": \"hetero_topologies_v1\",\n  \"smoke\": {smoke},\n  \
         \"beta_seconds\": {BETA:.4},\n  \"worst_ratio\": {worst:.6},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );

    if smoke {
        // CI slice: validate everything (already done above), print the
        // table, leave the checked-in full-campaign baseline untouched.
        print!("{json}");
        eprintln!(
            "hetero_bench: smoke slice passed ({} runs, worst ratio {worst:.4})",
            results.len()
        );
    } else {
        std::fs::write(&out, &json).expect("write campaign file");
        print!("{json}");
        eprintln!(
            "hetero_bench: {} runs verified, worst ratio {worst:.4} -> {out}",
            results.len()
        );
    }
}
