//! In-text claim of Section 5.2: "The brute-force approach does not behave
//! deterministically. When conducting several time the same experiments we
//! see a time variation of up to 10 percents. [...] our approach on the
//! opposite behaves deterministically."
//!
//! Repeats both arms of the testbed experiment over many seeds and reports
//! the spread.
//!
//! ```sh
//! cargo run --release -p bench --bin determinism
//! ```

use bench::{arg_or, row};
use flowsim::{brute_force_time, scheduled_time, NetworkSpec, SimConfig, TcpModel};
use kpbs::traffic::TickScale;
use kpbs::{oggp, Platform, TrafficMatrix};
use rand::{rngs::SmallRng, SeedableRng};

fn spread(xs: &[f64]) -> (f64, f64, f64) {
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (min, mean, max)
}

fn main() {
    let runs: u64 = arg_or("runs", 15);
    let k: usize = arg_or("k", 5);
    let platform = Platform::testbed(k);
    let spec = NetworkSpec::from_platform(&platform);
    let mut rng = SmallRng::seed_from_u64(77);
    let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 40);
    let (inst, endpoints) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
    let schedule = oggp(&inst);

    let mut brute = Vec::new();
    let mut sched = Vec::new();
    for seed in 0..runs {
        let cfg = SimConfig {
            tcp: TcpModel::default(),
            seed,
            record_trace: false,
        };
        brute.push(brute_force_time(&traffic, &spec, &cfg).total_seconds);
        sched.push(
            scheduled_time(&traffic, &inst, &endpoints, &schedule, &spec, 0.05, &cfg).total_seconds,
        );
    }

    let (bmin, bmean, bmax) = spread(&brute);
    let (smin, smean, smax) = spread(&sched);
    println!("testbed k = {k}, {runs} runs with different seeds:");
    row(&[
        "arm".into(),
        "min (s)".into(),
        "mean (s)".into(),
        "max (s)".into(),
        "variation".into(),
    ]);
    row(&[
        "brute".into(),
        format!("{bmin:.2}"),
        format!("{bmean:.2}"),
        format!("{bmax:.2}"),
        format!("{:.1}%", (bmax - bmin) / bmean * 100.0),
    ]);
    row(&[
        "OGGP".into(),
        format!("{smin:.2}"),
        format!("{smean:.2}"),
        format!("{smax:.2}"),
        format!("{:.1}%", (smax - smin) / smean * 100.0),
    ]);
    assert_eq!(
        smin, smax,
        "scheduled arm must be bit-for-bit deterministic"
    );
    println!("\nscheduled arm: identical across all seeds (deterministic), as the paper observed");
}
