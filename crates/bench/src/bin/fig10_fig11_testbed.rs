//! Figures 10 and 11: brute-force TCP vs GGP vs OGGP on the testbed.
//!
//! The paper's real-world experiment: two 10-node clusters, NICs shaped to
//! `100/k` Mbit/s, 100 Mbit/s interconnect. Message sizes uniform in
//! [10, n] MB; total redistribution time plotted as n grows. Run with
//! `--k 3` (Figure 10) or `--k 7` (Figure 11); default prints both.
//!
//! Expected shape: GGP ≈ OGGP, both 5–20 % under brute force, with the gap
//! growing with k.
//!
//! ```sh
//! cargo run --release -p bench --bin fig10_fig11_testbed -- --k 3
//! ```

use bench::{arg_or, f2, flag, row};
use flowsim::{brute_force_time, scheduled_time, NetworkSpec, SimConfig, TcpModel};
use kpbs::traffic::TickScale;
use kpbs::{ggp, oggp, Platform, TrafficMatrix};
use rand::{rngs::SmallRng, SeedableRng};

fn figure(k: usize, seeds: u64, beta: f64, csv: bool) {
    let platform = Platform::testbed(k);
    let spec = NetworkSpec::from_platform(&platform);
    if csv {
        println!("k,n_mb,brute_s,ggp_s,oggp_s,ggp_gain_pct,oggp_gain_pct,ggp_steps,oggp_steps");
    } else {
        println!(
            "\nFigure {}: testbed with k = {k} (NICs {:.1} Mbit/s)",
            if k == 3 { "10" } else { "11" },
            platform.t1
        );
        row(&[
            "n (MB)".into(),
            "brute (s)".into(),
            "GGP (s)".into(),
            "OGGP (s)".into(),
            "GGP gain".into(),
            "OGGP gain".into(),
            "steps G/O".into(),
        ]);
    }
    for n in (10..=100).step_by(10) {
        // Average the brute force over several seeds (it jitters); the
        // scheduled arms are deterministic so one run suffices.
        let mut rng = SmallRng::seed_from_u64(1000 + n);
        let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, n);
        let (inst, endpoints) = traffic.to_instance(&platform, beta, TickScale::MILLIS);
        let sg = ggp(&inst);
        let so = oggp(&inst);

        let mut brute_sum = 0.0;
        for seed in 0..seeds {
            let cfg = SimConfig {
                tcp: TcpModel::default(),
                seed,
                record_trace: false,
            };
            brute_sum += brute_force_time(&traffic, &spec, &cfg).total_seconds;
        }
        let brute = brute_sum / seeds as f64;

        let lossy = SimConfig {
            tcp: TcpModel::default(),
            seed: 0,
            record_trace: false,
        };
        let tg =
            scheduled_time(&traffic, &inst, &endpoints, &sg, &spec, beta, &lossy).total_seconds;
        let to =
            scheduled_time(&traffic, &inst, &endpoints, &so, &spec, beta, &lossy).total_seconds;

        let gain = |t: f64| (1.0 - t / brute) * 100.0;
        if csv {
            println!(
                "{k},{n},{brute},{tg},{to},{},{},{},{}",
                gain(tg),
                gain(to),
                sg.num_steps(),
                so.num_steps()
            );
        } else {
            row(&[
                n.to_string(),
                f2(brute),
                f2(tg),
                f2(to),
                format!("{:.1}%", gain(tg)),
                format!("{:.1}%", gain(to)),
                format!("{}/{}", sg.num_steps(), so.num_steps()),
            ]);
        }
    }
}

fn main() {
    let k: usize = arg_or("k", 0);
    let seeds: u64 = arg_or("seeds", 3);
    let beta: f64 = arg_or("beta", 0.05);
    let csv = flag("csv");
    if k == 0 {
        figure(3, seeds, beta, csv);
        figure(7, seeds, beta, csv);
    } else {
        figure(k, seeds, beta, csv);
    }
}
