//! Criterion benches of the schedulers themselves — the paper's claim that
//! GGP and OGGP have "a low complexity that makes them useful in practice"
//! (all simulated inputs ran "under one second").
//!
//! Benchmarks GGP, OGGP and the baselines across graph sizes, plus the two
//! pipeline stages (regularisation, lower bound) in isolation.

use bipartite::generate::{random_graph, GraphParams};
use bipartite::Graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpbs::ggp::ggp_seeded;
use kpbs::{baselines, coloring, exact, ggp, lower_bound, oggp, regularize, Instance};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn fixture(nodes: usize, edges: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let params = GraphParams {
        max_nodes_per_side: nodes,
        max_edges: edges,
        weight_range: (1, 20),
    };
    random_graph(&mut rng, &params)
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    for &(nodes, edges) in &[(10usize, 50usize), (20, 200), (20, 400), (40, 800)] {
        let g = fixture(nodes, edges, 42);
        let k = (g.left_count().min(g.right_count()) / 2).max(1);
        let inst = Instance::new(g, k, 1);
        group.bench_with_input(
            BenchmarkId::new("ggp", format!("{nodes}n_{edges}m")),
            &inst,
            |b, inst| b.iter(|| black_box(ggp(inst))),
        );
        group.bench_with_input(
            BenchmarkId::new("oggp", format!("{nodes}n_{edges}m")),
            &inst,
            |b, inst| b.iter(|| black_box(oggp(inst))),
        );
        group.bench_with_input(
            BenchmarkId::new("list", format!("{nodes}n_{edges}m")),
            &inst,
            |b, inst| b.iter(|| black_box(baselines::nonpreemptive_list(inst))),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{nodes}n_{edges}m")),
            &inst,
            |b, inst| b.iter(|| black_box(baselines::preemptive_greedy(inst))),
        );
        group.bench_with_input(
            BenchmarkId::new("ggp_seeded", format!("{nodes}n_{edges}m")),
            &inst,
            |b, inst| b.iter(|| black_box(ggp_seeded(inst))),
        );
        group.bench_with_input(
            BenchmarkId::new("coloring", format!("{nodes}n_{edges}m")),
            &inst,
            |b, inst| b.iter(|| black_box(coloring::coloring_schedule(inst))),
        );
    }
    group.finish();
}

fn bench_exact_solver(c: &mut Criterion) {
    // The exponential reference solver on increasingly hard tiny instances:
    // how far the memoised branch-and-bound stretches.
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    for &(m, wmax) in &[(3usize, 3u64), (4, 4), (5, 4)] {
        let mut g = Graph::new(3, 3);
        let mut rng = SmallRng::seed_from_u64(m as u64);
        use rand::Rng;
        let mut used = std::collections::HashSet::new();
        let mut added = 0;
        while added < m {
            let l = rng.gen_range(0..3);
            let r = rng.gen_range(0..3);
            if used.insert((l, r)) {
                g.add_edge(l, r, rng.gen_range(1..=wmax));
                added += 1;
            }
        }
        let inst = Instance::new(g, 2, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}e_w{wmax}")),
            &inst,
            |b, inst| b.iter(|| black_box(exact::optimal_cost(inst, exact::Limits::default()))),
        );
    }
    group.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    let g = fixture(20, 400, 7);
    let k = (g.left_count().min(g.right_count()) / 2).max(1);
    let inst = Instance::new(g.clone(), k, 1);
    group.bench_function("regularize", |b| {
        b.iter(|| black_box(regularize::regularize(&g, k)))
    });
    group.bench_function("lower_bound", |b| b.iter(|| black_box(lower_bound(&inst))));
    group.finish();
}

fn bench_k_sensitivity(c: &mut Criterion) {
    // The regularisation adds ~|V1|+|V2|-2k virtual nodes, so small k means
    // bigger peeled graphs; quantify the cost of that design choice.
    let mut group = c.benchmark_group("oggp_vs_k");
    let g = fixture(20, 300, 21);
    let kmax = g.left_count().min(g.right_count());
    for k in [1, (kmax / 2).max(1), kmax] {
        let inst = Instance::new(g.clone(), k, 1);
        group.bench_with_input(BenchmarkId::from_parameter(k), &inst, |b, inst| {
            b.iter(|| black_box(oggp(inst)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_pipeline_stages,
    bench_k_sensitivity,
    bench_exact_solver
);
criterion_main!(benches);
