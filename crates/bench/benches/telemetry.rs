//! Criterion benches of telemetry overhead on the real scheduler.
//!
//! The claim under test: disabled telemetry is near-free. Each OGGP run is
//! benchmarked three ways — telemetry off (the shipping default), work
//! counters on, and span recording on — so the cost of the disabled fast
//! path (one relaxed atomic load per instrumentation site) shows up as the
//! gap, if any, between `off` and the baseline-free pipeline.

use bipartite::generate::complete_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpbs::{oggp, Instance};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;
use telemetry::{counters, spans};

fn fixed_instance(n: usize) -> Instance {
    let mut rng = SmallRng::seed_from_u64(77);
    let g = complete_graph(&mut rng, n, n, (1, 1000));
    Instance::new(g, n / 2, 1)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    for n in [8usize, 16] {
        let inst = fixed_instance(n);
        counters::disable();
        spans::disable();
        group.bench_with_input(BenchmarkId::new("oggp_off", n), &inst, |b, inst| {
            b.iter(|| black_box(oggp(inst)))
        });
        counters::enable();
        group.bench_with_input(BenchmarkId::new("oggp_counters_on", n), &inst, |b, inst| {
            b.iter(|| black_box(oggp(inst)))
        });
        counters::disable();
        spans::enable();
        group.bench_with_input(BenchmarkId::new("oggp_spans_on", n), &inst, |b, inst| {
            b.iter(|| {
                let out = black_box(oggp(inst));
                spans::drain_thread(); // keep the buffer from growing unboundedly
                out
            })
        });
        spans::disable();
        spans::drain_thread();
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
