//! Pins the flat-CSR layout win: the production matching core (flat
//! `offsets`/`targets` CSR adjacency + epoch-stamped search scratch) against
//! the layout it replaced — per-call `Vec<Vec<(u32, EdgeId)>>` adjacency
//! with a freshly allocated `Vec<bool>` visited set cleared in O(n) after
//! every successful augmentation. The baseline is reimplemented locally so
//! the comparison survives in the tree after the old layout is gone.

use bipartite::generate::{complete_graph, random_graph, GraphParams};
use bipartite::{hopcroft_karp, EdgeId, Graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

const NIL: u32 = u32::MAX;

/// The pre-CSR layout: nested adjacency rebuilt per call, visited
/// re-allocated per pass and fully cleared after each augment.
fn nested_maximum_matching(g: &Graph) -> usize {
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new(); nl];
    for (id, l, r, _) in g.edges() {
        adj[l].push((r as u32, id));
    }
    let mut match_left = vec![NIL; nl];
    let mut match_right = vec![NIL; nr];
    loop {
        let mut augmented = false;
        let mut visited = vec![false; nl];
        for l in 0..nl {
            if match_left[l] != NIL {
                continue;
            }
            if nested_kuhn(l, &adj, &mut match_left, &mut match_right, &mut visited) {
                augmented = true;
                visited.iter_mut().for_each(|v| *v = false);
            }
        }
        if !augmented {
            break;
        }
    }
    match_left.iter().filter(|&&x| x != NIL).count()
}

fn nested_kuhn(
    l: usize,
    adj: &[Vec<(u32, EdgeId)>],
    match_left: &mut [u32],
    match_right: &mut [u32],
    visited: &mut [bool],
) -> bool {
    if visited[l] {
        return false;
    }
    visited[l] = true;
    for &(r, _) in &adj[l] {
        let owner = match_right[r as usize];
        if owner == NIL || nested_kuhn(owner as usize, adj, match_left, match_right, visited) {
            match_left[l] = r;
            match_right[r as usize] = l as u32;
            return true;
        }
    }
    false
}

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_vs_nested");
    for &(nodes, edges) in &[(16usize, 200usize), (32, 600), (64, 1600)] {
        let mut rng = SmallRng::seed_from_u64(21);
        let params = GraphParams {
            max_nodes_per_side: nodes,
            max_edges: edges,
            weight_range: (1, 100),
        };
        let g = random_graph(&mut rng, &params);
        let label = format!("{nodes}n_{edges}m");
        group.bench_with_input(BenchmarkId::new("csr", &label), &g, |b, g| {
            b.iter(|| black_box(hopcroft_karp::maximum_matching(g).len()))
        });
        group.bench_with_input(BenchmarkId::new("nested", &label), &g, |b, g| {
            b.iter(|| black_box(nested_maximum_matching(g)))
        });
    }
    // Dense case amplifying the per-call allocation and O(n) clears.
    for n in [24usize, 48] {
        let mut rng = SmallRng::seed_from_u64(22);
        let g = complete_graph(&mut rng, n, n, (1, 1000));
        group.bench_with_input(
            BenchmarkId::new("csr", format!("complete_{n}")),
            &g,
            |b, g| b.iter(|| black_box(hopcroft_karp::maximum_matching(g).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("nested", format!("complete_{n}")),
            &g,
            |b, g| b.iter(|| black_box(nested_maximum_matching(g))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
