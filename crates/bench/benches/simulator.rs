//! Criterion benches of the flowsim substrate: the max–min allocator and
//! full brute-force / scheduled testbed runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowsim::{brute_force_time, fairshare, scheduled_time, NetworkSpec, SimConfig, TcpModel};
use kpbs::traffic::TickScale;
use kpbs::{oggp, Platform, TrafficMatrix};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::hint::black_box;

fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare");
    for n in [10usize, 100, 400] {
        let mut rng = SmallRng::seed_from_u64(5);
        let nodes = 20;
        let flows: Vec<(usize, usize)> = (0..n)
            .map(|_| (rng.gen_range(0..nodes), rng.gen_range(0..nodes)))
            .collect();
        let caps = vec![100.0; nodes];
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, flows| {
            b.iter(|| black_box(fairshare::max_min_rates(flows, &caps, &caps, 500.0)))
        });
    }
    group.finish();
}

fn bench_testbed_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed");
    group.sample_size(20);
    let platform = Platform::testbed(5);
    let spec = NetworkSpec::from_platform(&platform);
    let mut rng = SmallRng::seed_from_u64(6);
    let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 30);
    let cfg = SimConfig {
        tcp: TcpModel::default(),
        seed: 1,
        record_trace: false,
    };
    group.bench_function("brute_force_100_flows", |b| {
        b.iter(|| black_box(brute_force_time(&traffic, &spec, &cfg)))
    });

    let (inst, endpoints) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
    let schedule = oggp(&inst);
    group.bench_function("scheduled_oggp", |b| {
        b.iter(|| {
            black_box(scheduled_time(
                &traffic, &inst, &endpoints, &schedule, &spec, 0.05, &cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fairshare, bench_testbed_runs);
criterion_main!(benches);
