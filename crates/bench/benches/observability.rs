//! Criterion benches of the observability layer's hot paths.
//!
//! The claims under test: registry updates are cheap enough to sit on the
//! serving fast path (a counter bump is one atomic add, a summary
//! observation two atomic-indexed histogram records), a flight-recorder
//! push costs one ticket fetch-add plus one uncontended slot lock, and the
//! disabled path — a registry that exists but is never scraped — adds
//! nothing beyond those updates (there is no background thread; windows
//! only advance on scrape).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use telemetry::flight::{FlightOutcome, FlightRecord, FlightRecorder};
use telemetry::metrics::{Registry, RegistryConfig};

fn bench_registry_updates(c: &mut Criterion) {
    let registry = Registry::new(RegistryConfig {
        auto_advance: false,
        ..RegistryConfig::default()
    });
    let counter = registry.counter("bench_requests_total", "Bench counter.", &[]);
    let labelled = registry.counter(
        "bench_outcomes_total",
        "Bench labelled counter.",
        &[("outcome", "planned")],
    );
    let gauge = registry.gauge("bench_queue_depth", "Bench gauge.", &[]);
    let summary = registry.summary("bench_service_us", "Bench summary.", &[]);

    let mut group = c.benchmark_group("observability");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("counter_labelled_add", |b| {
        b.iter(|| labelled.add(black_box(3)))
    });
    group.bench_function("gauge_set", |b| b.iter(|| gauge.set(black_box(42.0))));
    group.bench_function("summary_observe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 7) % 10_000;
            summary.observe(black_box(v));
        })
    });
    group.finish();
}

fn bench_flight_push(c: &mut Criterion) {
    let ring = FlightRecorder::new(1024);
    let mut rec = FlightRecord::new(1, FlightOutcome::Planned);
    rec.bytes = 1_000_000;
    rec.queue_wait_us = 12;
    rec.plan_us = 340;

    let mut group = c.benchmark_group("observability");
    group.bench_function("flight_push", |b| {
        b.iter(|| {
            rec.rid += 1;
            ring.push(black_box(rec));
        })
    });
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    // A populated registry of realistic size: the full redistd family set
    // is ~20 series. Rendering happens per scrape, not per request, but it
    // must stay cheap enough for aggressive scrape intervals.
    let registry = Registry::new(RegistryConfig {
        auto_advance: false,
        ..RegistryConfig::default()
    });
    for outcome in ["planned", "cache_hit", "shed_queue_full", "error"] {
        registry
            .counter(
                "bench_requests_total",
                "Requests by outcome.",
                &[("outcome", outcome)],
            )
            .add(17);
    }
    for name in ["bench_service_us", "bench_queue_wait_us", "bench_plan_us"] {
        let s = registry.summary(name, "Bench summary.", &[]);
        for v in 0..1000u64 {
            s.observe(v * 13 % 7919);
        }
    }
    for name in ["bench_queue_depth", "bench_workers", "bench_cache_entries"] {
        registry.gauge(name, "Bench gauge.", &[]).set(8.0);
    }

    let mut group = c.benchmark_group("observability");
    group.bench_function("registry_render", |b| {
        b.iter(|| black_box(registry.render()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_registry_updates,
    bench_flight_push,
    bench_render
);
criterion_main!(benches);
