//! Criterion benches of the plan cache's serving-path operations.
//!
//! The claim under test: after the lock-free read-path rework, a cache hit
//! costs one epoch pin (a CAS into a reader slot), one atomic load of the
//! shard's published table, a linear probe, and an `Arc` clone — no shard
//! mutex — so concurrent readers scale with cores instead of serializing.
//! The write path (insert + second-chance-clock eviction) stays behind a
//! per-shard mutex and is benched for its amortized O(1) eviction.

use criterion::{criterion_group, criterion_main, Criterion};
use redistd::cache::ShardedLru;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Spread keys like fingerprints do: high-entropy 128-bit values.
fn key(i: u64) -> u128 {
    let x = (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((x as u128) << 64) | (x ^ 0xdead_beef) as u128
}

fn bench_hit_path(c: &mut Criterion) {
    let cache: ShardedLru<Vec<u8>> = ShardedLru::new(1024, 8);
    for i in 0..512 {
        cache.insert(key(i), Arc::new(vec![i as u8; 256]));
    }

    let mut group = c.benchmark_group("plan_cache");
    group.bench_function("get_hit_uncontended", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.get(black_box(key(i))).is_some())
        })
    });
    group.bench_function("get_miss_uncontended", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.get(black_box(key(1_000_000 + i))).is_none())
        })
    });
    group.finish();
}

/// Hit path with concurrent reader threads hammering the same shards in
/// the background — the scenario the lock-free path exists for. The
/// measured thread's latency should stay close to the uncontended number.
fn bench_hit_path_contended(c: &mut Criterion) {
    let cache: Arc<ShardedLru<Vec<u8>>> = Arc::new(ShardedLru::new(1024, 8));
    for i in 0..512 {
        cache.insert(key(i), Arc::new(vec![i as u8; 256]));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = t * 131;
                while !stop.load(Ordering::Relaxed) {
                    i = (i + 1) % 512;
                    black_box(cache.get(key(i)));
                }
            })
        })
        .collect();

    let mut group = c.benchmark_group("plan_cache");
    group.bench_function("get_hit_3_background_readers", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.get(black_box(key(i))).is_some())
        })
    });
    group.finish();

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
}

/// Write path at capacity: every insert evicts via the second-chance
/// clock. Amortized O(1) — each insert pops at most a bounded number of
/// ring entries on average, independent of capacity.
fn bench_insert_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache");
    for capacity in [256usize, 4096] {
        let cache: ShardedLru<Vec<u8>> = ShardedLru::new(capacity, 8);
        for i in 0..capacity as u64 {
            cache.insert(key(i), Arc::new(vec![0u8; 64]));
        }
        let mut i = capacity as u64;
        group.bench_function(format!("insert_evict_cap{capacity}"), |b| {
            b.iter(|| {
                i += 1;
                cache.insert(black_box(key(i)), Arc::new(vec![0u8; 64]));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hit_path,
    bench_hit_path_contended,
    bench_insert_evict
);
criterion_main!(benches);
