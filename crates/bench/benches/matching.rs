//! Criterion benches of the matching substrate: Hopcroft–Karp versus the
//! two bottleneck (max–min) matching implementations — the paper's Figure 6
//! incremental algorithm and the threshold binary search OGGP actually uses.

use bipartite::generate::{complete_graph, random_graph, GraphParams};
use bipartite::{bottleneck, greedy, hopcroft_karp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn bench_maximum_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximum_matching");
    for &(nodes, edges) in &[(10usize, 100usize), (20, 400), (50, 1000)] {
        let mut rng = SmallRng::seed_from_u64(3);
        let params = GraphParams {
            max_nodes_per_side: nodes,
            max_edges: edges,
            weight_range: (1, 100),
        };
        let g = random_graph(&mut rng, &params);
        let label = format!("{nodes}n_{edges}m");
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", &label), &g, |b, g| {
            b.iter(|| black_box(hopcroft_karp::maximum_matching(g)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", &label), &g, |b, g| {
            b.iter(|| black_box(greedy::maximal_matching(g)))
        });
    }
    group.finish();
}

fn bench_bottleneck(c: &mut Criterion) {
    let mut group = c.benchmark_group("bottleneck_matching");
    for n in [8usize, 16, 32] {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = complete_graph(&mut rng, n, n, (1, 1000));
        group.bench_with_input(BenchmarkId::new("threshold_search", n), &g, |b, g| {
            b.iter(|| black_box(bottleneck::max_min_matching(g)))
        });
        group.bench_with_input(BenchmarkId::new("incremental_fig6", n), &g, |b, g| {
            b.iter(|| black_box(bottleneck::max_min_matching_incremental(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maximum_matching, bench_bottleneck);
criterion_main!(benches);
