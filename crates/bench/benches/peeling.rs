//! Cold vs incremental peeling on Figure-8-style large-weight instances
//! (dense graphs, n >= 32, weights U[1, 10000], beta = 1).
//!
//! The `*_cold` entries run the from-scratch oracle pipeline (one fresh
//! matching computation per peel); the `*_incremental` entries run the
//! production entry points backed by `bipartite::MatchingEngine`. OGGP's
//! two variants produce byte-identical schedules, so the ratio is a pure
//! engine speedup. See also `cargo run --release -p bench --bin
//! peel_speedup` for the machine-readable version.

use bipartite::generate::complete_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpbs::ggp::{ggp, schedule_with};
use kpbs::oggp::{oggp, oggp_reference};
use kpbs::wrgp::AnyPerfect;
use kpbs::Instance;
use rand::{rngs::SmallRng, SeedableRng};

fn fig08_instance(n: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = complete_graph(&mut rng, n, n, (1, 10_000));
    Instance::new(g, n, 1)
}

fn bench_peeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("peeling");
    group.sample_size(10);
    for &n in &[32usize, 40] {
        let inst = fig08_instance(n, 0xf1608);
        group.bench_with_input(BenchmarkId::new("oggp_cold", n), &inst, |b, inst| {
            b.iter(|| oggp_reference(inst))
        });
        group.bench_with_input(BenchmarkId::new("oggp_incremental", n), &inst, |b, inst| {
            b.iter(|| oggp(inst))
        });
        group.bench_with_input(BenchmarkId::new("ggp_cold", n), &inst, |b, inst| {
            b.iter(|| schedule_with(inst, &AnyPerfect))
        });
        group.bench_with_input(BenchmarkId::new("ggp_incremental", n), &inst, |b, inst| {
            b.iter(|| ggp(inst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_peeling);
criterion_main!(benches);
