//! Property-based tests of the fluid simulator: fairness, feasibility,
//! conservation, and monotonicity.

use flowsim::fairshare::max_min_rates;
use flowsim::network::BYTES_PER_S_PER_MBPS;
use flowsim::{CapacityProfile, Engine, Flow, NetworkSpec, SimConfig};
use proptest::prelude::*;

/// (sender caps, receiver caps, backbone cap, flow endpoints).
type Setup = (Vec<f64>, Vec<f64>, f64, Vec<(usize, usize)>);

fn setup_strategy() -> impl Strategy<Value = Setup> {
    (1usize..6, 1usize..6).prop_flat_map(|(ns, nr)| {
        let out = proptest::collection::vec(1.0f64..200.0, ns..=ns);
        let in_ = proptest::collection::vec(1.0f64..200.0, nr..=nr);
        let backbone = 1.0f64..500.0;
        let flows = proptest::collection::vec((0..ns, 0..nr), 1..10);
        (out, in_, backbone, flows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn max_min_feasible_positive_pareto((out, in_, backbone, flows) in setup_strategy()) {
        let r = max_min_rates(&flows, &out, &in_, backbone);
        let slack = 1e-6;
        let mut out_sum = vec![0.0; out.len()];
        let mut in_sum = vec![0.0; in_.len()];
        let mut total = 0.0;
        for (f, &(s, d)) in flows.iter().enumerate() {
            prop_assert!(r[f] > 0.0);
            out_sum[s] += r[f];
            in_sum[d] += r[f];
            total += r[f];
        }
        for (s, cap) in out.iter().enumerate() {
            prop_assert!(out_sum[s] <= cap * (1.0 + slack));
        }
        for (d, cap) in in_.iter().enumerate() {
            prop_assert!(in_sum[d] <= cap * (1.0 + slack));
        }
        prop_assert!(total <= backbone * (1.0 + slack));
        // Pareto optimality: every flow crosses a tight constraint.
        for &(s, d) in &flows {
            let tight = out_sum[s] >= out[s] * (1.0 - 1e-6)
                || in_sum[d] >= in_[d] * (1.0 - 1e-6)
                || total >= backbone * (1.0 - 1e-6);
            prop_assert!(tight);
        }
    }

    #[test]
    fn max_min_is_fair((out, in_, backbone, flows) in setup_strategy()) {
        // Max–min property: a flow with a strictly smaller rate than
        // another must cross a constraint that is tight (it could not be
        // raised even by lowering the bigger flow elsewhere — here we check
        // the standard necessary condition: its bottleneck is saturated).
        let r = max_min_rates(&flows, &out, &in_, backbone);
        let mut out_sum = vec![0.0; out.len()];
        let mut in_sum = vec![0.0; in_.len()];
        let mut total = 0.0;
        for (f, &(s, d)) in flows.iter().enumerate() {
            out_sum[s] += r[f];
            in_sum[d] += r[f];
            total += r[f];
        }
        for (f, &(s, d)) in flows.iter().enumerate() {
            let has_smaller_rate_than_max =
                r.iter().any(|&other| other > r[f] * (1.0 + 1e-6));
            if has_smaller_rate_than_max {
                let tight = out_sum[s] >= out[s] * (1.0 - 1e-6)
                    || in_sum[d] >= in_[d] * (1.0 - 1e-6)
                    || total >= backbone * (1.0 - 1e-6);
                prop_assert!(tight, "flow {f} is capped without a reason");
            }
        }
    }

    #[test]
    fn engine_conserves_and_bounds(
        (out, in_, backbone, pairs) in setup_strategy(),
        sizes in proptest::collection::vec(1_000u32..5_000_000, 10),
    ) {
        let spec = NetworkSpec {
            nic_out: out.clone(),
            nic_in: in_.clone(),
            backbone: CapacityProfile::Constant(backbone),
            extra_links: Vec::new(),
            route: Vec::new(),
        };
        let flows: Vec<Flow> = pairs
            .iter()
            .zip(&sizes)
            .map(|(&(s, d), &b)| Flow::new(s, d, b as f64))
            .collect();
        let result = Engine::new(spec, SimConfig::default()).run(&flows);

        // Every flow finishes, no earlier than its solo transfer time and no
        // later than the fully serialised bound.
        let volume: f64 = flows.iter().map(|f| f.bytes).sum();
        // At every instant some constraint is tight, so the aggregate rate
        // is at least the smallest capacity of ANY constraint (senders,
        // receivers, backbone) — hence this serialised upper bound.
        let min_cap_bps = backbone
            .min(out.iter().cloned().fold(f64::INFINITY, f64::min))
            .min(in_.iter().cloned().fold(f64::INFINITY, f64::min))
            * BYTES_PER_S_PER_MBPS;
        for fr in &result.flows {
            let solo = out[fr.flow.src].min(in_[fr.flow.dst]).min(backbone)
                * BYTES_PER_S_PER_MBPS;
            prop_assert!(fr.finish >= fr.flow.bytes / solo * (1.0 - 1e-6));
            prop_assert!(fr.finish <= result.makespan + 1e-9);
        }
        // Aggregate bound: the whole volume through the slowest shared pipe.
        prop_assert!(result.makespan >= volume / (backbone * BYTES_PER_S_PER_MBPS) * (1.0 - 1e-6));
        prop_assert!(result.makespan <= volume / min_cap_bps * (1.0 + 1e-6) + 1.0);
    }
}
