//! Flows: bulk transfers between a sender and a receiver.

use serde::{Deserialize, Serialize};

/// A bulk transfer of `bytes` from sender `src` to receiver `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Sender node index (cluster `C1`).
    pub src: usize,
    /// Receiver node index (cluster `C2`).
    pub dst: usize,
    /// Volume in bytes.
    pub bytes: f64,
}

impl Flow {
    /// Creates a flow; volumes must be positive and finite.
    pub fn new(src: usize, dst: usize, bytes: f64) -> Self {
        assert!(
            bytes > 0.0 && bytes.is_finite(),
            "flow volume must be positive"
        );
        Flow { src, dst, bytes }
    }
}

/// Per-flow outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// The flow.
    pub flow: Flow,
    /// Completion time in seconds from the start of the run.
    pub finish: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_construction() {
        let f = Flow::new(1, 2, 1e6);
        assert_eq!(f.src, 1);
        assert_eq!(f.dst, 2);
        assert_eq!(f.bytes, 1e6);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_volume_rejected() {
        Flow::new(0, 0, 0.0);
    }
}
