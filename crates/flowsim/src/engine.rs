//! The discrete-event loop: advance fluid flows between rate-changing
//! events (flow completions and backbone-profile breakpoints).

use crate::fairshare::max_min_rates_routed;
use crate::flow::{Flow, FlowResult};
use crate::network::{NetworkSpec, BYTES_PER_S_PER_MBPS};
use crate::tcp::TcpModel;
use crate::trace::Trace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use telemetry::counters::{self, Counter};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Transport behaviour (use [`TcpModel::ideal`] for a pure fluid model).
    pub tcp: TcpModel,
    /// Seed for the jitter of contended flows.
    pub seed: u64,
    /// Record a rate trace (costs memory; off by default).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tcp: TcpModel::ideal(),
            seed: 0,
            record_trace: false,
        }
    }
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-flow completion, in input order.
    pub flows: Vec<FlowResult>,
    /// Completion time of the last flow, seconds.
    pub makespan: f64,
    /// Optional rate trace.
    pub trace: Option<Trace>,
}

/// The simulator.
#[derive(Debug, Clone)]
pub struct Engine {
    spec: NetworkSpec,
    config: SimConfig,
}

impl Engine {
    /// Creates an engine over a validated network.
    ///
    /// # Panics
    ///
    /// Panics if the network fails validation.
    pub fn new(spec: NetworkSpec, config: SimConfig) -> Self {
        spec.validate().expect("invalid network spec");
        Engine { spec, config }
    }

    /// The network this engine simulates.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Simulates all `flows` starting simultaneously at time 0. Returns
    /// completion times; the relative order of rate recomputations is fully
    /// deterministic given the seed.
    ///
    /// ```
    /// use flowsim::{Engine, Flow, NetworkSpec, SimConfig};
    ///
    /// // One 12.5 MB flow over a 100 Mbit/s path takes one second.
    /// let spec = NetworkSpec::uniform(1, 1, 100.0, 100.0, 100.0);
    /// let engine = Engine::new(spec, SimConfig::default());
    /// let result = engine.run(&[Flow::new(0, 0, 12_500_000.0)]);
    /// assert!((result.makespan - 1.0).abs() < 1e-6);
    /// ```
    pub fn run(&self, flows: &[Flow]) -> RunResult {
        let _span = telemetry::span("flowsim.run");
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let run_bias = self.config.tcp.draw_run_bias(&mut rng);
        let n = flows.len();
        let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes).collect();
        let mut finish: Vec<f64> = vec![0.0; n];
        let mut done = vec![false; n];
        let mut active = n;
        let mut now = 0.0f64;
        let mut trace = self.config.record_trace.then(Trace::default);

        // Safety valve: each iteration completes a flow or crosses a
        // capacity breakpoint; bound iterations generously anyway.
        let mut guard = 0usize;
        let guard_max = 10 * n + 10_000;

        while active > 0 {
            counters::incr(Counter::FlowsimEvents);
            guard += 1;
            assert!(guard <= guard_max, "event loop failed to converge");

            let pairs: Vec<(usize, usize)> = flows
                .iter()
                .zip(&done)
                .filter(|(_, &d)| !d)
                .map(|(f, _)| (f.src, f.dst))
                .collect();
            let idx: Vec<usize> = (0..n).filter(|&i| !done[i]).collect();
            let links_now: Vec<f64> = (0..self.spec.num_links())
                .map(|l| self.spec.link_profile(l).at(now))
                .collect();
            let link_of: Vec<usize> = pairs
                .iter()
                .map(|&(s, d)| self.spec.link_of(s, d))
                .collect();
            let alloc = max_min_rates_routed(
                &pairs,
                &self.spec.nic_out,
                &self.spec.nic_in,
                &links_now,
                &link_of,
            );

            // Effective (TCP-adjusted) rates in bytes/s.
            let mut rates = vec![0.0f64; n];
            for ((a, &i), &l) in alloc.iter().zip(&idx).zip(&link_of) {
                let solo = self.spec.nic_out[flows[i].src]
                    .min(self.spec.nic_in[flows[i].dst])
                    .min(links_now[l]);
                let eff = self.config.tcp.effective_rate(*a, solo, run_bias, &mut rng);
                rates[i] = eff * BYTES_PER_S_PER_MBPS;
            }
            if let Some(t) = trace.as_mut() {
                t.record(now, &idx, &rates);
            }

            // Time to the next event: earliest completion or profile change.
            let mut dt = f64::INFINITY;
            for &i in &idx {
                dt = dt.min(remaining[i] / rates[i]);
            }
            for l in 0..self.spec.num_links() {
                if let Some(change) = self.spec.link_profile(l).next_change_after(now) {
                    dt = dt.min(change - now);
                }
            }
            debug_assert!(dt.is_finite() && dt > 0.0);

            now += dt;
            for &i in &idx {
                remaining[i] -= rates[i] * dt;
                // Tolerate float dust when a completion and a breakpoint
                // coincide.
                if remaining[i] <= 1e-6 {
                    remaining[i] = 0.0;
                    done[i] = true;
                    finish[i] = now;
                    active -= 1;
                }
            }
        }

        RunResult {
            flows: flows
                .iter()
                .zip(&finish)
                .map(|(&flow, &finish)| FlowResult { flow, finish })
                .collect(),
            makespan: now,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CapacityProfile;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_timing() {
        // 12.5 MB at 100 Mbit/s (= 12.5 MB/s) takes 1 s.
        let spec = NetworkSpec::uniform(1, 1, 100.0, 100.0, 100.0);
        let e = Engine::new(spec, SimConfig::default());
        let r = e.run(&[Flow::new(0, 0, 12_500_000.0)]);
        assert!(close(r.makespan, 1.0), "makespan {}", r.makespan);
    }

    #[test]
    fn backbone_bottleneck_shares() {
        // Two disjoint flows, backbone 100: 50 Mbit/s each.
        let spec = NetworkSpec::uniform(2, 2, 100.0, 100.0, 100.0);
        let e = Engine::new(spec, SimConfig::default());
        let r = e.run(&[Flow::new(0, 0, 6_250_000.0), Flow::new(1, 1, 6_250_000.0)]);
        // 6.25 MB at 50 Mbit/s (6.25 MB/s) = 1 s each.
        assert!(close(r.makespan, 1.0), "makespan {}", r.makespan);
    }

    #[test]
    fn rates_rebalance_after_completion() {
        // Unequal flows: after the small one finishes, the big one speeds up.
        let spec = NetworkSpec::uniform(2, 2, 100.0, 100.0, 100.0);
        let e = Engine::new(spec, SimConfig::default());
        let small = 6_250_000.0; // 1 s at 50 Mbit/s
        let big = 2.0 * small;
        let r = e.run(&[Flow::new(0, 0, small), Flow::new(1, 1, big)]);
        // Phase 1: both at 50 for 1 s (small done, big has 6.25 MB left).
        // Phase 2: big alone at 100 → 0.5 s. Total 1.5 s.
        assert!(close(r.flows[0].finish, 1.0));
        assert!(close(r.flows[1].finish, 1.5), "big {}", r.flows[1].finish);
        assert!(close(r.makespan, 1.5));
    }

    #[test]
    fn run_counts_events_and_fairshare_rounds() {
        // Counters are process-global and other tests may add to them
        // concurrently, so assert with >= on global deltas.
        counters::enable();
        let before = counters::global_snapshot();
        let spec = NetworkSpec::uniform(2, 2, 100.0, 100.0, 100.0);
        let e = Engine::new(spec, SimConfig::default());
        let r = e.run(&[Flow::new(0, 0, 1_000_000.0), Flow::new(1, 1, 2_000_000.0)]);
        let delta = counters::global_snapshot().delta(&before);
        counters::disable();
        assert_eq!(r.flows.len(), 2);
        // Two flows with distinct finish times → at least two events, each
        // recomputing the fair shares at least once.
        assert!(delta.get(Counter::FlowsimEvents) >= 2, "{delta:?}");
        assert!(delta.get(Counter::FairshareRounds) >= 2, "{delta:?}");
    }

    #[test]
    fn time_varying_backbone() {
        // Backbone halves at t = 0.5: one 12.5 MB flow on 100 Mbit NICs.
        // Phase 1: 0.5 s at 12.5 MB/s = 6.25 MB done; phase 2 at 6.25 MB/s
        // needs 1 s more. Total 1.5 s.
        let spec = NetworkSpec {
            nic_out: vec![100.0],
            nic_in: vec![100.0],
            backbone: CapacityProfile::Piecewise(vec![(0.0, 100.0), (0.5, 50.0)]),
            extra_links: Vec::new(),
            route: Vec::new(),
        };
        let e = Engine::new(spec, SimConfig::default());
        let r = e.run(&[Flow::new(0, 0, 12_500_000.0)]);
        assert!(close(r.makespan, 1.5), "makespan {}", r.makespan);
    }

    #[test]
    fn multi_backbone_flows_use_their_own_link() {
        // A two-backbone topology: fast pairs on a fat link, slow pairs on
        // a thin one. Flows crossing different backbones must not share.
        let topo = kpbs::instances::two_backbone_topology(1, 100.0, 100.0, 100.0, 25.0);
        let spec = NetworkSpec::from_topology(&topo).unwrap();
        let e = Engine::new(spec, SimConfig::default());
        // 12.5 MB each: link 0 at 100 Mbit/s → 1 s; link 1 at 25 → 4 s.
        let r = e.run(&[Flow::new(0, 0, 12_500_000.0), Flow::new(1, 1, 12_500_000.0)]);
        assert!(close(r.flows[0].finish, 1.0), "fast {}", r.flows[0].finish);
        assert!(close(r.flows[1].finish, 4.0), "slow {}", r.flows[1].finish);

        // The same two flows forced over one shared 25 Mbit/s backbone
        // would instead contend: both at 12.5 until t = 8.
        let shared = NetworkSpec::uniform(2, 2, 100.0, 100.0, 25.0);
        let r = Engine::new(shared, SimConfig::default())
            .run(&[Flow::new(0, 0, 12_500_000.0), Flow::new(1, 1, 12_500_000.0)]);
        assert!(close(r.makespan, 8.0), "shared {}", r.makespan);
    }

    #[test]
    fn ideal_runs_deterministic_across_seeds() {
        let spec = NetworkSpec::testbed(3);
        let flows: Vec<Flow> = (0..10)
            .flat_map(|s| (0..10).map(move |d| Flow::new(s, d, 1_000_000.0)))
            .collect();
        let r1 = Engine::new(
            spec.clone(),
            SimConfig {
                seed: 1,
                ..Default::default()
            },
        )
        .run(&flows);
        let r2 = Engine::new(
            spec,
            SimConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .run(&flows);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn tcp_jitter_varies_with_seed() {
        let spec = NetworkSpec::testbed(3);
        let flows: Vec<Flow> = (0..10)
            .flat_map(|s| (0..10).map(move |d| Flow::new(s, d, 1_000_000.0)))
            .collect();
        let cfg = |seed| SimConfig {
            tcp: TcpModel::default(),
            seed,
            record_trace: false,
        };
        let r1 = Engine::new(spec.clone(), cfg(1)).run(&flows);
        let r2 = Engine::new(spec, cfg(2)).run(&flows);
        assert_ne!(r1.makespan, r2.makespan);
        // Within a sane band of each other.
        let ratio = r1.makespan / r2.makespan;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn trace_recorded_when_requested() {
        let spec = NetworkSpec::uniform(1, 1, 100.0, 100.0, 100.0);
        let e = Engine::new(
            spec,
            SimConfig {
                record_trace: true,
                ..Default::default()
            },
        );
        let r = e.run(&[Flow::new(0, 0, 1_000_000.0)]);
        let t = r.trace.expect("trace requested");
        assert!(!t.samples.is_empty());
    }

    #[test]
    fn no_flows_zero_makespan() {
        let spec = NetworkSpec::uniform(1, 1, 100.0, 100.0, 100.0);
        let e = Engine::new(spec, SimConfig::default());
        let r = e.run(&[]);
        assert_eq!(r.makespan, 0.0);
        assert!(r.flows.is_empty());
    }
}
