//! Discrete-event fluid-flow network simulator.
//!
//! This crate is the stand-in for the paper's physical testbed (two 10-node
//! clusters with `rshaper`-limited 100 Mbit/s NICs behind a shared
//! 100 Mbit/s interconnect, Section 5.2). It simulates bulk transfers as
//! fluid flows whose instantaneous rates are the **max–min fair** allocation
//! under three families of capacity constraints: each sender NIC, each
//! receiver NIC, and the backbone. Max–min fairness is the steady-state
//! allocation of long-lived TCP flows sharing a bottleneck, which is exactly
//! the regime of the paper's measurements.
//!
//! Modules:
//!
//! * [`network`] — capacity specification, including time-varying backbones,
//! * [`fairshare`] — the progressive-filling max–min allocator,
//! * [`flow`] — flows and per-flow results,
//! * [`tcp`] — the TCP behaviour model (per-flow overhead + seeded jitter)
//!   that makes the brute-force baseline lossy and non-deterministic,
//! * [`engine`] — the event loop,
//! * [`executor`] — runs a `kpbs` [`Schedule`](kpbs::Schedule) (synchronous
//!   steps + β barriers) or the brute-force baseline over a network,
//! * [`trace`] — time-series of allocations for tests and plots.

#![warn(missing_docs)]

pub mod engine;
pub mod executor;
pub mod fairshare;
pub mod flow;
pub mod network;
pub mod tcp;
pub mod trace;

pub use engine::{Engine, RunResult, SimConfig};
pub use executor::{adaptive_scheduled_time, brute_force_time, scheduled_time, ExecutionReport};
pub use fairshare::{max_min_rates, max_min_rates_routed};
pub use flow::Flow;
pub use network::{CapacityProfile, NetworkSpec};
pub use tcp::TcpModel;
