//! Max–min fair bandwidth allocation by progressive filling.
//!
//! Constraints: for each sender `i`, `Σ_{f: src=i} r_f ≤ out[i]`; for each
//! receiver `j`, `Σ_{f: dst=j} r_f ≤ in[j]`; and for each backbone link `l`,
//! `Σ_{f: link=l} r_f ≤ links[l]`.
//! Progressive filling raises every unfrozen flow's rate at the same speed;
//! when a constraint saturates, all flows crossing it freeze. The result is
//! the unique max–min fair allocation, which is also Pareto-optimal: at
//! least one constraint of every flow is tight.

use telemetry::counters::{self, Counter};

/// Relative tolerance for saturation tests.
const EPS: f64 = 1e-9;

/// Computes the max–min fair rates for `flows` (pairs `(src, dst)`), given
/// per-sender caps `out`, per-receiver caps `in_`, and the `backbone` cap.
/// All capacities and the returned rates share one arbitrary unit.
///
/// The single-backbone special case of [`max_min_rates_routed`] — the
/// paper's two-cluster platform, where every flow crosses the one link.
///
/// # Panics
///
/// Panics if a flow references an out-of-range node or any capacity is
/// non-positive.
pub fn max_min_rates(
    flows: &[(usize, usize)],
    out: &[f64],
    in_: &[f64],
    backbone: f64,
) -> Vec<f64> {
    max_min_rates_routed(flows, out, in_, &[backbone], &vec![0; flows.len()])
}

/// Computes the max–min fair rates for `flows` over a multi-backbone
/// network: `links[l]` caps the total rate of the flows with
/// `link_of[f] == l`. NIC constraints apply as in [`max_min_rates`].
///
/// # Panics
///
/// Panics if a flow references an out-of-range node or link, `link_of` is
/// not flow-aligned, or any capacity is non-positive.
pub fn max_min_rates_routed(
    flows: &[(usize, usize)],
    out: &[f64],
    in_: &[f64],
    links: &[f64],
    link_of: &[usize],
) -> Vec<f64> {
    assert!(!links.is_empty(), "at least one backbone link is required");
    assert!(
        links.iter().all(|&c| c > 0.0),
        "link capacities must be positive"
    );
    assert_eq!(link_of.len(), flows.len(), "link_of must align with flows");
    for (&(s, d), &l) in flows.iter().zip(link_of) {
        assert!(s < out.len(), "sender {s} out of range");
        assert!(d < in_.len(), "receiver {d} out of range");
        assert!(l < links.len(), "link {l} out of range");
    }
    assert!(out.iter().chain(in_).all(|&c| c > 0.0));

    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut remaining = n;

    // Residual capacity of each constraint.
    let mut out_res = out.to_vec();
    let mut in_res = in_.to_vec();
    let mut link_res = links.to_vec();

    while remaining > 0 {
        counters::incr(Counter::FairshareRounds);
        // Active flow count per constraint.
        let mut out_act = vec![0usize; out.len()];
        let mut in_act = vec![0usize; in_.len()];
        let mut link_act = vec![0usize; links.len()];
        for (f, &(s, d)) in flows.iter().enumerate() {
            if !frozen[f] {
                out_act[s] += 1;
                in_act[d] += 1;
                link_act[link_of[f]] += 1;
            }
        }
        // The common increment is limited by the tightest constraint.
        let mut inc = f64::INFINITY;
        for (s, &a) in out_act.iter().enumerate() {
            if a > 0 {
                inc = inc.min(out_res[s] / a as f64);
            }
        }
        for (d, &a) in in_act.iter().enumerate() {
            if a > 0 {
                inc = inc.min(in_res[d] / a as f64);
            }
        }
        for (l, &a) in link_act.iter().enumerate() {
            if a > 0 {
                inc = inc.min(link_res[l] / a as f64);
            }
        }
        debug_assert!(inc.is_finite() && inc >= 0.0);

        // Raise all unfrozen flows and charge the constraints.
        for (f, &(s, d)) in flows.iter().enumerate() {
            if !frozen[f] {
                rates[f] += inc;
                out_res[s] -= inc;
                in_res[d] -= inc;
                link_res[link_of[f]] -= inc;
            }
        }

        // Freeze flows crossing a saturated constraint.
        let mut any_frozen = false;
        for (f, &(s, d)) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let l = link_of[f];
            let tight = link_res[l] <= EPS * links[l]
                || out_res[s] <= EPS * out[s]
                || in_res[d] <= EPS * in_[d];
            if tight {
                frozen[f] = true;
                remaining -= 1;
                any_frozen = true;
            }
        }
        debug_assert!(any_frozen, "progressive filling must make progress");
        if !any_frozen {
            break; // defensive: avoid an infinite loop under float weirdness
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn empty_flows() {
        let r = max_min_rates(&[], &[10.0], &[10.0], 10.0);
        assert!(r.is_empty());
    }

    #[test]
    fn single_flow_takes_minimum() {
        let r = max_min_rates(&[(0, 0)], &[10.0], &[100.0], 50.0);
        assert!(close(r[0], 10.0));
        let r = max_min_rates(&[(0, 0)], &[100.0], &[10.0], 50.0);
        assert!(close(r[0], 10.0));
        let r = max_min_rates(&[(0, 0)], &[100.0], &[100.0], 50.0);
        assert!(close(r[0], 50.0));
    }

    #[test]
    fn backbone_shared_equally() {
        // 4 flows on distinct NICs of 100, backbone 100 → 25 each.
        let flows = [(0, 0), (1, 1), (2, 2), (3, 3)];
        let r = max_min_rates(&flows, &[100.0; 4], &[100.0; 4], 100.0);
        for &x in &r {
            assert!(close(x, 25.0));
        }
    }

    #[test]
    fn sender_nic_shared() {
        // 2 flows from the same sender (cap 10) to distinct fat receivers.
        let flows = [(0, 0), (0, 1)];
        let r = max_min_rates(&flows, &[10.0], &[100.0, 100.0], 1000.0);
        assert!(close(r[0], 5.0));
        assert!(close(r[1], 5.0));
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // Flow 0 bottlenecked at its thin receiver (5), flow 1 then gets the
        // rest of the shared sender NIC (20 − 5 = 15).
        let flows = [(0, 0), (0, 1)];
        let r = max_min_rates(&flows, &[20.0], &[5.0, 100.0], 1000.0);
        assert!(close(r[0], 5.0), "r0 = {}", r[0]);
        assert!(close(r[1], 15.0), "r1 = {}", r[1]);
    }

    #[test]
    fn allocation_feasible_and_pareto() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..200 {
            let ns = rng.gen_range(1..6);
            let nr = rng.gen_range(1..6);
            let out: Vec<f64> = (0..ns).map(|_| rng.gen_range(1.0..100.0)).collect();
            let in_: Vec<f64> = (0..nr).map(|_| rng.gen_range(1.0..100.0)).collect();
            let backbone = rng.gen_range(1.0..300.0);
            let nf = rng.gen_range(1..12);
            let flows: Vec<(usize, usize)> = (0..nf)
                .map(|_| (rng.gen_range(0..ns), rng.gen_range(0..nr)))
                .collect();
            let r = max_min_rates(&flows, &out, &in_, backbone);

            // Feasibility.
            let slack = 1e-6;
            let mut out_sum = vec![0.0; ns];
            let mut in_sum = vec![0.0; nr];
            let mut total = 0.0;
            for (f, &(s, d)) in flows.iter().enumerate() {
                assert!(r[f] > 0.0, "every flow gets a positive rate");
                out_sum[s] += r[f];
                in_sum[d] += r[f];
                total += r[f];
            }
            for s in 0..ns {
                assert!(out_sum[s] <= out[s] * (1.0 + slack));
            }
            for d in 0..nr {
                assert!(in_sum[d] <= in_[d] * (1.0 + slack));
            }
            assert!(total <= backbone * (1.0 + slack));

            // Pareto: every flow crosses at least one (nearly) tight
            // constraint.
            for &(s, d) in &flows {
                let tight = out_sum[s] >= out[s] * (1.0 - 1e-6)
                    || in_sum[d] >= in_[d] * (1.0 - 1e-6)
                    || total >= backbone * (1.0 - 1e-6);
                assert!(tight, "flow ({s},{d}) could still grow");
            }
        }
    }

    #[test]
    fn routed_links_are_independent() {
        // Two disjoint pairs on separate links: each takes its own link cap,
        // unconstrained by the other.
        let flows = [(0, 0), (1, 1)];
        let r = max_min_rates_routed(&flows, &[100.0; 2], &[100.0; 2], &[30.0, 70.0], &[0, 1]);
        assert!(close(r[0], 30.0), "r0 = {}", r[0]);
        assert!(close(r[1], 70.0), "r1 = {}", r[1]);
        // Same flows forced onto one shared 30 link: 15 each.
        let r = max_min_rates_routed(&flows, &[100.0; 2], &[100.0; 2], &[30.0], &[0, 0]);
        assert!(close(r[0], 15.0));
        assert!(close(r[1], 15.0));
    }

    #[test]
    fn routed_reduces_to_single_backbone() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..100 {
            let ns = rng.gen_range(1..5);
            let nr = rng.gen_range(1..5);
            let out: Vec<f64> = (0..ns).map(|_| rng.gen_range(1.0..100.0)).collect();
            let in_: Vec<f64> = (0..nr).map(|_| rng.gen_range(1.0..100.0)).collect();
            let bb = rng.gen_range(1.0..200.0);
            let flows: Vec<(usize, usize)> = (0..rng.gen_range(1..10))
                .map(|_| (rng.gen_range(0..ns), rng.gen_range(0..nr)))
                .collect();
            let a = max_min_rates(&flows, &out, &in_, bb);
            let b = max_min_rates_routed(&flows, &out, &in_, &[bb], &vec![0; flows.len()]);
            assert_eq!(a, b, "single-link routed allocation diverged");
        }
    }

    #[test]
    fn brute_force_testbed_rates() {
        // The paper's k = 5 testbed: NICs 20 Mbit/s, backbone 100; all 100
        // pairs at once → backbone is the bottleneck at 1 Mbit/s per flow.
        let mut flows = Vec::new();
        for s in 0..10 {
            for d in 0..10 {
                flows.push((s, d));
            }
        }
        let r = max_min_rates(&flows, &[20.0; 10], &[20.0; 10], 100.0);
        for &x in &r {
            assert!(close(x, 1.0), "rate {x}");
        }
    }
}
