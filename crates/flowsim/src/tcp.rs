//! The TCP behaviour model.
//!
//! The paper's brute-force baseline opens every connection at once and lets
//! TCP sort it out; measurements show it loses 5–20 % to the scheduled
//! approach and varies ±10 % between runs. The physical cause is per-flow
//! inefficiency at small rates: when a flow's fair share through the
//! `rshaper` token buckets is tiny, a fixed per-flow overhead (slow-start
//! after timeout, retransmissions, window floor) eats a larger fraction of
//! it. We model this as an efficiency factor
//!
//! ```text
//! effective_rate = r · r / (r + c)        (c = per-flow overhead, Mbit/s)
//! ```
//!
//! so a flow at `r ≫ c` loses almost nothing while a flow squeezed to
//! `r ≈ c` loses half. On top, flows that *share* a constraint (their
//! allocated rate is below their solo rate — i.e. the shaper is actually
//! dropping their packets) get a seeded multiplicative jitter, which makes
//! brute-force runs non-deterministic while leaving scheduled steps (one
//! flow per NIC, no sharing) exactly deterministic, as the paper observed.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// TCP inefficiency parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpModel {
    /// Per-flow overhead `c` in Mbit/s. 0 disables the efficiency loss.
    pub per_flow_overhead_mbps: f64,
    /// Relative jitter amplitude applied to *contended* flows: each rate
    /// recomputation multiplies their rate by `1 + U(−jitter, +jitter)`.
    pub jitter: f64,
}

impl Default for TcpModel {
    /// Calibrated so the k = 3 / k = 7 testbeds land in the paper's
    /// 5–20 % improvement band (see EXPERIMENTS.md).
    fn default() -> Self {
        TcpModel {
            per_flow_overhead_mbps: 0.25,
            jitter: 0.05,
        }
    }
}

impl TcpModel {
    /// An ideal transport: no overhead, no jitter (pure fluid model).
    pub fn ideal() -> Self {
        TcpModel {
            per_flow_overhead_mbps: 0.0,
            jitter: 0.0,
        }
    }

    /// Draws the run-level congestion bias: a single multiplicative factor
    /// `1 + U(−jitter, +jitter)` applied to every contended flow for the
    /// whole run. A per-event draw would average out over the hundreds of
    /// rate recomputations of a long redistribution; the run-level bias is
    /// what reproduces the paper's "up to 10 %" run-to-run variation
    /// (loss-recovery luck is correlated within a run: the same flows keep
    /// hitting the same shaper phase).
    pub fn draw_run_bias<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.jitter > 0.0 {
            1.0 + rng.gen_range(-self.jitter..=self.jitter)
        } else {
            1.0
        }
    }

    /// Effective rate of a flow allocated `rate_mbps`, whose uncontended
    /// solo rate would be `solo_mbps`. Contended flows (allocated below
    /// solo — i.e. the shaper is actually dropping their packets) are
    /// additionally scaled by the run-level `bias` and a small per-event
    /// noise from `rng`.
    pub fn effective_rate<R: Rng + ?Sized>(
        &self,
        rate_mbps: f64,
        solo_mbps: f64,
        bias: f64,
        rng: &mut R,
    ) -> f64 {
        let mut r = rate_mbps;
        if self.per_flow_overhead_mbps > 0.0 {
            r = r * r / (r + self.per_flow_overhead_mbps);
        }
        let contended = rate_mbps < solo_mbps * (1.0 - 1e-6);
        if contended && self.jitter > 0.0 {
            let noise = 1.0 + rng.gen_range(-self.jitter / 4.0..=self.jitter / 4.0);
            r *= bias * noise;
        }
        r.max(rate_mbps * 1e-3) // never fully stall a flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn ideal_model_is_identity() {
        let m = TcpModel::ideal();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(m.draw_run_bias(&mut rng), 1.0);
        assert_eq!(m.effective_rate(10.0, 10.0, 1.0, &mut rng), 10.0);
        assert_eq!(m.effective_rate(1.0, 10.0, 1.0, &mut rng), 1.0);
    }

    #[test]
    fn overhead_hits_slow_flows_harder() {
        let m = TcpModel {
            per_flow_overhead_mbps: 0.25,
            jitter: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let fast = m.effective_rate(33.3, 33.3, 1.0, &mut rng) / 33.3;
        let slow = m.effective_rate(1.0, 33.3, 1.0, &mut rng) / 1.0;
        assert!(fast > 0.99, "fast flow efficiency {fast}");
        assert!(slow < 0.85, "slow flow efficiency {slow}");
    }

    #[test]
    fn uncontended_flows_deterministic() {
        let m = TcpModel::default();
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let ba = m.draw_run_bias(&mut a);
        let bb = m.draw_run_bias(&mut b);
        // Solo flow: rate == solo → neither bias nor noise applies.
        assert_eq!(
            m.effective_rate(20.0, 20.0, ba, &mut a),
            m.effective_rate(20.0, 20.0, bb, &mut b)
        );
    }

    #[test]
    fn contended_flows_jitter_with_seed() {
        let m = TcpModel::default();
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(99);
        let ba = m.draw_run_bias(&mut a);
        let bb = m.draw_run_bias(&mut b);
        let ra = m.effective_rate(5.0, 20.0, ba, &mut a);
        let rb = m.effective_rate(5.0, 20.0, bb, &mut b);
        assert_ne!(ra, rb, "different seeds produce different rates");
        // Bias and noise are bounded.
        let base = 5.0 * 5.0 / 5.25;
        let bound = m.jitter + m.jitter / 4.0 + m.jitter * m.jitter;
        for r in [ra, rb] {
            assert!(r >= base * (1.0 - bound) - 1e-9);
            assert!(r <= base * (1.0 + bound) + 1e-9);
        }
    }

    #[test]
    fn run_bias_bounded() {
        let m = TcpModel::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let b = m.draw_run_bias(&mut rng);
            assert!((1.0 - m.jitter..=1.0 + m.jitter).contains(&b));
        }
    }

    #[test]
    fn rate_never_stalls() {
        let m = TcpModel {
            per_flow_overhead_mbps: 1000.0,
            jitter: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(m.effective_rate(0.001, 1.0, 1.0, &mut rng) > 0.0);
    }
}
