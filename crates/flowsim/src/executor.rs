//! Executes redistribution strategies over the simulated network: the
//! paper's two experimental arms (Section 5.2).
//!
//! * [`scheduled_time`] — the GGP/OGGP arm: the schedule's steps run one
//!   after another, separated by a barrier; each step's slices start
//!   simultaneously and the step lasts until its last slice completes; every
//!   step additionally pays the setup delay β.
//! * [`brute_force_time`] — the TCP arm: every message becomes a flow at
//!   time 0 and the transport model sorts it out.

use crate::engine::{Engine, RunResult, SimConfig};
use crate::flow::Flow;
use crate::network::NetworkSpec;
use kpbs::{Instance, Schedule, TrafficMatrix};

/// Outcome of executing one redistribution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// End-to-end redistribution time in seconds (including barriers).
    pub total_seconds: f64,
    /// Duration of each communication step (empty for brute force).
    pub step_seconds: Vec<f64>,
    /// Number of synchronised steps (0 for brute force).
    pub num_steps: usize,
    /// Total time spent in setup/barriers.
    pub barrier_seconds: f64,
}

/// Runs `schedule` over `spec`: for each step, the slices of its transfers
/// become simultaneous flows; the step ends when the last one completes;
/// `beta_seconds` is charged per step.
///
/// `inst` and `endpoints` must come from the same
/// [`TrafficMatrix::to_instance`] call that produced the schedule, so that
/// edge ids, endpoints and byte volumes line up.
pub fn scheduled_time(
    traffic: &TrafficMatrix,
    inst: &Instance,
    endpoints: &[(usize, usize)],
    schedule: &Schedule,
    spec: &NetworkSpec,
    beta_seconds: f64,
    config: &SimConfig,
) -> ExecutionReport {
    let _span = telemetry::span("flowsim.scheduled_time");
    // Apportion each edge's bytes across its slices exactly, proportional to
    // the slice durations.
    let bytes: Vec<u64> = endpoints.iter().map(|&(s, d)| traffic.get(s, d)).collect();
    let slices = schedule.byte_slices(inst, &bytes);

    let engine = Engine::new(spec.clone(), config.clone());
    let mut step_seconds = Vec::with_capacity(schedule.num_steps());
    let mut total = 0.0f64;
    for step in slices {
        let _step_span = telemetry::span("flowsim.step");
        let flows: Vec<Flow> = step
            .into_iter()
            .map(|(e, b)| {
                let (s, d) = endpoints[e.index()];
                Flow::new(s, d, b as f64)
            })
            .collect();
        let dur = if flows.is_empty() {
            0.0
        } else {
            engine.run(&flows).makespan
        };
        step_seconds.push(dur);
        total += beta_seconds + dur;
    }
    ExecutionReport {
        total_seconds: total,
        num_steps: step_seconds.len(),
        barrier_seconds: beta_seconds * step_seconds.len() as f64,
        step_seconds,
    }
}

/// Runs the brute-force TCP arm: every non-zero message of `traffic` starts
/// at time 0; the transport model in `config` governs sharing, losses and
/// jitter. No barriers are paid.
pub fn brute_force_time(
    traffic: &TrafficMatrix,
    spec: &NetworkSpec,
    config: &SimConfig,
) -> ExecutionReport {
    let result = brute_force_run(traffic, spec, config);
    ExecutionReport {
        total_seconds: result.makespan,
        step_seconds: Vec::new(),
        num_steps: 0,
        barrier_seconds: 0.0,
    }
}

/// Executes an *adaptive* redistribution under a time-varying backbone
/// (the paper's future-work scenario): before every step the scheduler
/// observes the backbone capacity in force and re-plans the residual
/// traffic with OGGP at the corresponding `k`, then runs that single step.
///
/// `per_transfer_mbps` is the NIC-shaped speed `t` of one transfer; the
/// momentary parallelism is `k(t) = max(1, floor(capacity(t) / t))` clamped
/// to the cluster sizes. Returns the execution report; each step is
/// simulated on a network whose backbone is pinned at the capacity observed
/// when the step started (steps are short relative to profile segments in
/// the intended regime).
pub fn adaptive_scheduled_time(
    traffic: &TrafficMatrix,
    spec: &NetworkSpec,
    per_transfer_mbps: f64,
    beta_seconds: f64,
    config: &SimConfig,
) -> ExecutionReport {
    let _span = telemetry::span("flowsim.adaptive");
    use bipartite::Graph;
    use kpbs::oggp;

    let n1 = traffic.senders();
    let n2 = traffic.receivers();
    // Residual bytes per message.
    let mut residual: Vec<Vec<u64>> = (0..n1)
        .map(|i| (0..n2).map(|j| traffic.get(i, j)).collect())
        .collect();
    let mut remaining: u64 = traffic.total_bytes();

    let bytes_per_tick = per_transfer_mbps * 1e6 / 8.0 / 1_000.0; // ms ticks
    let mut now = 0.0f64;
    let mut step_seconds = Vec::new();

    while remaining > 0 {
        let cap = spec.backbone.at(now);
        // Pin the step's network at the observed capacity.
        let step_spec = NetworkSpec {
            nic_out: spec.nic_out.clone(),
            nic_in: spec.nic_in.clone(),
            backbone: crate::network::CapacityProfile::Constant(cap),
            extra_links: Vec::new(),
            route: Vec::new(),
        };
        let engine = Engine::new(step_spec, config.clone());
        let k = ((cap / per_transfer_mbps).floor() as usize).clamp(1, n1.min(n2));
        // Plan the residual with OGGP at the momentary k; weights in ticks.
        let mut g = Graph::new(n1, n2);
        let mut endpoints = Vec::new();
        for (i, row) in residual.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                if b > 0 {
                    let ticks = ((b as f64 / bytes_per_tick).ceil() as u64).max(1);
                    g.add_edge(i, j, ticks);
                    endpoints.push((i, j));
                }
            }
        }
        let inst = kpbs::Instance::new(g, k, 0);
        let plan = oggp(&inst);
        let first = plan.steps.first().expect("non-empty residual");

        // Execute only the first step, then re-observe the backbone.
        let mut flows = Vec::new();
        for t in &first.transfers {
            let (i, j) = endpoints[t.edge.index()];
            let slice = ((t.amount as f64 * bytes_per_tick) as u64)
                .min(residual[i][j])
                .max(1);
            flows.push(Flow::new(i, j, slice as f64));
            residual[i][j] -= slice;
            remaining -= slice;
        }
        let dur = engine.run(&flows).makespan;
        step_seconds.push(dur);
        now += beta_seconds + dur;
    }

    ExecutionReport {
        total_seconds: now,
        num_steps: step_seconds.len(),
        barrier_seconds: beta_seconds * step_seconds.len() as f64,
        step_seconds,
    }
}

/// Like [`brute_force_time`] but returning the full [`RunResult`] (per-flow
/// completions, optional trace).
pub fn brute_force_run(
    traffic: &TrafficMatrix,
    spec: &NetworkSpec,
    config: &SimConfig,
) -> RunResult {
    let _span = telemetry::span("flowsim.brute_force");
    let mut flows = Vec::with_capacity(traffic.message_count());
    for s in 0..traffic.senders() {
        for d in 0..traffic.receivers() {
            let b = traffic.get(s, d);
            if b > 0 {
                flows.push(Flow::new(s, d, b as f64));
            }
        }
    }
    Engine::new(spec.clone(), config.clone()).run(&flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpModel;
    use kpbs::traffic::TickScale;
    use kpbs::{oggp, Platform};
    use rand::{rngs::SmallRng, SeedableRng};

    fn testbed_workload(k: usize, seed: u64, hi_mb: u64) -> (TrafficMatrix, Platform) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, hi_mb);
        (traffic, Platform::testbed(k))
    }

    #[test]
    fn scheduled_execution_matches_analytic_cost() {
        // With an ideal transport and one flow per NIC per step, each step's
        // simulated duration equals its longest slice at NIC speed, i.e. the
        // analytic schedule cost (up to tick rounding).
        let (traffic, platform) = testbed_workload(5, 42, 30);
        let scale = TickScale::MILLIS;
        let beta = 0.05;
        let (inst, endpoints) = traffic.to_instance(&platform, beta, scale);
        let schedule = oggp(&inst);
        schedule.validate(&inst).unwrap();
        let spec = NetworkSpec::from_platform(&platform);
        let report = scheduled_time(
            &traffic,
            &inst,
            &endpoints,
            &schedule,
            &spec,
            beta,
            &SimConfig::default(),
        );
        let analytic = scale.to_seconds(schedule.cost());
        let rel = (report.total_seconds - analytic).abs() / analytic;
        assert!(
            rel < 0.02,
            "simulated {} vs analytic {} (rel {rel})",
            report.total_seconds,
            analytic
        );
        assert_eq!(report.num_steps, schedule.num_steps());
    }

    #[test]
    fn brute_force_with_ideal_tcp_equals_volume_over_backbone() {
        // Ideal fluid transport: the backbone is the only binding
        // constraint of the saturated testbed, so the makespan is close to
        // total volume / backbone (equal shares drain messages together,
        // freeing capacity for the rest).
        let (traffic, platform) = testbed_workload(3, 7, 20);
        let spec = NetworkSpec::from_platform(&platform);
        let report = brute_force_time(&traffic, &spec, &SimConfig::default());
        let volume_bytes = traffic.total_bytes() as f64;
        let floor = volume_bytes / (100.0 * 1e6 / 8.0);
        assert!(report.total_seconds >= floor * 0.999);
        assert!(
            report.total_seconds <= floor * 1.25,
            "brute {} vs floor {floor}",
            report.total_seconds
        );
    }

    #[test]
    fn scheduled_beats_lossy_brute_force() {
        // The paper's headline: with the calibrated TCP model, GGP/OGGP
        // scheduling outperforms brute force, more so for larger k.
        let mut improvements = Vec::new();
        for k in [3, 7] {
            let (traffic, platform) = testbed_workload(k, 11, 50);
            let scale = TickScale::MILLIS;
            let beta = 0.05;
            let (inst, endpoints) = traffic.to_instance(&platform, beta, scale);
            let schedule = oggp(&inst);
            let spec = NetworkSpec::from_platform(&platform);
            // Both arms run over the same lossy transport.
            let lossy = SimConfig {
                tcp: TcpModel::default(),
                seed: 5,
                record_trace: false,
            };
            let sched = scheduled_time(&traffic, &inst, &endpoints, &schedule, &spec, beta, &lossy);
            let brute = brute_force_time(&traffic, &spec, &lossy);
            let improvement = 1.0 - sched.total_seconds / brute.total_seconds;
            assert!(
                improvement > 0.02,
                "k={k}: scheduled {} not better than brute {}",
                sched.total_seconds,
                brute.total_seconds
            );
            improvements.push(improvement);
        }
        assert!(
            improvements[1] > improvements[0],
            "gain should grow with k: {improvements:?}"
        );
    }

    #[test]
    fn brute_force_nondeterministic_scheduled_deterministic() {
        let (traffic, platform) = testbed_workload(3, 13, 30);
        let spec = NetworkSpec::from_platform(&platform);
        let lossy = |seed| SimConfig {
            tcp: TcpModel::default(),
            seed,
            record_trace: false,
        };
        let b1 = brute_force_time(&traffic, &spec, &lossy(1)).total_seconds;
        let b2 = brute_force_time(&traffic, &spec, &lossy(2)).total_seconds;
        assert_ne!(b1, b2);

        let scale = TickScale::MILLIS;
        let (inst, endpoints) = traffic.to_instance(&platform, 0.05, scale);
        let schedule = oggp(&inst);
        let s1 = scheduled_time(
            &traffic,
            &inst,
            &endpoints,
            &schedule,
            &spec,
            0.05,
            &lossy(1),
        );
        let s2 = scheduled_time(
            &traffic,
            &inst,
            &endpoints,
            &schedule,
            &spec,
            0.05,
            &lossy(2),
        );
        assert_eq!(
            s1.total_seconds, s2.total_seconds,
            "scheduled steps share no constraint, so jitter never applies"
        );
    }

    #[test]
    fn adaptive_executor_under_varying_backbone() {
        use crate::network::CapacityProfile;
        // 4x4 nodes, NICs 25 Mbit/s; backbone drops from 100 (k = 4) to 25
        // (k = 1) at t = 2 s, recovers at 20 s.
        let mut traffic = TrafficMatrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                traffic.set(i, j, 2_000_000 + (i * 4 + j) as u64 * 500_000);
            }
        }
        let spec = NetworkSpec {
            nic_out: vec![25.0; 4],
            nic_in: vec![25.0; 4],
            backbone: CapacityProfile::Piecewise(vec![(0.0, 100.0), (2.0, 25.0), (20.0, 100.0)]),
            extra_links: Vec::new(),
            route: Vec::new(),
        };
        let r = adaptive_scheduled_time(&traffic, &spec, 25.0, 0.02, &SimConfig::default());
        assert!(r.num_steps > 0);
        assert!(r.total_seconds > 0.0);
        // Sanity window: total volume at full parallelism (100 Mbit/s
        // aggregate) would take volume/12.5e6 s; fully serialised at
        // 25 Mbit/s would take volume/3.125e6 s.
        let vol = traffic.total_bytes() as f64;
        assert!(
            r.total_seconds >= vol / 12.5e6 * 0.9,
            "too fast: {}",
            r.total_seconds
        );
        assert!(
            r.total_seconds <= vol / 3.125e6 * 1.5,
            "too slow: {}",
            r.total_seconds
        );
    }

    #[test]
    fn adaptive_executor_constant_backbone_matches_static() {
        // With a constant backbone the adaptive executor should be in the
        // same ballpark as the static OGGP execution.
        let (traffic, platform) = testbed_workload(4, 23, 20);
        let spec = NetworkSpec::from_platform(&platform);
        let r = adaptive_scheduled_time(
            &traffic,
            &spec,
            platform.transfer_speed(),
            0.0,
            &SimConfig::default(),
        );
        let scale = TickScale::MILLIS;
        let (inst, endpoints) = traffic.to_instance(&platform, 0.0, scale);
        let schedule = oggp(&inst);
        let s = scheduled_time(
            &traffic,
            &inst,
            &endpoints,
            &schedule,
            &spec,
            0.0,
            &SimConfig::default(),
        );
        let rel = (r.total_seconds - s.total_seconds).abs() / s.total_seconds;
        assert!(
            rel < 0.15,
            "adaptive {} vs static {}",
            r.total_seconds,
            s.total_seconds
        );
    }

    #[test]
    fn barrier_accounting() {
        let (traffic, platform) = testbed_workload(5, 17, 20);
        let scale = TickScale::MILLIS;
        let (inst, endpoints) = traffic.to_instance(&platform, 0.1, scale);
        let schedule = oggp(&inst);
        let spec = NetworkSpec::from_platform(&platform);
        let r = scheduled_time(
            &traffic,
            &inst,
            &endpoints,
            &schedule,
            &spec,
            0.1,
            &SimConfig::default(),
        );
        assert!((r.barrier_seconds - 0.1 * r.num_steps as f64).abs() < 1e-9);
        let steps_sum: f64 = r.step_seconds.iter().sum();
        assert!((r.total_seconds - (steps_sum + r.barrier_seconds)).abs() < 1e-9);
    }
}
