//! Network capacity specification.
//!
//! All bandwidths are in Mbit/s (like the paper's platform descriptions);
//! data volumes are bytes and times are seconds. Conversion helpers live on
//! [`NetworkSpec`].

use kpbs::Platform;
use serde::{Deserialize, Serialize};

/// Bits per byte × Mbit scaling: bytes/s per Mbit/s.
pub const BYTES_PER_S_PER_MBPS: f64 = 1e6 / 8.0;

/// A (possibly time-varying) backbone capacity in Mbit/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapacityProfile {
    /// Constant capacity.
    Constant(f64),
    /// Piecewise-constant: `(start_time_seconds, capacity)` segments, sorted
    /// by start time, first segment starting at 0.
    Piecewise(Vec<(f64, f64)>),
}

impl CapacityProfile {
    /// Capacity in force at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match self {
            CapacityProfile::Constant(c) => *c,
            CapacityProfile::Piecewise(segs) => {
                let mut cap = segs.first().map(|s| s.1).unwrap_or(0.0);
                for &(start, c) in segs {
                    if start <= t {
                        cap = c;
                    } else {
                        break;
                    }
                }
                cap
            }
        }
    }

    /// The next time strictly after `t` at which the capacity changes, if
    /// any.
    pub fn next_change_after(&self, t: f64) -> Option<f64> {
        match self {
            CapacityProfile::Constant(_) => None,
            CapacityProfile::Piecewise(segs) => segs.iter().map(|&(s, _)| s).find(|&s| s > t),
        }
    }

    /// The profile with every capacity multiplied by `factor` — the fault
    /// hook used to model backbone degradation (a slowdown of `s` scales
    /// capacities by `1/s`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite (a zero-capacity
    /// network cannot drain any flow).
    pub fn scaled(&self, factor: f64) -> CapacityProfile {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "capacity scale must be positive and finite"
        );
        match self {
            CapacityProfile::Constant(c) => CapacityProfile::Constant(c * factor),
            CapacityProfile::Piecewise(segs) => {
                CapacityProfile::Piecewise(segs.iter().map(|&(t, c)| (t, c * factor)).collect())
            }
        }
    }

    /// Validates monotone segment starts and positive capacities.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            CapacityProfile::Constant(c) => {
                if *c > 0.0 {
                    Ok(())
                } else {
                    Err("backbone capacity must be positive".into())
                }
            }
            CapacityProfile::Piecewise(segs) => {
                if segs.is_empty() {
                    return Err("piecewise profile needs at least one segment".into());
                }
                if segs[0].0 != 0.0 {
                    return Err("first segment must start at time 0".into());
                }
                for w in segs.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err("segment starts must strictly increase".into());
                    }
                }
                if segs.iter().any(|&(_, c)| c <= 0.0) {
                    return Err("capacities must be positive".into());
                }
                Ok(())
            }
        }
    }
}

/// A two-cluster network: per-sender egress caps, per-receiver ingress caps,
/// and a shared backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Egress capacity of each sender NIC, Mbit/s.
    pub nic_out: Vec<f64>,
    /// Ingress capacity of each receiver NIC, Mbit/s.
    pub nic_in: Vec<f64>,
    /// Backbone capacity.
    pub backbone: CapacityProfile,
}

impl NetworkSpec {
    /// Uniform NICs on both sides with a constant backbone.
    pub fn uniform(
        senders: usize,
        receivers: usize,
        out_mbps: f64,
        in_mbps: f64,
        backbone_mbps: f64,
    ) -> Self {
        NetworkSpec {
            nic_out: vec![out_mbps; senders],
            nic_in: vec![in_mbps; receivers],
            backbone: CapacityProfile::Constant(backbone_mbps),
        }
    }

    /// The network corresponding to a [`Platform`] description.
    pub fn from_platform(p: &Platform) -> Self {
        NetworkSpec::uniform(p.n1, p.n2, p.t1, p.t2, p.backbone)
    }

    /// The paper's Section 5.2 testbed for a given `k`: 10+10 nodes,
    /// `rshaper`-limited NICs at `100/k` Mbit/s, 100 Mbit/s interconnect.
    pub fn testbed(k: usize) -> Self {
        NetworkSpec::from_platform(&Platform::testbed(k))
    }

    /// Number of sender nodes.
    pub fn senders(&self) -> usize {
        self.nic_out.len()
    }

    /// Number of receiver nodes.
    pub fn receivers(&self) -> usize {
        self.nic_in.len()
    }

    /// The network with every capacity (NICs and backbone) multiplied by
    /// `factor`. Max–min fair allocations scale linearly with a uniform
    /// capacity scale, so running a step on `scaled(1.0 / s)` models a
    /// platform-wide slowdown of factor `s` exactly — this is the fault
    /// hook the execution runtime's simulated transport injects through.
    pub fn scaled(&self, factor: f64) -> NetworkSpec {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "capacity scale must be positive and finite"
        );
        NetworkSpec {
            nic_out: self.nic_out.iter().map(|c| c * factor).collect(),
            nic_in: self.nic_in.iter().map(|c| c * factor).collect(),
            backbone: self.backbone.scaled(factor),
        }
    }

    /// Validates node counts and capacities.
    pub fn validate(&self) -> Result<(), String> {
        if self.nic_out.is_empty() || self.nic_in.is_empty() {
            return Err("both clusters need at least one node".into());
        }
        if self.nic_out.iter().chain(&self.nic_in).any(|&c| c <= 0.0) {
            return Err("NIC capacities must be positive".into());
        }
        self.backbone.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = CapacityProfile::Constant(100.0);
        assert_eq!(p.at(0.0), 100.0);
        assert_eq!(p.at(1e9), 100.0);
        assert_eq!(p.next_change_after(5.0), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn piecewise_profile() {
        let p = CapacityProfile::Piecewise(vec![(0.0, 100.0), (10.0, 50.0), (20.0, 80.0)]);
        assert!(p.validate().is_ok());
        assert_eq!(p.at(0.0), 100.0);
        assert_eq!(p.at(9.999), 100.0);
        assert_eq!(p.at(10.0), 50.0);
        assert_eq!(p.at(25.0), 80.0);
        assert_eq!(p.next_change_after(0.0), Some(10.0));
        assert_eq!(p.next_change_after(10.0), Some(20.0));
        assert_eq!(p.next_change_after(20.0), None);
    }

    #[test]
    fn invalid_profiles() {
        assert!(CapacityProfile::Constant(0.0).validate().is_err());
        assert!(CapacityProfile::Piecewise(vec![]).validate().is_err());
        assert!(CapacityProfile::Piecewise(vec![(1.0, 5.0)])
            .validate()
            .is_err());
        assert!(CapacityProfile::Piecewise(vec![(0.0, 5.0), (0.0, 6.0)])
            .validate()
            .is_err());
        assert!(CapacityProfile::Piecewise(vec![(0.0, 5.0), (1.0, -2.0)])
            .validate()
            .is_err());
    }

    #[test]
    fn testbed_spec() {
        let s = NetworkSpec::testbed(5);
        assert_eq!(s.senders(), 10);
        assert_eq!(s.receivers(), 10);
        assert!((s.nic_out[0] - 20.0).abs() < 1e-9);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn scaled_capacities() {
        let p = CapacityProfile::Piecewise(vec![(0.0, 100.0), (5.0, 40.0)]);
        let half = p.scaled(0.5);
        assert_eq!(half.at(0.0), 50.0);
        assert_eq!(half.at(6.0), 20.0);
        assert_eq!(half.next_change_after(0.0), Some(5.0), "breakpoints keep");

        let s = NetworkSpec::uniform(2, 3, 100.0, 80.0, 300.0).scaled(0.25);
        assert_eq!(s.nic_out, vec![25.0, 25.0]);
        assert_eq!(s.nic_in, vec![20.0, 20.0, 20.0]);
        assert_eq!(s.backbone.at(0.0), 75.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_scale_rejected() {
        NetworkSpec::uniform(1, 1, 1.0, 1.0, 1.0).scaled(0.0);
    }

    #[test]
    fn invalid_spec() {
        let s = NetworkSpec::uniform(0, 2, 1.0, 1.0, 1.0);
        assert!(s.validate().is_err());
        let s = NetworkSpec::uniform(2, 2, -1.0, 1.0, 1.0);
        assert!(s.validate().is_err());
    }
}
