//! Network capacity specification.
//!
//! All bandwidths are in Mbit/s (like the paper's platform descriptions);
//! data volumes are bytes and times are seconds. Conversion helpers live on
//! [`NetworkSpec`].

use kpbs::{Platform, Topology};
use serde::{Deserialize, Serialize};

/// Bits per byte × Mbit scaling: bytes/s per Mbit/s.
pub const BYTES_PER_S_PER_MBPS: f64 = 1e6 / 8.0;

/// A (possibly time-varying) backbone capacity in Mbit/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapacityProfile {
    /// Constant capacity.
    Constant(f64),
    /// Piecewise-constant: `(start_time_seconds, capacity)` segments, sorted
    /// by start time, first segment starting at 0.
    Piecewise(Vec<(f64, f64)>),
}

impl CapacityProfile {
    /// Capacity in force at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match self {
            CapacityProfile::Constant(c) => *c,
            CapacityProfile::Piecewise(segs) => {
                let mut cap = segs.first().map(|s| s.1).unwrap_or(0.0);
                for &(start, c) in segs {
                    if start <= t {
                        cap = c;
                    } else {
                        break;
                    }
                }
                cap
            }
        }
    }

    /// The next time strictly after `t` at which the capacity changes, if
    /// any.
    pub fn next_change_after(&self, t: f64) -> Option<f64> {
        match self {
            CapacityProfile::Constant(_) => None,
            CapacityProfile::Piecewise(segs) => segs.iter().map(|&(s, _)| s).find(|&s| s > t),
        }
    }

    /// The profile with every capacity multiplied by `factor` — the fault
    /// hook used to model backbone degradation (a slowdown of `s` scales
    /// capacities by `1/s`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite (a zero-capacity
    /// network cannot drain any flow).
    pub fn scaled(&self, factor: f64) -> CapacityProfile {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "capacity scale must be positive and finite"
        );
        match self {
            CapacityProfile::Constant(c) => CapacityProfile::Constant(c * factor),
            CapacityProfile::Piecewise(segs) => {
                CapacityProfile::Piecewise(segs.iter().map(|&(t, c)| (t, c * factor)).collect())
            }
        }
    }

    /// Validates monotone segment starts and positive capacities.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            CapacityProfile::Constant(c) => {
                if c.is_finite() && *c > 0.0 {
                    Ok(())
                } else {
                    Err("backbone capacity must be positive and finite".into())
                }
            }
            CapacityProfile::Piecewise(segs) => {
                if segs.is_empty() {
                    return Err("piecewise profile needs at least one segment".into());
                }
                if segs[0].0 != 0.0 {
                    return Err("first segment must start at time 0".into());
                }
                for w in segs.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err("segment starts must strictly increase".into());
                    }
                }
                if segs.iter().any(|&(_, c)| !(c.is_finite() && c > 0.0)) {
                    return Err("capacities must be positive and finite".into());
                }
                Ok(())
            }
        }
    }
}

/// A redistribution network: per-sender egress caps, per-receiver ingress
/// caps, and one or more backbone links with a per-pair routing table.
///
/// The default shape (empty `extra_links`/`route`) is the paper's
/// two-cluster network where every flow crosses the single `backbone`;
/// heterogeneous multi-backbone platforms come in through
/// [`NetworkSpec::from_topology`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Egress capacity of each sender NIC, Mbit/s.
    pub nic_out: Vec<f64>,
    /// Ingress capacity of each receiver NIC, Mbit/s.
    pub nic_in: Vec<f64>,
    /// Backbone capacity (link 0).
    pub backbone: CapacityProfile,
    /// Further backbone links: link `l ≥ 1` is `extra_links[l - 1]`. Empty
    /// for single-backbone networks (the wire-compatible default).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub extra_links: Vec<CapacityProfile>,
    /// Row-major `senders() × receivers()` table mapping each pair to the
    /// link index its flows cross. Empty means every pair uses link 0.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub route: Vec<usize>,
}

impl NetworkSpec {
    /// Uniform NICs on both sides with a constant backbone.
    ///
    /// A derived constructor: this is exactly
    /// [`Topology::two_cluster`] lowered to a network — prefer
    /// [`NetworkSpec::from_topology`] for anything beyond the homogeneous
    /// two-cluster shape. Unlike `from_topology` it does not validate, so
    /// tests can construct intentionally broken specs.
    pub fn uniform(
        senders: usize,
        receivers: usize,
        out_mbps: f64,
        in_mbps: f64,
        backbone_mbps: f64,
    ) -> Self {
        NetworkSpec {
            nic_out: vec![out_mbps; senders],
            nic_in: vec![in_mbps; receivers],
            backbone: CapacityProfile::Constant(backbone_mbps),
            extra_links: Vec::new(),
            route: Vec::new(),
        }
    }

    /// The network corresponding to a [`Platform`] description, routed
    /// through the same validation as every other construction choke point.
    ///
    /// # Panics
    ///
    /// Panics if the platform lowers to an invalid network ([`Platform`]'s
    /// own constructor asserts make this unreachable).
    pub fn from_platform(p: &Platform) -> Self {
        NetworkSpec::from_topology(&Topology::from_platform(p))
            .expect("platform networks are valid by construction")
    }

    /// The network corresponding to a heterogeneous [`Topology`]: per-node
    /// NIC speeds, one [`CapacityProfile`] per backbone link, and the
    /// pair→link routing table. Pairs no backbone serves are routed to
    /// link 0 — the planner never emits flows for them, so they only matter
    /// if a caller simulates an unroutable flow directly.
    ///
    /// The topology is validated first ([`Topology::validate`]), and the
    /// lowered spec re-checked — this is a construction choke point.
    pub fn from_topology(topo: &Topology) -> Result<Self, String> {
        topo.validate()?;
        let nic_out = topo.sender_speeds();
        let nic_in = topo.receiver_speeds();
        let route: Vec<usize> = (0..nic_out.len())
            .flat_map(|i| (0..nic_in.len()).map(move |j| (i, j)))
            .map(|(i, j)| topo.route(i, j).unwrap_or(0))
            .collect();
        let spec = NetworkSpec {
            nic_out,
            nic_in,
            backbone: CapacityProfile::Constant(topo.links[0].capacity),
            extra_links: topo.links[1..]
                .iter()
                .map(|l| CapacityProfile::Constant(l.capacity))
                .collect(),
            route: if topo.links.len() == 1 {
                Vec::new()
            } else {
                route
            },
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The paper's Section 5.2 testbed for a given `k`: 10+10 nodes,
    /// `rshaper`-limited NICs at `100/k` Mbit/s, 100 Mbit/s interconnect.
    pub fn testbed(k: usize) -> Self {
        NetworkSpec::from_platform(&Platform::testbed(k))
    }

    /// Number of sender nodes.
    pub fn senders(&self) -> usize {
        self.nic_out.len()
    }

    /// Number of receiver nodes.
    pub fn receivers(&self) -> usize {
        self.nic_in.len()
    }

    /// Number of backbone links (≥ 1; link 0 is `backbone`).
    pub fn num_links(&self) -> usize {
        1 + self.extra_links.len()
    }

    /// The capacity profile of link `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_links()`.
    pub fn link_profile(&self, l: usize) -> &CapacityProfile {
        if l == 0 {
            &self.backbone
        } else {
            &self.extra_links[l - 1]
        }
    }

    /// The link a `src → dst` flow crosses (link 0 when no routing table is
    /// set).
    pub fn link_of(&self, src: usize, dst: usize) -> usize {
        if self.route.is_empty() {
            0
        } else {
            self.route[src * self.receivers() + dst]
        }
    }

    /// The network with every capacity (NICs and backbone) multiplied by
    /// `factor`. Max–min fair allocations scale linearly with a uniform
    /// capacity scale, so running a step on `scaled(1.0 / s)` models a
    /// platform-wide slowdown of factor `s` exactly — this is the fault
    /// hook the execution runtime's simulated transport injects through.
    pub fn scaled(&self, factor: f64) -> NetworkSpec {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "capacity scale must be positive and finite"
        );
        NetworkSpec {
            nic_out: self.nic_out.iter().map(|c| c * factor).collect(),
            nic_in: self.nic_in.iter().map(|c| c * factor).collect(),
            backbone: self.backbone.scaled(factor),
            extra_links: self.extra_links.iter().map(|p| p.scaled(factor)).collect(),
            route: self.route.clone(),
        }
    }

    /// Validates node counts, capacities (all links) and the routing table.
    pub fn validate(&self) -> Result<(), String> {
        if self.nic_out.is_empty() || self.nic_in.is_empty() {
            return Err("both clusters need at least one node".into());
        }
        if self
            .nic_out
            .iter()
            .chain(&self.nic_in)
            .any(|&c| !(c.is_finite() && c > 0.0))
        {
            return Err("NIC capacities must be positive and finite".into());
        }
        self.backbone.validate()?;
        for (i, l) in self.extra_links.iter().enumerate() {
            l.validate().map_err(|e| format!("extra link {i}: {e}"))?;
        }
        if !self.route.is_empty() {
            if self.route.len() != self.senders() * self.receivers() {
                return Err("routing table must be senders × receivers".into());
            }
            if self.route.iter().any(|&l| l >= self.num_links()) {
                return Err("routing table references an unknown link".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = CapacityProfile::Constant(100.0);
        assert_eq!(p.at(0.0), 100.0);
        assert_eq!(p.at(1e9), 100.0);
        assert_eq!(p.next_change_after(5.0), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn piecewise_profile() {
        let p = CapacityProfile::Piecewise(vec![(0.0, 100.0), (10.0, 50.0), (20.0, 80.0)]);
        assert!(p.validate().is_ok());
        assert_eq!(p.at(0.0), 100.0);
        assert_eq!(p.at(9.999), 100.0);
        assert_eq!(p.at(10.0), 50.0);
        assert_eq!(p.at(25.0), 80.0);
        assert_eq!(p.next_change_after(0.0), Some(10.0));
        assert_eq!(p.next_change_after(10.0), Some(20.0));
        assert_eq!(p.next_change_after(20.0), None);
    }

    #[test]
    fn invalid_profiles() {
        assert!(CapacityProfile::Constant(0.0).validate().is_err());
        assert!(CapacityProfile::Piecewise(vec![]).validate().is_err());
        assert!(CapacityProfile::Piecewise(vec![(1.0, 5.0)])
            .validate()
            .is_err());
        assert!(CapacityProfile::Piecewise(vec![(0.0, 5.0), (0.0, 6.0)])
            .validate()
            .is_err());
        assert!(CapacityProfile::Piecewise(vec![(0.0, 5.0), (1.0, -2.0)])
            .validate()
            .is_err());
    }

    #[test]
    fn testbed_spec() {
        let s = NetworkSpec::testbed(5);
        assert_eq!(s.senders(), 10);
        assert_eq!(s.receivers(), 10);
        assert!((s.nic_out[0] - 20.0).abs() < 1e-9);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn scaled_capacities() {
        let p = CapacityProfile::Piecewise(vec![(0.0, 100.0), (5.0, 40.0)]);
        let half = p.scaled(0.5);
        assert_eq!(half.at(0.0), 50.0);
        assert_eq!(half.at(6.0), 20.0);
        assert_eq!(half.next_change_after(0.0), Some(5.0), "breakpoints keep");

        let s = NetworkSpec::uniform(2, 3, 100.0, 80.0, 300.0).scaled(0.25);
        assert_eq!(s.nic_out, vec![25.0, 25.0]);
        assert_eq!(s.nic_in, vec![20.0, 20.0, 20.0]);
        assert_eq!(s.backbone.at(0.0), 75.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_scale_rejected() {
        NetworkSpec::uniform(1, 1, 1.0, 1.0, 1.0).scaled(0.0);
    }

    #[test]
    fn invalid_spec() {
        let s = NetworkSpec::uniform(0, 2, 1.0, 1.0, 1.0);
        assert!(s.validate().is_err());
        let s = NetworkSpec::uniform(2, 2, -1.0, 1.0, 1.0);
        assert!(s.validate().is_err());
        let s = NetworkSpec::uniform(2, 2, f64::INFINITY, 1.0, 1.0);
        assert!(s.validate().is_err(), "non-finite NIC");
        assert!(CapacityProfile::Constant(f64::NAN).validate().is_err());
        assert!(CapacityProfile::Constant(f64::INFINITY).validate().is_err());
        let mut s = NetworkSpec::uniform(2, 2, 1.0, 1.0, 1.0);
        s.route = vec![0; 3];
        assert!(s.validate().is_err(), "misshapen routing table");
        s.route = vec![0, 0, 0, 9];
        assert!(s.validate().is_err(), "route to unknown link");
        s.route = vec![0; 4];
        assert!(s.validate().is_ok());
        s.extra_links = vec![CapacityProfile::Constant(0.0)];
        assert!(s.validate().is_err(), "bad extra link");
    }

    #[test]
    fn from_topology_lowers_links_and_routes() {
        use kpbs::Topology;
        // Homogeneous: identical to the uniform construction, still a
        // single-link spec (empty route table keeps wire format unchanged).
        let p = Platform::new(3, 2, 10.0, 20.0, 50.0);
        let lowered = NetworkSpec::from_platform(&p);
        assert_eq!(lowered, NetworkSpec::uniform(3, 2, 10.0, 20.0, 50.0));
        assert_eq!(lowered.num_links(), 1);
        assert_eq!(lowered.link_of(2, 1), 0);

        // Two-backbone: routes land on the right links.
        let topo = kpbs::instances::two_backbone_topology(2, 100.0, 10.0, 300.0, 40.0);
        let s = NetworkSpec::from_topology(&topo).unwrap();
        assert_eq!(s.num_links(), 2);
        assert_eq!(s.senders(), 4);
        assert_eq!(s.link_of(0, 0), 0, "fast pair on link 0");
        assert_eq!(s.link_of(2, 2), 1, "slow pair on link 1");
        assert_eq!(s.link_profile(1), &CapacityProfile::Constant(40.0));
        assert!(s.validate().is_ok());
        let quarter = s.scaled(0.25);
        assert_eq!(quarter.link_profile(1).at(0.0), 10.0);
        assert_eq!(quarter.route, s.route, "scaling keeps routes");

        // Invalid topologies are rejected at this choke point too.
        let mut bad = Topology::two_cluster(2, 2, 100.0, 100.0, 100.0);
        bad.links[0].capacity = f64::NAN;
        assert!(NetworkSpec::from_topology(&bad).is_err());
    }
}
