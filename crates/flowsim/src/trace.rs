//! Rate traces: the piecewise-constant bandwidth allocation over time.

use serde::{Deserialize, Serialize};

/// One allocation interval: starting at `time`, the listed flows ran at the
/// listed rates (bytes/s) until the next sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Interval start, seconds.
    pub time: f64,
    /// `(flow index, rate in bytes/s)` for every then-active flow.
    pub rates: Vec<(usize, f64)>,
}

/// A full run's allocation history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Samples in time order.
    pub samples: Vec<Sample>,
}

impl Trace {
    /// Appends a sample for the active flows `idx` with dense `rates`.
    pub fn record(&mut self, time: f64, idx: &[usize], rates: &[f64]) {
        self.samples.push(Sample {
            time,
            rates: idx.iter().map(|&i| (i, rates[i])).collect(),
        });
    }

    /// The aggregate rate (bytes/s) at sample `s`.
    pub fn aggregate_rate(&self, s: usize) -> f64 {
        self.samples[s].rates.iter().map(|&(_, r)| r).sum()
    }

    /// Mean utilisation of a resource of capacity `capacity_bytes_per_s`
    /// over `[0, end_time]`: the time-integral of the aggregate rate divided
    /// by `capacity · end_time`. The brute-force TCP arm shows up here as a
    /// backbone running visibly below 1.0 while the scheduled arm saturates.
    pub fn mean_utilization(&self, capacity_bytes_per_s: f64, end_time: f64) -> f64 {
        if end_time <= 0.0 || capacity_bytes_per_s <= 0.0 {
            return 0.0;
        }
        let mut transferred = 0.0;
        for (i, s) in self.samples.iter().enumerate() {
            let end = self.samples.get(i + 1).map(|n| n.time).unwrap_or(end_time);
            let dt = (end - s.time).max(0.0);
            transferred += self.aggregate_rate(i) * dt;
        }
        transferred / (capacity_bytes_per_s * end_time)
    }

    /// Integrates each flow's transferred bytes over the trace, using the
    /// next sample (or `end_time`) as each interval's end.
    pub fn transferred_bytes(&self, flow_count: usize, end_time: f64) -> Vec<f64> {
        let mut out = vec![0.0; flow_count];
        for (i, s) in self.samples.iter().enumerate() {
            let end = self.samples.get(i + 1).map(|n| n.time).unwrap_or(end_time);
            let dt = (end - s.time).max(0.0);
            for &(f, r) in &s.rates {
                out[f] += r * dt;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut t = Trace::default();
        t.record(0.0, &[0, 2], &[10.0, 0.0, 5.0]);
        assert_eq!(t.samples.len(), 1);
        assert_eq!(t.aggregate_rate(0), 15.0);
        assert_eq!(t.samples[0].rates, vec![(0, 10.0), (2, 5.0)]);
    }

    #[test]
    fn integration() {
        let mut t = Trace::default();
        t.record(0.0, &[0], &[10.0]);
        t.record(2.0, &[0], &[20.0]);
        let bytes = t.transferred_bytes(1, 3.0);
        assert!((bytes[0] - (10.0 * 2.0 + 20.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn utilization() {
        let mut t = Trace::default();
        // Half the time at full rate 100, half idle-ish at 50.
        t.record(0.0, &[0], &[100.0]);
        t.record(1.0, &[0], &[50.0]);
        let u = t.mean_utilization(100.0, 2.0);
        assert!((u - 0.75).abs() < 1e-9, "{u}");
        assert_eq!(t.mean_utilization(0.0, 2.0), 0.0);
        assert_eq!(t.mean_utilization(100.0, 0.0), 0.0);
    }
}
