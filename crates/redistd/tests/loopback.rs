//! Loopback integration tests: a real `redistd` server on 127.0.0.1 driven
//! by real TCP clients, covering the acceptance criteria of the serving
//! layer:
//!
//! (a) schedules returned over the wire are byte-identical to a cold local
//!     plan of the same instance, whether served cold or from cache;
//! (b) repeated matrices are served from the plan cache and counted;
//! (c) overload with queue depth 1 produces `Rejected{queue_full}`
//!     responses, not hangs;
//! (d) graceful shutdown drains in-flight requests to their responses;
//! (e) event-core isolation: a slow-reading connection is parked by
//!     per-connection backpressure instead of stalling its I/O thread,
//!     and requests dribbled in one byte at a time still decode.

use kpbs::traffic::TickScale;
use kpbs::{Platform, TrafficMatrix};
use redistd::client::{self, Client};
use redistd::server::{self, ServerConfig};
use redistd::wire::{self, Algo, PlanResponse, RejectReason};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const BETA: f64 = 0.05;

/// Deterministic workload: `distinct` sparse matrices, none empty.
fn make_matrices(distinct: usize, n: usize) -> Vec<TrafficMatrix> {
    (0..distinct)
        .map(|i| {
            let mut t = TrafficMatrix::zeros(n, n);
            let mut state = (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for r in 0..n {
                for c in 0..n {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state % 5 < 2 {
                        t.set(r, c, (1 + state % 32) * 1_000_000);
                    }
                }
            }
            t.set(i % n, (i * 3) % n, 7_000_000);
            t
        })
        .collect()
}

fn cold_plan_bytes(traffic: &TrafficMatrix, platform: &Platform, algo: Algo) -> (Vec<u8>, u64) {
    let (inst, _) = traffic.to_instance(platform, BETA, TickScale::MILLIS);
    let schedule = match algo {
        Algo::Oggp => kpbs::oggp(&inst),
        Algo::Ggp => kpbs::ggp(&inst),
    };
    kpbs::validate::validate(&inst, &schedule).expect("cold plan validates");
    let cost = schedule.cost();
    (wire::encode_schedule(&schedule), cost)
}

/// (a) + (b): 64+ concurrent requests over a handful of distinct matrices;
/// every response must byte-compare equal to the cold plan, and after a
/// warm-up pass every repeat must be a counted cache hit.
#[test]
fn concurrent_requests_are_byte_identical_and_cached() {
    telemetry::counters::enable();
    let handle = server::start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let n = 10;
    let distinct = 4;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let matrices = make_matrices(distinct, n);
    let expected: Vec<(Vec<u8>, u64)> = matrices
        .iter()
        .map(|t| cold_plan_bytes(t, &platform, Algo::Oggp))
        .collect();

    // Warm-up: plan each distinct matrix once so the concurrent phase is
    // deterministic — every one of its requests must then hit the cache.
    {
        let mut c = Client::connect(addr).unwrap();
        for (i, t) in matrices.iter().enumerate() {
            let req = client::request(i as u64, Algo::Oggp, t, &platform, BETA);
            match c.plan(&req).unwrap() {
                PlanResponse::Ok {
                    cached, schedule, ..
                } => {
                    assert!(!cached, "first sight of matrix {i} cannot be cached");
                    assert_eq!(wire::encode_schedule(&schedule), expected[i].0);
                }
                other => panic!("warm-up {i}: {other:?}"),
            }
        }
    }

    let threads = 8;
    let per_thread = 8; // 64 concurrent requests
    let next_id = AtomicU64::new(1000);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut c = Client::connect(addr).unwrap();
                for j in 0..per_thread {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    let which = (id as usize + j) % distinct;
                    let req = client::request(id, Algo::Oggp, &matrices[which], &platform, BETA);
                    match c.plan(&req).unwrap() {
                        PlanResponse::Ok {
                            request_id,
                            cached,
                            schedule,
                            cost,
                            work,
                            ..
                        } => {
                            assert_eq!(request_id, id);
                            assert!(cached, "request {id} should be a cache hit after warm-up");
                            assert_eq!(
                                wire::encode_schedule(&schedule),
                                expected[which].0,
                                "request {id}: cached schedule differs from cold plan"
                            );
                            assert_eq!(cost, expected[which].1);
                            assert!(
                                work.iter().all(|&w| w == 0),
                                "cache hits report a zero work delta"
                            );
                        }
                        other => panic!("request {id}: {other:?}"),
                    }
                }
            });
        }
    });

    let stats = handle.shutdown();
    let total = (threads * per_thread + distinct) as u64;
    assert_eq!(stats.served, total);
    assert_eq!(stats.cache.hits, (threads * per_thread) as u64);
    assert_eq!(stats.cache.misses, distinct as u64);
    assert_eq!(stats.rejected_queue_full, 0);
    assert_eq!(stats.errors, 0);
}

/// GGP and OGGP cache entries must not collide: the algorithm tag is part
/// of the cache key, so the same matrix planned under both returns each
/// algorithm's own schedule.
#[test]
fn cache_keys_separate_algorithms() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let n = 8;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];
    let (oggp_bytes, _) = cold_plan_bytes(traffic, &platform, Algo::Oggp);
    let (ggp_bytes, _) = cold_plan_bytes(traffic, &platform, Algo::Ggp);

    let mut c = Client::connect(handle.addr()).unwrap();
    for (id, algo, want) in [(1, Algo::Oggp, &oggp_bytes), (2, Algo::Ggp, &ggp_bytes)] {
        match c
            .plan(&client::request(id, algo, traffic, &platform, BETA))
            .unwrap()
        {
            PlanResponse::Ok {
                cached, schedule, ..
            } => {
                assert!(!cached);
                assert_eq!(&wire::encode_schedule(&schedule), want);
            }
            other => panic!("{other:?}"),
        }
    }
    handle.shutdown();
}

/// (c) overload: one slow worker, queue depth 1, a burst of concurrent
/// requests. The surplus must be answered `Rejected{queue_full}` promptly —
/// nothing may hang or be silently dropped.
#[test]
fn overload_rejects_rather_than_hangs() {
    let handle = server::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        worker_think_ms: 150,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let matrices = make_matrices(8, n);

    let start = Instant::now();
    let results: Vec<PlanResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let m = &matrices[i];
                let platform = &platform;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.plan(&client::request(i as u64, Algo::Oggp, m, platform, BETA))
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let ok = results
        .iter()
        .filter(|r| matches!(r, PlanResponse::Ok { .. }))
        .count();
    let rejected = results
        .iter()
        .filter(|r| {
            matches!(
                r,
                PlanResponse::Rejected {
                    reason: RejectReason::QueueFull,
                    ..
                }
            )
        })
        .count();
    assert_eq!(ok + rejected, 8, "every request gets exactly one answer");
    assert!(ok >= 1, "the in-service request must complete");
    assert!(
        rejected >= 5,
        "burst past depth-1 queue must be shed, got {rejected}"
    );
    // 8 sequential 150 ms plans would take 1.2 s; shedding keeps it well
    // under that even on a loaded CI machine.
    assert!(
        elapsed < Duration::from_secs(1),
        "rejections must be immediate, took {elapsed:?}"
    );

    let stats = handle.shutdown();
    assert_eq!(stats.rejected_queue_full, rejected as u64);
    assert_eq!(stats.served, ok as u64);
}

/// Oversized matrices are refused at admission with `matrix_too_large`.
#[test]
fn oversized_matrix_is_rejected() {
    let handle = server::start(ServerConfig {
        max_cells: 16,
        ..ServerConfig::default()
    })
    .unwrap();
    let n = 6; // 36 cells > 16
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];
    let mut c = Client::connect(handle.addr()).unwrap();
    match c
        .plan(&client::request(9, Algo::Oggp, traffic, &platform, BETA))
        .unwrap()
    {
        PlanResponse::Rejected {
            request_id,
            reason: RejectReason::MatrixTooLarge,
        } => assert_eq!(request_id, 9),
        other => panic!("{other:?}"),
    }
    let stats = handle.shutdown();
    assert_eq!(stats.rejected_too_large, 1);
    assert_eq!(stats.served, 0);
}

/// (d) graceful shutdown: a request in flight on a slow worker when
/// shutdown begins still receives its (correct) response.
#[test]
fn shutdown_drains_in_flight_requests() {
    let handle = server::start(ServerConfig {
        workers: 1,
        worker_think_ms: 300,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = make_matrices(1, n).remove(0);
    let (expected_bytes, _) = cold_plan_bytes(&traffic, &platform, Algo::Oggp);

    let client_thread = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.plan(&client::request(42, Algo::Oggp, &traffic, &platform, BETA))
            .unwrap()
    });
    // Let the request reach the worker's think-sleep, then shut down while
    // it is mid-plan.
    std::thread::sleep(Duration::from_millis(100));
    let stats = handle.shutdown();

    match client_thread.join().unwrap() {
        PlanResponse::Ok {
            request_id,
            schedule,
            ..
        } => {
            assert_eq!(request_id, 42);
            assert_eq!(wire::encode_schedule(&schedule), expected_bytes);
        }
        other => panic!("in-flight request lost in shutdown: {other:?}"),
    }
    assert_eq!(stats.served, 1, "drained request is counted");
}

/// The plaintext `STATS` admin command reports live server state.
#[test]
fn stats_command_reports_state() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];

    let mut c = Client::connect(addr).unwrap();
    for id in 0..3 {
        let resp = c.plan(&client::request(id, Algo::Oggp, traffic, &platform, BETA));
        assert!(matches!(resp, Ok(PlanResponse::Ok { .. })));
    }
    let report = client::fetch_stats(addr).unwrap();
    assert_eq!(client::stats_field(&report, "served"), Some(3));
    assert_eq!(client::stats_field(&report, "cache_hits"), Some(2));
    assert_eq!(client::stats_field(&report, "cache_misses"), Some(1));
    assert_eq!(client::stats_field(&report, "rejected_queue_full"), Some(0));
    // The derived fields parse as numbers, not just appear as text: hit
    // rate is hits/served, the idle queue is empty, and the latency
    // quantiles are ordered and non-zero after three served plans.
    let hit_rate = client::stats_field_f64(&report, "cache_hit_rate").unwrap();
    assert!((hit_rate - 2.0 / 3.0).abs() < 1e-3, "hit rate {hit_rate}");
    assert_eq!(client::stats_field(&report, "queue_depth"), Some(0));
    let p50 = client::stats_field(&report, "service_us_p50").unwrap();
    let p99 = client::stats_field(&report, "service_us_p99").unwrap();
    assert!(p50 > 0, "p50 of served requests is positive");
    assert!(p99 >= p50, "quantiles ordered: p99 {p99} >= p50 {p50}");
    assert!(client::stats_field_f64(&report, "service_us_mean").unwrap() > 0.0);
    // Queue-wait is measured admission -> worker pickup; on an idle server
    // the fields exist and parse even when the waits round to zero.
    assert!(client::stats_field(&report, "queue_wait_us_p50").is_some());
    assert!(client::stats_field(&report, "queue_wait_us_p99").is_some());
    assert!(client::stats_field_f64(&report, "queue_wait_us_mean").is_some());
    handle.shutdown();
}

/// The `METRICS` admin command renders well-formed Prometheus text
/// exposition whose values agree with the traffic just served.
#[test]
fn metrics_command_exposes_live_registry() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];

    let mut c = Client::connect(addr).unwrap();
    for id in 0..3 {
        let resp = c.plan(&client::request(id, Algo::Oggp, traffic, &platform, BETA));
        assert!(matches!(resp, Ok(PlanResponse::Ok { .. })));
    }

    let text = client::fetch_metrics(addr).unwrap();
    telemetry::metrics::validate_exposition(&text).expect("exposition well-formed");
    let sample = |name: &str, labels: &[(&str, &str)]| {
        telemetry::metrics::find_sample(&text, name, labels)
            .unwrap_or_else(|| panic!("sample {name} {labels:?} missing"))
    };
    assert_eq!(sample("redistd_admissions_total", &[]), 3.0);
    assert_eq!(
        sample("redistd_requests_total", &[("outcome", "planned")]),
        1.0
    );
    assert_eq!(
        sample("redistd_requests_total", &[("outcome", "cache_hit")]),
        2.0
    );
    assert_eq!(
        sample("redistd_requests_total", &[("outcome", "shed_queue_full")]),
        0.0
    );
    assert_eq!(sample("redistd_cache_entries", &[]), 1.0);
    assert_eq!(sample("redistd_service_us_count", &[]), 3.0);
    assert_eq!(sample("redistd_queue_wait_us_count", &[]), 3.0);
    assert!(sample("redistd_service_us", &[("quantile", "0.99")]) > 0.0);
    // Quantile legs exist for the queue-wait summary too (values may round
    // to zero on an idle server).
    telemetry::metrics::find_sample(&text, "redistd_queue_wait_us", &[("quantile", "0.5")])
        .expect("queue-wait p50 exported");
    handle.shutdown();
}

/// Tentpole acceptance: the `server_id` carried on a v2 `Ok` response is
/// the server-minted request id, and it joins the response to exactly one
/// flight record holding that request's admission-to-reply story.
#[test]
fn flight_records_correlate_with_server_ids() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];

    let mut c = Client::connect(addr).unwrap();
    let mut seen: Vec<(u64, u64, bool)> = Vec::new(); // (client id, rid, cached)
    for id in 10..14 {
        match c
            .plan(&client::request(id, Algo::Oggp, traffic, &platform, BETA))
            .unwrap()
        {
            PlanResponse::Ok {
                request_id,
                cached,
                server_id,
                ..
            } => {
                assert_eq!(request_id, id);
                assert_ne!(server_id, 0, "every admitted request gets a rid");
                seen.push((id, server_id, cached));
            }
            other => panic!("{other:?}"),
        }
    }
    let rids: std::collections::HashSet<u64> = seen.iter().map(|&(_, rid, _)| rid).collect();
    assert_eq!(rids.len(), seen.len(), "rids are unique");

    let dump = client::fetch_flight(addr).unwrap();
    let header = dump.lines().next().unwrap();
    assert!(header.starts_with("redistd flight records=4"), "{header}");
    assert!(header.ends_with("total=4"), "{header}");
    for &(id, rid, cached) in &seen {
        let line = dump
            .lines()
            .find(|l| l.contains(&format!(" rid={rid} ")))
            .unwrap_or_else(|| panic!("no flight record for rid {rid}"));
        assert!(line.contains(&format!("client_id={id} ")), "{line}");
        let outcome = if cached { "cache_hit" } else { "planned" };
        assert!(line.contains(&format!("outcome={outcome} ")), "{line}");
        assert!(line.contains(&format!("n1={n} n2={n} ")), "{line}");
        if !cached {
            // A cold plan records its planning time; a hit records zero.
            let plan_us: u64 = line
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("plan_us="))
                .unwrap()
                .parse()
                .unwrap();
            assert!(plan_us > 0, "cold plan has a timed plan phase: {line}");
        }
    }
    handle.shutdown();
}

/// Shed and malformed requests leave flight records too, and the ring
/// survives wraparound keeping the newest entries.
#[test]
fn flight_ring_records_sheds_and_wraps() {
    let handle = server::start(ServerConfig {
        max_cells: 16,
        flight_capacity: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let n = 6; // 36 cells > 16 -> every request is shed
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];

    let mut c = Client::connect(addr).unwrap();
    for id in 0..6 {
        let resp = c
            .plan(&client::request(id, Algo::Oggp, traffic, &platform, BETA))
            .unwrap();
        assert!(matches!(resp, PlanResponse::Rejected { .. }));
    }
    let dump = client::fetch_flight(addr).unwrap();
    let header = dump.lines().next().unwrap();
    assert!(
        header.starts_with("redistd flight records=4 capacity=4 total=6"),
        "{header}"
    );
    let body: Vec<&str> = dump.lines().skip(1).collect();
    assert_eq!(body.len(), 4, "ring keeps the newest capacity records");
    for line in &body {
        assert!(line.contains("outcome=shed_too_large "), "{line}");
        assert!(line.contains("worker=-1 "), "never reached a worker");
    }
    // Oldest two records (client ids 0 and 1) were overwritten.
    assert!(!dump.contains("client_id=0 "), "{dump}");
    assert!(!dump.contains("client_id=1 "), "{dump}");
    assert!(dump.contains("client_id=5 "), "{dump}");
    handle.shutdown();
}

/// A v1 client (no `server_id` field on `Ok`) still gets valid, byte-equal
/// schedules from a v2 server — the extension is invisible to old clients.
#[test]
fn v1_clients_are_served_compatibly() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];
    let (expected_bytes, _) = cold_plan_bytes(traffic, &platform, Algo::Oggp);

    let mut req = client::request(7, Algo::Oggp, traffic, &platform, BETA);
    req.wire_version = 1;
    let mut c = Client::connect(handle.addr()).unwrap();
    match c.plan(&req).unwrap() {
        PlanResponse::Ok {
            request_id,
            schedule,
            server_id,
            ..
        } => {
            assert_eq!(request_id, 7);
            assert_eq!(server_id, 0, "v1 responses carry no server_id");
            assert_eq!(wire::encode_schedule(&schedule), expected_bytes);
        }
        other => panic!("{other:?}"),
    }
    handle.shutdown();
}

/// A malformed-but-headed frame for connection-level tests: valid magic,
/// version, kind and request id followed by garbage, so the server can
/// recover the id for its error response.
fn malformed_payload(request_id: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&wire::MAGIC);
    payload.extend_from_slice(&1u16.to_be_bytes());
    payload.push(0);
    payload.extend_from_slice(&request_id.to_be_bytes());
    payload.extend_from_slice(&[0xAB; 7]);
    let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(&payload);
    framed
}

/// (e) slow-reader isolation: connection A floods requests far faster than
/// the (deliberately slowed) workers can answer and reads nothing back, so
/// its decoded-but-unserved frames pile up until the per-connection
/// pending bound parks its reads. Meanwhile connection B's requests on the
/// same server must keep completing promptly, and every one of A's
/// responses eventually arrives in order.
#[test]
fn slow_reader_cannot_stall_other_connections() {
    let handle = server::start(ServerConfig {
        // A tiny pending ring + a slow worker make the pile-up (and the
        // backpressure transition) deterministic: the bound trips on
        // decoded frames, independent of kernel socket buffer sizes.
        pending_limit: 4,
        worker_think_ms: 10,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];

    const FLOOD: u64 = 100;
    let mut slow = std::net::TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    let mut slow_writer = slow.try_clone().unwrap();
    let flood_traffic = traffic.clone();
    let flood_platform = platform;
    let writer = std::thread::spawn(move || {
        for id in 0..FLOOD {
            let req = client::request(id, Algo::Oggp, &flood_traffic, &flood_platform, BETA);
            wire::write_all(&mut slow_writer, &wire::encode_request(&req)).unwrap();
        }
    });
    writer.join().unwrap(); // ~100 small frames: fits kernel buffers, never blocks

    // B's closed-loop requests stay fast while A's backlog sits parked: A
    // holds at most one worker at a time, not a whole I/O thread.
    let start = Instant::now();
    let mut b = Client::connect(addr).unwrap();
    for id in 1000..1030 {
        match b
            .plan(&client::request(id, Algo::Oggp, traffic, &platform, BETA))
            .unwrap()
        {
            PlanResponse::Ok { request_id, .. } => assert_eq!(request_id, id),
            other => panic!("B's request {id}: {other:?}"),
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "B stalled behind the slow reader: {:?}",
        start.elapsed()
    );

    // The event core must have parked A's reads at least once (the thread
    // core blocks A's own connection thread instead, so only check there).
    if server::ServingCore::default().resolved() == server::ServingCore::EventLoop {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let text = client::fetch_metrics(addr).unwrap();
            let parked =
                telemetry::metrics::find_sample(&text, "redistd_io_backpressure_total", &[])
                    .unwrap_or(0.0);
            if parked > 0.0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "backpressure never engaged while {FLOOD} requests sat pending"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // A finally reads: all responses arrive, in order, none dropped.
    for id in 0..FLOOD {
        let frame = wire::read_frame(&mut slow).unwrap();
        match wire::decode_response(&frame).unwrap() {
            PlanResponse::Ok { request_id, .. } => assert_eq!(request_id, id),
            other => panic!("slow reader response {id}: {other:?}"),
        }
    }
    drop(slow);
    handle.shutdown();
}

/// (e) a request dribbled in one byte at a time decodes and plans exactly
/// like one delivered whole — the resumable decoder under a real socket.
#[test]
fn request_split_into_single_bytes_is_served() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];
    let (expected_bytes, _) = cold_plan_bytes(traffic, &platform, Algo::Oggp);

    let req = client::request(11, Algo::Oggp, traffic, &platform, BETA);
    let encoded = wire::encode_request(&req);
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    for byte in &encoded {
        wire::write_all(&mut stream, std::slice::from_ref(byte)).unwrap();
        // A breather every few bytes keeps loopback from coalescing the
        // whole message into one segment (correct either way).
        if byte.is_multiple_of(16) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let frame = wire::read_frame(&mut stream).unwrap();
    match wire::decode_response(&frame).unwrap() {
        PlanResponse::Ok {
            request_id,
            schedule,
            ..
        } => {
            assert_eq!(request_id, 11);
            assert_eq!(wire::encode_schedule(&schedule), expected_bytes);
        }
        other => panic!("{other:?}"),
    }
    let stats = handle.shutdown();
    assert_eq!(stats.served, 1);
}

/// The STATS report carries the serving-core fields: which core is
/// running, its I/O thread count, and a live open-connection gauge.
#[test]
fn stats_report_serving_core_fields() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];

    // A completed request guarantees this connection is fully registered
    // before the gauge is read.
    let mut c = Client::connect(addr).unwrap();
    let resp = c.plan(&client::request(0, Algo::Oggp, traffic, &platform, BETA));
    assert!(matches!(resp, Ok(PlanResponse::Ok { .. })));

    let report = client::fetch_stats(addr).unwrap();
    let core = report
        .lines()
        .find_map(|l| l.strip_prefix("core: "))
        .expect("STATS reports its serving core");
    assert_eq!(core, server::ServingCore::default().label());
    assert!(client::stats_field(&report, "io_threads").is_some());
    // At least the idle client and the STATS connection itself are open.
    let open = client::stats_field(&report, "connections_open").unwrap();
    assert!(open >= 2, "connections_open {open}");

    // The serving metrics exist in the exposition too.
    let text = client::fetch_metrics(addr).unwrap();
    let sample = |name: &str| {
        telemetry::metrics::find_sample(&text, name, &[])
            .unwrap_or_else(|| panic!("sample {name} missing"))
    };
    assert!(sample("redistd_accepts_total") >= 2.0);
    assert!(sample("redistd_connections_open") >= 1.0);
    drop(c);
    handle.shutdown();
}

/// Malformed frames get an error response (with the request id when it can
/// be recovered) instead of a dropped connection.
#[test]
fn malformed_frame_gets_error_response() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    wire::write_all(&mut stream, &malformed_payload(77)).unwrap();
    let frame = wire::read_frame(&mut stream).unwrap();
    match wire::decode_response(&frame).unwrap() {
        PlanResponse::Error { request_id, .. } => assert_eq!(request_id, 77),
        other => panic!("{other:?}"),
    }
    let stats = handle.shutdown();
    assert_eq!(stats.errors, 1);
}

/// Client-side twin of the server's per-delta byte→tick conversion, used
/// to drive a local mirror [`kpbs::DeltaPlanner`] through the same edits
/// the wire carries.
fn convert_delta(platform: &Platform, d: &wire::WireDelta) -> kpbs::MatrixDelta {
    match *d {
        wire::WireDelta::SetCell {
            sender,
            receiver,
            bytes,
        } => kpbs::MatrixDelta::Set {
            sender: sender as usize,
            receiver: receiver as usize,
            ticks: kpbs::traffic::message_ticks(platform, TickScale::MILLIS, bytes),
        },
        wire::WireDelta::GrowNodes { senders, receivers } => kpbs::MatrixDelta::GrowNodes {
            senders: senders as usize,
            receivers: receivers as usize,
        },
        wire::WireDelta::DropSender(i) => kpbs::MatrixDelta::DropSender(i as usize),
        wire::WireDelta::DropReceiver(j) => kpbs::MatrixDelta::DropReceiver(j as usize),
    }
}

/// Tentpole acceptance: a live session survives a streamed delta campaign
/// with zero byte-compare failures. The planner is deterministic, so a
/// local mirror `DeltaPlanner` fed the same edits must produce
/// byte-identical schedules, costs, generations and repair levels at every
/// step — on whichever serving core carries the frames.
fn run_session_campaign(core: server::ServingCore) {
    telemetry::counters::enable();
    let handle = server::start(ServerConfig {
        core,
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let n = 8usize;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = make_matrices(1, n).remove(0);
    let (inst, _) = traffic.to_instance(&platform, BETA, TickScale::MILLIS);
    let mut mirror = kpbs::DeltaPlanner::new(inst);

    let mut c = Client::connect(addr).unwrap();
    let session_id = match c
        .session(&client::session_open(1, &traffic, &platform, BETA))
        .unwrap()
    {
        PlanResponse::Session {
            session_id,
            generation,
            level,
            schedule,
            cost,
            ..
        } => {
            assert_eq!(generation, 0);
            assert_eq!(level, wire::SessionLevel::Opened);
            assert_eq!(
                wire::encode_schedule(&schedule),
                wire::encode_schedule(mirror.schedule())
            );
            assert_eq!(cost, mirror.schedule().cost());
            session_id
        }
        other => panic!("open: {other:?}"),
    };
    assert_ne!(session_id, 0);

    // A deterministic streamed campaign touching every delta kind:
    // resizes, cancellations, node drops, and a mid-stream grow addressed
    // by later cells.
    let mut batches: Vec<Vec<wire::WireDelta>> = Vec::new();
    let mut state = 0xabcd_ef01_2345_6789u64;
    for round in 0u64..16 {
        let mut batch = Vec::new();
        for _ in 0..=(round % 3) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let sender = (state % n as u64) as u32;
            let receiver = ((state >> 8) % n as u64) as u32;
            let bytes = if state.is_multiple_of(4) {
                0
            } else {
                (1 + state % 24) * 1_000_000
            };
            batch.push(wire::WireDelta::SetCell {
                sender,
                receiver,
                bytes,
            });
        }
        if round == 5 {
            batch.push(wire::WireDelta::DropSender(2));
        }
        if round == 9 {
            batch.push(wire::WireDelta::DropReceiver(4));
        }
        if round == 11 {
            batch.push(wire::WireDelta::GrowNodes {
                senders: 1,
                receivers: 1,
            });
            batch.push(wire::WireDelta::SetCell {
                sender: n as u32,
                receiver: n as u32,
                bytes: 9_000_000,
            });
        }
        batches.push(batch);
    }

    let mut levels = std::collections::HashSet::new();
    for (k, batch) in batches.iter().enumerate() {
        let local: Vec<kpbs::MatrixDelta> =
            batch.iter().map(|d| convert_delta(&platform, d)).collect();
        let want = mirror.replan(&local);
        match c
            .session(&client::session_delta(
                100 + k as u64,
                session_id,
                batch.clone(),
            ))
            .unwrap()
        {
            PlanResponse::Session {
                session_id: sid,
                generation,
                level,
                schedule,
                cost,
                lower_bound,
                ..
            } => {
                assert_eq!(sid, session_id);
                assert_eq!(generation, want.generation, "round {k}");
                assert_eq!(level.label(), want.level.label(), "round {k}");
                assert_eq!(
                    wire::encode_schedule(&schedule),
                    wire::encode_schedule(mirror.schedule()),
                    "round {k}: patched schedule must byte-equal the mirror"
                );
                assert_eq!(cost, want.cost, "round {k}");
                assert_eq!(lower_bound, want.lower_bound, "round {k}");
                levels.insert(level.label());
            }
            other => panic!("delta {k}: {other:?}"),
        }
    }
    assert!(
        levels.len() >= 2,
        "campaign should exercise multiple repair levels, saw {levels:?}"
    );

    // COMMIT publishes into the shared plan cache; CLOSE frees the slot;
    // a closed id stops resolving.
    match c.session(&client::session_commit(900, session_id)).unwrap() {
        PlanResponse::Session {
            level, generation, ..
        } => {
            assert_eq!(level, wire::SessionLevel::Committed);
            assert_eq!(generation, mirror.generation());
        }
        other => panic!("commit: {other:?}"),
    }
    match c.session(&client::session_close(901, session_id)).unwrap() {
        PlanResponse::Session { level, .. } => assert_eq!(level, wire::SessionLevel::Closed),
        other => panic!("close: {other:?}"),
    }
    match c
        .session(&client::session_delta(902, session_id, Vec::new()))
        .unwrap()
    {
        PlanResponse::SessionRejected { reason, .. } => {
            assert_eq!(reason, wire::SessionRejectReason::UnknownSession)
        }
        other => panic!("stale delta: {other:?}"),
    }

    let stats = handle.shutdown();
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
    assert_eq!(stats.sessions_open, 0);
    assert_eq!(stats.sessions_rejected, 1, "only the stale delta");
    assert_eq!(
        stats.session_repairs + stats.session_repeels + stats.session_colds,
        batches.len() as u64
    );
    assert_eq!(stats.sessions_committed, 1);
    assert_eq!(stats.cache.len, 1, "the commit is the only cache entry");
}

#[test]
fn session_campaign_on_default_core() {
    run_session_campaign(server::ServingCore::default());
}

#[test]
fn session_campaign_on_thread_core() {
    run_session_campaign(server::ServingCore::Threads);
}

/// The session table is a backpressure boundary: `OPEN` past
/// `max_sessions` is refused with `table_full`, and a close frees the
/// slot for the next open.
#[test]
fn session_table_full_is_backpressure_not_failure() {
    let handle = server::start(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];
    let mut c = Client::connect(handle.addr()).unwrap();

    let open = |c: &mut Client, id: u64| {
        c.session(&client::session_open(id, traffic, &platform, BETA))
            .unwrap()
    };
    let first = match open(&mut c, 1) {
        PlanResponse::Session { session_id, .. } => session_id,
        other => panic!("{other:?}"),
    };
    match open(&mut c, 2) {
        PlanResponse::SessionRejected {
            session_id, reason, ..
        } => {
            assert_eq!(session_id, 0);
            assert_eq!(reason, wire::SessionRejectReason::TableFull);
        }
        other => panic!("{other:?}"),
    }
    match c.session(&client::session_close(3, first)).unwrap() {
        PlanResponse::Session { level, .. } => assert_eq!(level, wire::SessionLevel::Closed),
        other => panic!("{other:?}"),
    }
    match open(&mut c, 4) {
        PlanResponse::Session { session_id, .. } => {
            assert!(session_id > first, "ids are never recycled")
        }
        other => panic!("{other:?}"),
    }
    let stats = handle.shutdown();
    assert_eq!(stats.sessions_opened, 2);
    assert_eq!(stats.sessions_rejected, 1);
    assert_eq!(stats.sessions_open, 1);
}

/// Malformed session deltas (out-of-range nodes) are answered as protocol
/// errors and leave the session fully usable — the planner never sees
/// them.
#[test]
fn out_of_range_deltas_leave_the_session_intact() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let n = 6;
    let platform = Platform::new(n, n, 100.0, 100.0, 300.0);
    let traffic = &make_matrices(1, n)[0];
    let mut c = Client::connect(handle.addr()).unwrap();

    let sid = match c
        .session(&client::session_open(1, traffic, &platform, BETA))
        .unwrap()
    {
        PlanResponse::Session { session_id, .. } => session_id,
        other => panic!("{other:?}"),
    };
    match c
        .session(&client::session_delta(
            2,
            sid,
            vec![wire::WireDelta::SetCell {
                sender: n as u32, // one past the end
                receiver: 0,
                bytes: 1_000_000,
            }],
        ))
        .unwrap()
    {
        PlanResponse::Error { message, .. } => {
            assert!(message.contains("out of range"), "{message}")
        }
        other => panic!("{other:?}"),
    }
    // The session still answers: generation is untouched by the bad batch.
    match c
        .session(&client::session_delta(
            3,
            sid,
            vec![wire::WireDelta::SetCell {
                sender: 0,
                receiver: 0,
                bytes: 2_000_000,
            }],
        ))
        .unwrap()
    {
        PlanResponse::Session { generation, .. } => assert_eq!(generation, 1),
        other => panic!("{other:?}"),
    }
    handle.shutdown();
}
