//! Adversarial-chunking equivalence tests for the resumable
//! [`FrameDecoder`] against the blocking [`read_incoming`] reference.
//!
//! The event-loop serving core sees whatever byte boundaries `read(2)`
//! happens to return: length prefixes split across reads, several
//! messages coalesced into one read, one byte at a time from a pathological
//! peer. Whatever the chunking, the decoded message sequence must be
//! byte-identical to what the blocking reader produces from the same
//! stream — otherwise the two serving cores would disagree about the
//! traffic they saw.

use proptest::collection::vec;
use proptest::prelude::*;
use redistd::wire::{self, FrameDecoder, Incoming, FLIGHT_COMMAND, METRICS_COMMAND, STATS_COMMAND};
use std::io::Cursor;

/// A message to place on the wire: a binary frame or an admin command.
#[derive(Clone, Debug)]
enum Msg {
    Frame(Vec<u8>),
    Stats,
    Metrics,
    Flight,
}

fn encode(msgs: &[Msg]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in msgs {
        match m {
            Msg::Frame(payload) => {
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(payload);
            }
            Msg::Stats => out.extend_from_slice(STATS_COMMAND),
            Msg::Metrics => out.extend_from_slice(METRICS_COMMAND),
            Msg::Flight => out.extend_from_slice(FLIGHT_COMMAND),
        }
    }
    out
}

/// Stable comparison key: `Incoming` intentionally has no `PartialEq`
/// (admin variants carry no data), but its `Debug` form is exact down to
/// every frame byte.
fn repr(i: &Incoming) -> String {
    format!("{i:?}")
}

/// Reference decode: the blocking reader over the whole stream.
fn blocking_decode(stream: &[u8]) -> Vec<String> {
    let mut cur = Cursor::new(stream.to_vec());
    let mut out = Vec::new();
    loop {
        match wire::read_incoming(&mut cur).expect("well-formed stream") {
            Incoming::Eof => return out,
            other => out.push(repr(&other)),
        }
    }
}

/// Incremental decode: feed the stream through the decoder in the given
/// chunk sizes (cycled), draining after every extend. Asserts the decoder
/// ends clean: no buffered bytes, not mid-message.
fn chunked_decode(stream: &[u8], chunks: &[usize]) -> Vec<String> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut fed = 0;
    let mut i = 0;
    while fed < stream.len() {
        let take = chunks[i % chunks.len()].max(1).min(stream.len() - fed);
        i += 1;
        dec.extend(&stream[fed..fed + take]);
        fed += take;
        while let Some(msg) = dec.poll().expect("well-formed stream") {
            out.push(repr(&msg));
        }
    }
    assert_eq!(dec.pending_bytes(), 0, "decoder ended with buffered bytes");
    assert!(!dec.is_mid_message(), "decoder ended mid-message");
    out
}

/// A strategy for one message: mostly frames (random payloads, including
/// empty), sprinkled with all three admin commands.
fn msg_strategy() -> impl Strategy<Value = Msg> {
    (0usize..10, vec(0u8..=255, 0..48)).prop_map(|(kind, payload)| match kind {
        0 => Msg::Stats,
        1 => Msg::Metrics,
        2 => Msg::Flight,
        _ => Msg::Frame(payload),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Random messages, random chunk boundaries (1..16 bytes, cycled) —
    /// the general case, which routinely splits length prefixes and admin
    /// command tails across feeds.
    #[test]
    fn decoder_matches_blocking_under_random_chunking(
        msgs in vec(msg_strategy(), 0..12),
        chunks in vec(1usize..16, 1..24),
    ) {
        let stream = encode(&msgs);
        prop_assert_eq!(chunked_decode(&stream, &chunks), blocking_decode(&stream));
    }

    /// One byte per feed — every prefix of every message is observed as a
    /// partial state.
    #[test]
    fn decoder_matches_blocking_at_one_byte_per_feed(
        msgs in vec(msg_strategy(), 1..8),
    ) {
        let stream = encode(&msgs);
        prop_assert_eq!(chunked_decode(&stream, &[1]), blocking_decode(&stream));
    }

    /// The whole stream in a single feed — maximally coalesced messages
    /// must come out one `poll` at a time, in order.
    #[test]
    fn decoder_matches_blocking_when_fully_coalesced(
        msgs in vec(msg_strategy(), 1..12),
    ) {
        let stream = encode(&msgs);
        prop_assert_eq!(chunked_decode(&stream, &[usize::MAX]), blocking_decode(&stream));
    }

    /// Chunk boundaries placed exactly around the 4-byte sniff window:
    /// feeds of 3, 4 and 5 bytes keep slicing length prefixes and admin
    /// magic at their most confusing offsets.
    #[test]
    fn decoder_matches_blocking_around_prefix_boundaries(
        msgs in vec(msg_strategy(), 1..10),
        first in 1usize..6,
    ) {
        let stream = encode(&msgs);
        prop_assert_eq!(
            chunked_decode(&stream, &[first, 3, 4, 5]),
            blocking_decode(&stream)
        );
    }
}

/// Real requests (not random bytes) survive re-chunking: encode a planning
/// request, slice it pathologically, and check the decoded frame still
/// parses into the identical request.
#[test]
fn real_request_survives_pathological_chunking() {
    let traffic = {
        let mut t = kpbs::TrafficMatrix::zeros(4, 4);
        t.set(0, 1, 5_000_000);
        t.set(2, 3, 7_000_000);
        t
    };
    let platform = kpbs::Platform::new(4, 4, 100.0, 100.0, 400.0);
    let req = redistd::client::request(42, wire::Algo::Oggp, &traffic, &platform, 0.05);
    let stream = wire::encode_request(&req);

    for chunk in [1usize, 2, 3, 5, 7] {
        let mut dec = FrameDecoder::new();
        let mut decoded = None;
        for piece in stream.chunks(chunk) {
            dec.extend(piece);
            if let Some(Incoming::Frame(payload)) = dec.poll().unwrap() {
                decoded = Some(wire::decode_request(&payload).unwrap());
            }
        }
        let got = decoded.expect("one frame per stream");
        assert_eq!(got.request_id, req.request_id);
        assert_eq!(wire::encode_request(&got), stream);
    }
}
