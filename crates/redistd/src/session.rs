//! Live delta-planning sessions — the server-side state behind the wire
//! v3 `OPEN`/`DELTA`/`COMMIT`/`CLOSE` frames.
//!
//! A session pins one [`kpbs::DeltaPlanner`] (live instance + committed
//! schedule + warm matching engine) together with the platform it was
//! opened on, so later `DELTA` frames can convert byte-sized edits into
//! tick-weighted [`kpbs::MatrixDelta`]s with exactly the conversion the
//! cold plan used. The [`SessionTable`] is the bounded registry both
//! serving cores share: `OPEN` beyond capacity is refused with
//! `table_full` (backpressure, mirroring the bounded request queue), and
//! every id is minted once and never reused, so a stale client talking to
//! a recycled slot gets `unknown_session` instead of someone else's plan.
//!
//! Sessions are worker-side state: ops arrive through the same admission
//! queue as stateless plans, and each session serialises its own ops
//! behind a per-session mutex while leaving the table free for others.

use crate::wire::{Algo, WireDelta};
use kpbs::traffic::{message_ticks, TickScale};
use kpbs::{DeltaPlanner, MatrixDelta, Platform};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One live planning session.
pub struct Session {
    /// The algorithm the session was opened with (the commit cache tag).
    pub algo: Algo,
    /// The platform fixed at `OPEN`; per-cell byte→tick conversion of
    /// every later delta uses its transfer speed.
    pub platform: Platform,
    /// The tick discretisation fixed at `OPEN`.
    pub scale: TickScale,
    /// The stateful planner holding the live instance, its committed
    /// schedule, and the warm matching engine.
    pub planner: DeltaPlanner,
}

/// Why a batch of wire deltas could not be handed to the planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A delta addresses a node outside the session's current dimensions
    /// (answered as a protocol error; the session is untouched).
    OutOfRange(String),
    /// Growth would push the session's cell count past the server's
    /// `max_cells` admission limit (answered as `matrix_too_large`).
    TooLarge,
}

impl Session {
    /// Converts a `DELTA` frame's byte-sized edits into tick-weighted
    /// planner deltas, bounds-checking every index against the dimensions
    /// the batch would see at that point (edits apply in order, so a
    /// `GrowNodes` may be addressed by later cells in the same batch).
    ///
    /// Validation happens *before* [`DeltaPlanner::replan`] ever runs —
    /// the planner panics on out-of-range indices, and a panicked worker
    /// is a lost worker — so a malformed batch leaves the session intact.
    pub fn convert_deltas(
        &self,
        deltas: &[WireDelta],
        max_cells: u64,
    ) -> Result<Vec<MatrixDelta>, DeltaError> {
        let g = &self.planner.instance().graph;
        let (mut n1, mut n2) = (g.left_count(), g.right_count());
        let mut out = Vec::with_capacity(deltas.len());
        for d in deltas {
            match *d {
                WireDelta::SetCell {
                    sender,
                    receiver,
                    bytes,
                } => {
                    if sender as usize >= n1 {
                        return Err(DeltaError::OutOfRange(format!(
                            "delta sender {sender} out of range (session has {n1} senders)"
                        )));
                    }
                    if receiver as usize >= n2 {
                        return Err(DeltaError::OutOfRange(format!(
                            "delta receiver {receiver} out of range (session has {n2} receivers)"
                        )));
                    }
                    out.push(MatrixDelta::Set {
                        sender: sender as usize,
                        receiver: receiver as usize,
                        ticks: message_ticks(&self.platform, self.scale, bytes),
                    });
                }
                WireDelta::GrowNodes { senders, receivers } => {
                    n1 += senders as usize;
                    n2 += receivers as usize;
                    if (n1 as u64).saturating_mul(n2 as u64) > max_cells {
                        return Err(DeltaError::TooLarge);
                    }
                    out.push(MatrixDelta::GrowNodes {
                        senders: senders as usize,
                        receivers: receivers as usize,
                    });
                }
                WireDelta::DropSender(i) => {
                    if i as usize >= n1 {
                        return Err(DeltaError::OutOfRange(format!(
                            "dropped sender {i} out of range (session has {n1} senders)"
                        )));
                    }
                    out.push(MatrixDelta::DropSender(i as usize));
                }
                WireDelta::DropReceiver(j) => {
                    if j as usize >= n2 {
                        return Err(DeltaError::OutOfRange(format!(
                            "dropped receiver {j} out of range (session has {n2} receivers)"
                        )));
                    }
                    out.push(MatrixDelta::DropReceiver(j as usize));
                }
            }
        }
        Ok(out)
    }
}

/// The bounded registry of live sessions.
///
/// Ids are minted from a monotone counter starting at 1, so id 0 can mean
/// "no session" on the wire and a closed id is never recycled.
pub struct SessionTable {
    capacity: usize,
    next_id: AtomicU64,
    map: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
}

impl SessionTable {
    /// An empty table admitting at most `capacity` concurrent sessions.
    pub fn new(capacity: usize) -> SessionTable {
        SessionTable {
            capacity,
            next_id: AtomicU64::new(0),
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Admits a session, returning its minted id — or `None` when the
    /// table is at capacity (the caller answers `table_full`).
    pub fn open(&self, session: Session) -> Option<u64> {
        let mut map = self.map.lock().unwrap();
        if map.len() >= self.capacity {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        map.insert(id, Arc::new(Mutex::new(session)));
        Some(id)
    }

    /// The session behind `id`, if it is still open.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.map.lock().unwrap().get(&id).cloned()
    }

    /// Closes `id`, returning its session (an op already holding the
    /// session's lock finishes; the id stops resolving immediately).
    pub fn close(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.map.lock().unwrap().remove(&id)
    }

    /// Sessions currently open.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bipartite::Graph;
    use kpbs::Instance;

    fn session(n1: usize, n2: usize) -> Session {
        let mut g = Graph::new(n1, n2);
        g.add_edge(0, 0, 5);
        Session {
            algo: Algo::Oggp,
            platform: Platform::new(n1, n2, 100.0, 100.0, 200.0),
            scale: TickScale::MILLIS,
            planner: DeltaPlanner::new(Instance::new(g, 2, 1)),
        }
    }

    #[test]
    fn table_bounds_admission_and_never_recycles_ids() {
        let t = SessionTable::new(2);
        let a = t.open(session(2, 2)).unwrap();
        let b = t.open(session(2, 2)).unwrap();
        assert_ne!(a, b);
        assert!(t.open(session(2, 2)).is_none(), "at capacity");
        assert_eq!(t.len(), 2);

        assert!(t.close(a).is_some());
        assert!(t.get(a).is_none(), "closed ids stop resolving");
        assert!(t.close(a).is_none(), "double close is a miss");
        let c = t.open(session(2, 2)).unwrap();
        assert!(c > b, "ids stay monotone after a close");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn convert_bounds_checks_against_batch_order() {
        let s = session(2, 2);
        // Sender 2 is out of range now…
        let err = s
            .convert_deltas(
                &[WireDelta::SetCell {
                    sender: 2,
                    receiver: 0,
                    bytes: 1,
                }],
                1 << 20,
            )
            .unwrap_err();
        assert!(matches!(err, DeltaError::OutOfRange(_)));
        // …but fine after a grow earlier in the same batch.
        let ok = s
            .convert_deltas(
                &[
                    WireDelta::GrowNodes {
                        senders: 1,
                        receivers: 0,
                    },
                    WireDelta::SetCell {
                        sender: 2,
                        receiver: 0,
                        bytes: 1,
                    },
                    WireDelta::DropSender(2),
                ],
                1 << 20,
            )
            .unwrap();
        assert_eq!(ok.len(), 3);
    }

    #[test]
    fn convert_applies_the_cold_byte_to_tick_conversion() {
        let s = session(2, 2);
        let out = s
            .convert_deltas(
                &[WireDelta::SetCell {
                    sender: 1,
                    receiver: 1,
                    bytes: 25_000_000,
                }],
                1 << 20,
            )
            .unwrap();
        let want = message_ticks(&s.platform, s.scale, 25_000_000);
        assert_eq!(
            out,
            vec![MatrixDelta::Set {
                sender: 1,
                receiver: 1,
                ticks: want
            }]
        );
        assert!(want > 0);
    }

    #[test]
    fn convert_refuses_growth_past_the_cell_limit() {
        let s = session(2, 2);
        let err = s
            .convert_deltas(
                &[WireDelta::GrowNodes {
                    senders: 1,
                    receivers: 1,
                }],
                8, // 3×3 = 9 > 8
            )
            .unwrap_err();
        assert_eq!(err, DeltaError::TooLarge);
    }
}
